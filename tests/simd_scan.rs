//! The SoA/SIMD dispatch contracts, pinned (ISSUE 10):
//!
//! 1. **Scan equivalence**: the vectorized two-pass tie scan
//!    ([`scan_ties_simd`] over a padded [`CompletionBank`]) produces the
//!    *identical* tie vector to the one-pass scalar oracle
//!    ([`scan_ties`]) for every processing-set shape, over random
//!    completion arrays with exact ties (including idle machines at
//!    0.0) and random release times — so [`ScanImpl`] is purely a
//!    performance knob, never a semantic one.
//! 2. **Scan choice is dispatch-invariant**: a full [`EftState`] run on
//!    `ScanImpl::Simd` matches `ScanImpl::Scalar` assignment-for-
//!    assignment under every tie-break, RNG draws included.
//! 3. **Mid-stream kernel switches are transparent**: the adaptive
//!    `Auto` wrapper ([`AdaptiveEftState`]) — which re-resolves its
//!    kernel from live structure classification and *actually switches*
//!    mid-stream when the family degrades — produces the bitwise-same
//!    schedule and recorder trace as both forced kernels, across
//!    families × tie-breaks.

use proptest::prelude::*;

use flowsched::algos::adaptive::AdaptiveEftState;
use flowsched::algos::eft::{scan_ties, EftState};
use flowsched::algos::engine::immediate_schedule;
use flowsched::algos::indexed::{DispatchKernel, EftKernelState, IndexedEftState};
use flowsched::algos::soa::{scan_ties_simd, CompletionBank, ScanImpl};
use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::compact::ProcSetRef;
use flowsched::core::procset::ProcSet;
use flowsched::core::stream::FnStream;
use flowsched::core::task::Task;
use flowsched::obs::MemoryRecorder;

const TIES: [TieBreak; 3] = [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 31 }];

/// Quantized completion values force exact float ties; quantum 0.5 and
/// a floor of 0 keep idle machines (0.0) in the mix.
fn arb_completions() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u32..6).prop_map(|q| q as f64 * 0.5), 1..96)
}

/// A cheap deterministic generator for the structured/mixed streams —
/// SplitMix64-style, so proptest shrinks over the seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Contract 1: SIMD scan ≡ scalar oracle on every set shape.
    #[test]
    fn simd_scan_matches_the_scalar_oracle(
        vals in arb_completions(),
        release_q in 0u32..7,
        choice in 0usize..4,
        a in 0usize..1_000_000,
        b in 0usize..1_000_000,
        mask in prop::collection::vec(any::<bool>(), 96),
    ) {
        let m = vals.len();
        let release = release_q as f64 * 0.5;
        let members: Vec<usize> = (0..m).filter(|&j| mask[j]).collect();
        let set = match choice {
            0 => ProcSetRef::prefix(1 + a % m),
            1 => {
                let lo = a % m;
                ProcSetRef::interval(lo, lo + b % (m - lo))
            }
            2 => ProcSetRef::ring(a % m, 1 + b % m, m),
            _ if members.is_empty() => ProcSetRef::prefix(m),
            _ => ProcSetRef::Explicit(&members),
        };
        let bank = CompletionBank::from_completions(&vals);
        let mut simd = Vec::new();
        scan_ties_simd(bank.padded(), set, release, &mut simd);
        let mut scalar = Vec::new();
        scan_ties(&vals, set.iter(), release, &mut scalar);
        prop_assert_eq!(simd, scalar, "shape {:?} release {}", set, release);
    }

    /// Contract 2: a whole dispatch run never depends on the scan impl.
    #[test]
    fn scan_choice_never_changes_dispatch(
        m in 2usize..48,
        arrivals in prop::collection::vec(
            (0u32..3, 1u32..5, 0usize..1_000_000, 0usize..1_000_000),
            1..120,
        ),
        tb_idx in 0usize..3,
    ) {
        let tie = TIES[tb_idx];
        let mut simd = EftState::with_scan(m, tie, ScanImpl::Simd);
        let mut scalar = EftState::with_scan(m, tie, ScanImpl::Scalar);
        let mut t = 0.0;
        for &(gap, p, a, b) in &arrivals {
            t += gap as f64 * 0.25;
            let task = Task::new(t, p as f64 * 0.5);
            let lo = a % m;
            let set = ProcSetRef::interval(lo, lo + b % (m - lo));
            prop_assert_eq!(
                simd.dispatch_ref(task, set),
                scalar.dispatch_ref(task, set),
                "{:?} diverged at t={}", tie, t
            );
        }
        prop_assert_eq!(simd.completions(), scalar.completions());
    }

    /// Contract 3: the adaptive wrapper matches both forced kernels per
    /// dispatch, through an actual mid-stream downgrade — the stream
    /// opens with > warmup structured interval arrivals (the classifier
    /// keeps the index) and degrades into scattered explicit sets (the
    /// classifier forces a switch to the scalar kernel).
    #[test]
    fn mid_stream_kernel_switches_are_transparent(
        m_extra in 0usize..64,
        n_tail in 24usize..120,
        tb_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let m = 65 + m_extra;
        let tie = TIES[tb_idx];
        let mut rng = Lcg(seed);
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for _ in 0..80 {
            let lo = rng.next() % (m / 2);
            sets.push((lo..lo + m / 4).collect());
        }
        for _ in 0..n_tail {
            let a = rng.next() % m;
            let b = (a + 1 + rng.next() % (m - 1)) % m;
            sets.push(vec![a.min(b), a.max(b)]);
        }
        let mut adaptive = AdaptiveEftState::new(m, tie);
        let mut scalar = EftState::new(m, tie);
        let mut indexed = IndexedEftState::new(m, tie);
        for (i, set) in sets.iter().enumerate() {
            let task = Task::new(i as f64 * 0.125, 0.5 + (i % 3) as f64 * 0.25);
            let view = ProcSetRef::Explicit(set);
            let got = adaptive.dispatch_ref(task, view);
            prop_assert_eq!(got, scalar.dispatch_ref(task, view), "vs scalar @{}", i);
            prop_assert_eq!(got, indexed.dispatch_ref(task, view), "vs indexed @{}", i);
        }
        prop_assert!(
            adaptive.switches() > 0,
            "the degrading stream must force a real kernel switch"
        );
        prop_assert_eq!(adaptive.current_kernel(), DispatchKernel::Scalar);
        prop_assert_eq!(adaptive.completions(), scalar.completions());
    }
}

/// Contract 3 at the engine level: on a hint-less stream, `Auto` (the
/// adaptive wrapper) produces the bitwise-identical schedule *and
/// recorder event trace* to both forced kernels — the switch is
/// invisible to every observer of the run.
#[test]
fn adaptive_trace_is_bitwise_identical_to_forced_kernels() {
    let m = 96;
    let stream = |i: usize| -> (Task, ProcSet) {
        let task = Task::new(i as f64 * 0.2, 1.0 + (i % 4) as f64 * 0.25);
        let set = if i < 70 {
            let lo = (i * 5) % (m / 2);
            ProcSet::interval(lo, lo + m / 3)
        } else {
            let a = (i * 17) % m;
            let b = (a + m / 2 + i % 7) % m;
            ProcSet::new(vec![a, b])
        };
        (task, set)
    };
    for tie in TIES {
        let run = |kernel: DispatchKernel| {
            let next = std::cell::Cell::new(0usize);
            let arrivals = FnStream::new(m, move || {
                let i = next.get();
                if i >= 160 {
                    return None;
                }
                next.set(i + 1);
                Some(stream(i))
            });
            let mut state = EftKernelState::new(m, tie, kernel);
            let mut rec = MemoryRecorder::with_defaults(m);
            let sched = immediate_schedule(arrivals, &mut state, &mut rec);
            (sched, rec.trace().to_vec())
        };
        let (auto_sched, auto_trace) = run(DispatchKernel::Auto);
        for forced in [DispatchKernel::Scalar, DispatchKernel::Indexed] {
            let (sched, trace) = run(forced);
            assert_eq!(
                auto_sched, sched,
                "{tie:?}: schedule diverged vs {forced:?}"
            );
            assert_eq!(auto_trace, trace, "{tie:?}: trace diverged vs {forced:?}");
        }
    }
}
