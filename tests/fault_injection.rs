//! Fault-injection guarantees, end to end (ISSUE 7's headline suite).
//!
//! The faulty engine (`flowsched_algos::faulty` over a
//! `flowsched_core::fault::FaultPlan`) must keep every structural
//! contract of the fault-free engine while machines crash, recover, run
//! degraded, and dispatch decisions arrive late. Four properties are
//! pinned by proptest over randomly sampled fault plans:
//!
//! 1. **Schedule validity under any plan** — every task dispatches
//!    exactly once, never before its (latency-shifted) release, and no
//!    two tasks overlap on a machine.
//! 2. **No task touches a dead machine** — each task's whole service
//!    window `[start, start + p)` fits inside one alive window of its
//!    machine (`earliest_fit` is a fixed point at the chosen start).
//! 3. **Determinism** — the sharded faulty engine is bitwise
//!    thread-count invariant under a fixed seed, for every tie-break.
//! 4. **Fault-free plans are free** — `FaultPlan::none` reproduces the
//!    plain engine bitwise, schedule *and* recorder trace.
//!
//! On top of those, `guarantee_degradation_envelope` sweeps crash rates
//! on a disjoint-cluster workload and asserts the measured `Fmax/OPT`
//! stays inside a recorded envelope of the paper's `3 − 2/k` guarantee
//! (Corollary 1): faults inflate flow times, but boundedly so at low
//! crash rates, and the inflation is *measured and pinned* rather than
//! assumed. Flow is measured from each task's first dispatchable
//! instant (its latency-shifted, recovery-deferred release): the
//! envelope tracks scheduling-induced inflation on the work that *can*
//! run, not the unavoidable wait while every eligible machine is down —
//! which no online algorithm can beat either.
//!
//! The suite also carries ISSUE 7's satellite tests: the
//! `restrict_alive` compact-view oracle equivalence, the re-queue
//! arrival-order regression, and the report-balance invariant.

use proptest::prelude::*;

use flowsched::algos::eft::eft_stream;
use flowsched::algos::engine::{DispatchSink, ShardedConfig};
use flowsched::algos::faulty::{faulty_schedule, faulty_schedule_sharded, run_immediate_faulty};
use flowsched::algos::offline::optimal_unit_fmax;
use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::compact::ProcSetRef;
use flowsched::core::fault::FaultPlan;
use flowsched::core::procset::ProcSet;
use flowsched::core::schedule::Assignment;
use flowsched::core::shard::DEFAULT_MAX_SHARDS;
use flowsched::core::stream::{ArrivalStream, FnStream, InstanceStream};
use flowsched::core::task::Task;
use flowsched::obs::{MemoryRecorder, NoopRecorder};
use flowsched::sim::driver::simulate_stream_faulty;
use flowsched::sim::report::ReportConfig;
use flowsched::workloads::faults::{random_fault_plan, FaultPlanConfig};
use flowsched::workloads::random::{
    random_instance, PoissonStream, PoissonStreamConfig, RandomInstanceConfig, StructureKind,
};

/// Collects the dispatched `(task, assignment)` pairs in commit order —
/// the ground truth the properties below inspect (the emitted task
/// carries the latency-shifted release and speed-stretched ptime the
/// engine actually scheduled).
#[derive(Default)]
struct PairSink {
    pairs: Vec<(Task, Assignment)>,
}

impl DispatchSink for PairSink {
    fn accept(&mut self, _seq: u64, task: Task, a: Assignment) {
        self.pairs.push((task, a));
    }
}

fn kind_for(idx: usize, k: usize) -> StructureKind {
    match idx {
        0 => StructureKind::DisjointBlocks(k),
        1 => StructureKind::RingFixed(k),
        2 => StructureKind::InclusivePrefix,
        _ => StructureKind::Unrestricted,
    }
}

fn stream_for(kind: StructureKind, m: usize, n: usize, seed: u64) -> PoissonStream {
    let cfg = PoissonStreamConfig::unit_tasks(m, n, m as f64 / 2.0, kind);
    PoissonStream::new(&cfg, seed)
}

/// A busy plan: crashes, degraded machines, and dispatch latency all on.
fn plan_for(m: usize, crash_rate: f64, latency: f64, degraded: bool, seed: u64) -> FaultPlan {
    let cfg = FaultPlanConfig {
        horizon: 50.0,
        crash_rate,
        mean_downtime: 2.0,
        degraded_fraction: if degraded { 0.5 } else { 0.0 },
        min_speed: 0.25,
        dispatch_latency: latency,
    };
    random_fault_plan(m, &cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: under *any* fault plan the dispatch stream is a valid
    /// schedule — nothing lost, nothing early, nothing overlapping.
    #[test]
    fn any_fault_plan_yields_a_valid_schedule(
        family in 0usize..4,
        m in 2usize..14,
        n in 1usize..150,
        k_raw in 1usize..6,
        rate in 0.0f64..0.3,
        latency_idx in 0usize..3,
        degraded in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let latency = [0.0, 0.25, 1.0][latency_idx];
        let plan = plan_for(m, rate, latency, degraded, seed);
        let mut sink = PairSink::default();
        run_immediate_faulty(
            stream_for(kind_for(family, k), m, n, seed),
            &plan,
            TieBreak::Min,
            &mut NoopRecorder,
            &mut sink,
        );
        prop_assert_eq!(sink.pairs.len(), n, "tasks lost or duplicated");

        let mut per_machine: Vec<Vec<(f64, f64)>> = vec![Vec::new(); m];
        for (task, a) in &sink.pairs {
            prop_assert!(
                a.start >= task.release - 1e-9,
                "task released {} started {}", task.release, a.start
            );
            per_machine[a.machine.index()].push((a.start, task.ptime));
        }
        for (j, slots) in per_machine.iter_mut().enumerate() {
            slots.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in slots.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].0 + w[0].1 - 1e-9,
                    "machine {j}: [{} + {}) overlaps next start {}",
                    w[0].0, w[0].1, w[1].0
                );
            }
        }
    }

    /// Property 2: the full service window of every task avoids every
    /// outage of its machine — `earliest_fit` at the committed start is
    /// a fixed point, so the task neither starts on a dead machine nor
    /// runs across a crash.
    #[test]
    fn no_task_starts_or_runs_inside_an_outage(
        family in 0usize..4,
        m in 2usize..14,
        n in 1usize..150,
        k_raw in 1usize..6,
        rate in 0.01f64..0.4,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let plan = plan_for(m, rate, 0.0, false, seed);
        let mut sink = PairSink::default();
        run_immediate_faulty(
            stream_for(kind_for(family, k), m, n, seed),
            &plan,
            TieBreak::Min,
            &mut NoopRecorder,
            &mut sink,
        );
        for (task, a) in &sink.pairs {
            let j = a.machine.index();
            prop_assert!(plan.is_alive(j, a.start), "start {} on dead machine {j}", a.start);
            prop_assert_eq!(
                plan.earliest_fit(j, a.start, task.ptime),
                a.start,
                "service [{} + {}) crosses an outage of machine {j}",
                a.start, task.ptime
            );
        }
    }

    /// Property 3: the sharded faulty engine is bitwise thread-count
    /// invariant under a fixed seed — including `Rand`, whose per-shard
    /// RNGs are seeded by shard index, not by worker.
    #[test]
    fn faulty_schedule_is_thread_count_invariant(
        m_raw in 2usize..20,
        n in 1usize..200,
        k_raw in 1usize..6,
        rate in 0.0f64..0.3,
        tb_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m_raw;
        let m = (m_raw / k).max(1) * k; // k | m: genuine multi-shard plans
        let tb = [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 7 }][tb_idx];
        let plan = plan_for(m, rate, 0.0, true, seed);
        let kind = StructureKind::DisjointBlocks(k);

        let run = |threads: usize| {
            let stream = stream_for(kind, m, n, seed);
            let shard_plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
            faulty_schedule_sharded(
                stream,
                &plan,
                tb,
                &shard_plan,
                &ShardedConfig::with_threads(threads),
                &mut NoopRecorder,
            )
        };
        let one = run(1);
        let four = run(4);
        prop_assert_eq!(&one, &four, "{:?}: schedules differ across thread counts", tb);
    }

    /// Property 4: a fault-free plan reproduces the plain engine bitwise
    /// — same schedule, same recorder trace, same RNG draws.
    #[test]
    fn fault_free_plan_reproduces_plain_engine_bitwise(
        family in 0usize..4,
        m in 2usize..14,
        n in 1usize..150,
        k_raw in 1usize..6,
        tb_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let kind = kind_for(family, k);
        let tb = [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 11 }][tb_idx];

        let mut plain_rec = MemoryRecorder::with_defaults(m);
        let plain = eft_stream(stream_for(kind, m, n, seed), tb, &mut plain_rec);

        let plan = FaultPlan::none(m);
        let mut faulty_rec = MemoryRecorder::with_defaults(m);
        let faulty = faulty_schedule(
            stream_for(kind, m, n, seed),
            &plan,
            tb,
            &mut faulty_rec,
        );

        prop_assert_eq!(&plain, &faulty, "{:?} {:?}: schedules differ", kind, tb);
        prop_assert_eq!(
            plain_rec.trace().to_vec(),
            faulty_rec.trace().to_vec(),
            "{:?} {:?}: recorder traces differ", kind, tb
        );
    }

    /// Satellite: `FaultPlan::restrict_alive` over every compact view
    /// shape agrees with the explicit-set oracle, and the restricted
    /// view honours the O(1) `contains`/`nth`/`len` contracts.
    #[test]
    fn restrict_alive_matches_explicit_oracle(
        m in 1usize..40,
        shape in 0usize..5,
        a64 in any::<u64>(),
        b64 in any::<u64>(),
        down_mask in any::<u64>(),
        probe_dead in any::<bool>(),
    ) {
        let (a_raw, b_raw) = (a64 as usize, b64 as usize);
        // A plan where machine j is down over [0, 2) iff bit j is set.
        let mut plan = FaultPlan::none(m);
        for j in 0..m.min(64) {
            if down_mask >> j & 1 == 1 {
                plan = plan.with_outage(j, 0.0, 2.0);
            }
        }
        let t = if probe_dead { 1.0 } else { 2.0 };

        let explicit: Vec<usize>;
        let view = match shape {
            0 => {
                let lo = a_raw % m;
                ProcSetRef::interval(lo, lo + b_raw % (m - lo))
            }
            1 => ProcSetRef::ring(a_raw % m, 1 + b_raw % m, m),
            2 => ProcSetRef::prefix(1 + a_raw % m),
            3 => ProcSetRef::full(m),
            _ => {
                // Arbitrary sorted subset of 0..m (never empty).
                let mut v: Vec<usize> =
                    (0..m).filter(|j| (a_raw ^ (b_raw >> j)) >> (j % 17) & 1 == 1).collect();
                if v.is_empty() {
                    v.push(a_raw % m);
                }
                explicit = v;
                ProcSetRef::Explicit(&explicit)
            }
        };

        let oracle: Vec<usize> = view.iter().filter(|&j| plan.is_alive(j, t)).collect();
        let mut scratch = Vec::new();
        let restricted = plan.restrict_alive(view, t, &mut scratch);

        prop_assert_eq!(restricted.len(), oracle.len());
        prop_assert_eq!(restricted.iter().collect::<Vec<_>>(), oracle.clone());
        for j in 0..m {
            prop_assert_eq!(
                restricted.contains(j),
                oracle.binary_search(&j).is_ok(),
                "contains({j}) disagrees with the oracle"
            );
        }
        for (i, &want) in oracle.iter().enumerate() {
            prop_assert_eq!(restricted.nth(i), want, "nth({i})");
        }
    }

    /// Satellite: the online report balances under every fault plan —
    /// every arrival folds into the report exactly once (no task is
    /// dropped in the deferral heap, none counted twice on re-entry).
    #[test]
    fn report_totals_balance_under_any_fault_plan(
        m in 2usize..12,
        n in 1usize..200,
        k_raw in 1usize..6,
        rate in 0.0f64..0.3,
        degraded in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let plan = plan_for(m, rate, 0.0, degraded, seed);
        let report = simulate_stream_faulty(
            stream_for(StructureKind::DisjointBlocks(k), m, n, seed),
            &plan,
            TieBreak::Min,
            &ReportConfig::default(),
            &mut NoopRecorder,
        );
        prop_assert_eq!(report.n_measured, n, "arrivals != completions");
        prop_assert!(report.fmax.is_finite() && report.fmax >= 0.0);
    }
}

/// Satellite regression: crash-displaced tasks re-enter in arrival
/// order — on a release tie at the recovery instant, deferred tasks go
/// first (they arrived earlier), among themselves oldest-first, and a
/// fresh arrival at the same instant goes last.
#[test]
fn displaced_tasks_reenter_in_arrival_order() {
    // Machine 0 down over [0, 10); machine 1 healthy. Tasks are tagged
    // by distinct ptimes so the emission order is observable.
    let plan = FaultPlan::none(2).with_outage(0, 0.0, 10.0);
    let tasks = vec![
        (Task::new(0.0, 1.0), ProcSet::singleton(0)), // deferred (seq 0)
        (Task::new(0.5, 5.0), ProcSet::singleton(1)), // sails through
        (Task::new(1.0, 2.0), ProcSet::singleton(0)), // deferred (seq 2)
        (Task::new(2.0, 3.0), ProcSet::singleton(0)), // deferred (seq 3)
        (Task::new(10.0, 4.0), ProcSet::singleton(0)), // fresh tie at 10
    ];
    let mut it = tasks.into_iter();
    let mut sink = PairSink::default();
    run_immediate_faulty(
        FnStream::new(2, move || it.next()),
        &plan,
        TieBreak::Min,
        &mut NoopRecorder,
        &mut sink,
    );

    let ptimes: Vec<f64> = sink.pairs.iter().map(|(t, _)| t.ptime).collect();
    assert_eq!(
        ptimes,
        vec![5.0, 1.0, 2.0, 3.0, 4.0],
        "re-entry order is not arrival order"
    );
    // Displaced tasks surface at the recovery instant and FIFO through
    // the recovered machine: 10, 11, 13, then the fresh task at 16.
    let starts: Vec<f64> = sink.pairs[1..].iter().map(|(_, a)| a.start).collect();
    assert_eq!(starts, vec![10.0, 11.0, 13.0, 16.0]);
}

/// The empirical guarantee-degradation envelope (the headline sweep).
///
/// On a disjoint-cluster unit-task workload (`m = 8`, `k = 4`), EFT is
/// `(3 − 2/k)`-competitive fault-free (Corollary 1 — on unit tasks it
/// is in fact optimal, Theorems 2 + 6). Crashes void the theorem's
/// premises, so instead of a proof we pin *measurements*: the max over
/// seeds of `Fmax / OPT(fault-free)` at each crash rate, with ~2×
/// headroom against sampling noise. The envelope constants below were
/// recorded on this workload; a regression that inflates flow times
/// under faults (lost re-queues, pessimal fit scans) trips them long
/// before correctness tests notice.
#[test]
fn guarantee_degradation_envelope() {
    const M: usize = 8;
    const K: usize = 4;
    const N: usize = 2_000;
    const SPAN: u64 = 400;
    let bound = 3.0 - 2.0 / K as f64; // 2.5

    // (crash rate per machine per unit time, envelope on max Fmax/OPT).
    // Measured on this exact seeded workload: 1.000 / 2.000 / 2.500 /
    // 9.668 — fault-free EFT is optimal here (Th. 2 + 6), and the
    // degradation grows smoothly with the crash rate.
    let envelope = [(0.0, bound), (0.01, 4.0), (0.03, 6.0), (0.1, 14.0)];

    // The fault-free instances and their exact optima, shared by every
    // rate of the sweep.
    let cases: Vec<_> = (0..5u64)
        .map(|seed| {
            let inst = random_instance(
                &RandomInstanceConfig {
                    m: M,
                    n: N,
                    structure: StructureKind::DisjointBlocks(K),
                    release_span: SPAN,
                    unit: true,
                    ptime_steps: 1,
                },
                seed,
            );
            let opt = optimal_unit_fmax(&inst);
            assert!(opt >= 1.0, "unit tasks have OPT >= 1");
            (seed, inst, opt)
        })
        .collect();

    for &(rate, ceiling) in &envelope {
        let mut worst = 0.0f64;
        for (seed, inst, opt) in &cases {
            let fcfg = FaultPlanConfig::crashes(SPAN as f64 + 20.0, rate, 2.0);
            let plan = random_fault_plan(M, &fcfg, seed ^ 0xFA17);
            let mut sink = PairSink::default();
            run_immediate_faulty(
                InstanceStream::new(inst),
                &plan,
                TieBreak::Min,
                &mut NoopRecorder,
                &mut sink,
            );
            assert_eq!(sink.pairs.len(), N);
            let fmax = sink
                .pairs
                .iter()
                .map(|(t, a)| a.start + t.ptime - t.release)
                .fold(0.0f64, f64::max);
            worst = worst.max(fmax / opt);
        }
        eprintln!("crash rate {rate}: worst Fmax/OPT = {worst:.3} (envelope {ceiling})");
        assert!(
            worst <= ceiling + 1e-9,
            "crash rate {rate}: measured Fmax/OPT {worst} escapes the \
             recorded envelope {ceiling}"
        );
    }
}
