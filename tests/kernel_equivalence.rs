//! Equivalence of the optimized solver kernels with the seed
//! implementations preserved in `flowsched::solver::reference`.
//!
//! The flat-tableau simplex (with and without a shared
//! [`SimplexScratch`]), the persistent-network max-flow prober, and the
//! warm-started offline `Fmax` search replaced allocation-heavy seed
//! kernels. These tests pin the optimized and seed paths together to
//! 1e-6 over hundreds of randomized `(weights, allowed-sets)` and LP
//! configurations — explicitly exercising the reuse/warm-start paths
//! (one scratch, one prober, one matcher carried across many solves).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::{Rng, SeedableRng};

use flowsched::prelude::*;
use flowsched::solver::loadflow::{max_load_lp, max_load_lp_with, MaxLoadProber};
use flowsched::solver::reference;
use flowsched::solver::simplex::{LinearProgram, LpOutcome, Relation, SimplexScratch};

/// Random replication-like configurations: weights + one allowed set per
/// origin that always contains the origin.
fn load_configs() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (2usize..8).prop_flat_map(|m| {
        let weights = prop::collection::vec(1u32..100, m..=m)
            .prop_map(|v| v.into_iter().map(|x| x as f64 / 100.0).collect::<Vec<_>>());
        let masks = prop::collection::vec(0u32..(1 << m), m..=m).prop_map(move |ms| {
            ms.into_iter()
                .enumerate()
                .map(|(j, mask)| {
                    let mut set: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
                    if !set.contains(&j) {
                        set.push(j);
                        set.sort_unstable();
                    }
                    set
                })
                .collect::<Vec<_>>()
        });
        (weights, masks)
    })
}

/// `(coefficients, relation, rhs)` rows of a randomly drawn program.
type LpRows = Vec<(Vec<i32>, u8, i32)>;

/// Random small LPs over up to 5 variables and 6 constraints.
fn random_lps() -> impl Strategy<Value = (usize, Vec<i32>, LpRows)> {
    (
        1usize..6,
        prop::collection::vec(-4i32..6, 5..=5),
        prop::collection::vec(
            (prop::collection::vec(-5i32..6, 5), 0u8..3, -10i32..20),
            1..7,
        ),
    )
}

fn build_lp(n: usize, obj: &[i32], rows: &[(Vec<i32>, u8, i32)]) -> LinearProgram {
    let objective: Vec<f64> = obj.iter().take(n).map(|&c| c as f64).collect();
    let mut lp = LinearProgram::maximize(n, objective);
    for (coeffs, rel, rhs) in rows {
        let c: Vec<f64> = coeffs.iter().take(n).map(|&x| x as f64).collect();
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        lp.constraint(c, rel, *rhs as f64);
    }
    lp
}

/// Outcome agreement to 1e-6 (objective and point for Optimal, same
/// variant otherwise).
fn assert_outcomes_agree(opt: &LpOutcome, seed: &LpOutcome) -> Result<(), TestCaseError> {
    match (opt, seed) {
        (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
            prop_assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "objective {a_obj} vs seed {b_obj}",
                a_obj = a.objective,
                b_obj = b.objective
            );
            prop_assert_eq!(a.x.len(), b.x.len());
            for (i, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
                prop_assert!((xa - xb).abs() < 1e-6, "x[{i}]: {xa} vs seed {xb}");
            }
        }
        (a, b) => prop_assert_eq!(
            std::mem::discriminant(a),
            std::mem::discriminant(b),
            "outcome kind diverged: {a:?} vs seed {b:?}",
            a = a,
            b = b
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn flat_simplex_matches_seed_simplex((n, obj, rows) in random_lps()) {
        let lp = build_lp(n, &obj, &rows);
        let optimized = lp.solve();
        let seed = reference::solve_lp(&lp);
        assert_outcomes_agree(&optimized, &seed)?;
        // The scratch-reuse path must not change the result either: solve
        // an unrelated program first so the arena arrives dirty and
        // differently shaped.
        let mut scratch = SimplexScratch::new();
        let mut decoy = LinearProgram::maximize(2, vec![1.0, 2.0]);
        decoy.constraint(vec![1.0, 1.0], Relation::Le, 3.0);
        let _ = decoy.solve_with(&mut scratch);
        assert_outcomes_agree(&lp.solve_with(&mut scratch), &seed)?;
    }

    #[test]
    fn persistent_prober_matches_seed_feasibility((weights, allowed) in load_configs()) {
        // One persistent network probed at many λ (including repeats and
        // reversals) versus the seed's rebuild-per-probe oracle.
        let mut prober = MaxLoadProber::new(&weights, &allowed);
        let total: f64 = weights.iter().sum();
        let hi = weights.len() as f64 / total;
        for frac in [0.0, 0.9, 0.3, 1.0, 0.6, 0.3, 1.1, 0.99] {
            let lambda = hi * frac;
            prop_assert_eq!(
                prober.is_feasible(lambda),
                reference::load_is_feasible(&weights, &allowed, lambda),
                "λ = {lambda}",
                lambda = lambda
            );
        }
    }

    #[test]
    fn optimized_max_load_matches_seed_search((weights, allowed) in load_configs()) {
        // LP (15) through the flat simplex vs the seed rebuild-per-probe
        // bisection, and the persistent-prober bisection vs the same.
        let lp = max_load_lp(&weights, &allowed);
        let seed_bs = reference::max_load_binary_search(&weights, &allowed, 1e-9);
        prop_assert!((lp - seed_bs).abs() < 1e-6, "lp {lp} vs seed bisect {seed_bs}");
        let warm_bs = MaxLoadProber::new(&weights, &allowed).max_load(1e-9);
        prop_assert!(
            (warm_bs - seed_bs).abs() < 1e-6,
            "persistent bisect {warm_bs} vs seed bisect {seed_bs}"
        );
    }
}

/// 240 configurations sharing ONE simplex scratch across the entire
/// sweep (the Figure 10 job shape): results must be identical to
/// fresh-storage solves and within 1e-6 of the seed flow search.
#[test]
fn shared_scratch_sweep_agrees_with_seed_kernels_on_240_configs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1A7);
    let mut scratch = SimplexScratch::new();
    for trial in 0..240 {
        let m: usize = rng.random_range(2..=8);
        let weights: Vec<f64> = (0..m).map(|_| rng.random_range(0.01..1.0)).collect();
        let allowed: Vec<Vec<usize>> = (0..m)
            .map(|j| {
                let mut set: Vec<usize> = (0..m).filter(|_| rng.random_bool(0.4)).collect();
                if !set.contains(&j) {
                    set.push(j);
                    set.sort_unstable();
                }
                set
            })
            .collect();
        let reused = max_load_lp_with(&weights, &allowed, &mut scratch);
        let fresh = max_load_lp(&weights, &allowed);
        assert_eq!(
            reused, fresh,
            "trial {trial}: scratch reuse changed the result"
        );
        let seed = reference::max_load_binary_search(&weights, &allowed, 1e-9);
        assert!(
            (reused - seed).abs() < 1e-6,
            "trial {trial}: optimized {reused} vs seed {seed}"
        );
    }
}

/// 200 random unit instances: the warm-started incremental budget search
/// must return exactly the seed's binary-search optimum (budgets are
/// integers, so agreement is exact, well within 1e-6).
#[test]
fn warm_started_unit_fmax_matches_seed_binary_search_on_200_instances() {
    use flowsched::algos::offline::{optimal_unit_fmax, unit_budget_feasible};

    /// The seed search: geometric doubling + bisection, one from-scratch
    /// Hopcroft–Karp per probe via `unit_budget_feasible`.
    fn seed_optimal_unit_fmax(inst: &Instance) -> f64 {
        if inst.is_empty() {
            return 0.0;
        }
        let mut hi = 1usize;
        while !unit_budget_feasible(inst, hi) {
            hi *= 2;
            assert!(hi <= 2 * inst.len() + 2, "oracle bug");
        }
        let mut lo = hi / 2;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if unit_budget_feasible(inst, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi as f64
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0F7A);
    for trial in 0..200 {
        let m: usize = rng.random_range(1..=5);
        let n: usize = rng.random_range(1..=25);
        let mut b = InstanceBuilder::new(m);
        for _ in 0..n {
            let r = rng.random_range(0..12) as f64;
            let lo = rng.random_range(0..m);
            let hi = rng.random_range(lo..m);
            b.push_unit(r, ProcSet::interval(lo, hi));
        }
        let inst = b.build().unwrap();
        let warm = optimal_unit_fmax(&inst);
        let seed = seed_optimal_unit_fmax(&inst);
        assert_eq!(warm, seed, "trial {trial}: warm {warm} vs seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Dispatch kernels: the indexed (segment-tree / cluster-heap) EFT state
// against the scalar linear-scan oracle.
// ---------------------------------------------------------------------------

use flowsched::algos::eft::{eft_stream_with_kernel, EftState, ImmediateDispatcher};
use flowsched::algos::indexed::{DispatchKernel, EftKernelState};
use flowsched::algos::tiebreak::TieBreak;
use flowsched::obs::MemoryRecorder;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

/// The structured families of the paper (plus General, which exercises
/// the explicit-slice and overlapping-cluster fallbacks).
fn kind_for(idx: usize, k: usize) -> StructureKind {
    match idx {
        0 => StructureKind::IntervalFixed(k),
        1 => StructureKind::RingFixed(k),
        2 => StructureKind::DisjointBlocks(k),
        3 => StructureKind::InclusivePrefix,
        4 => StructureKind::InclusiveChain,
        5 => StructureKind::NestedLaminar,
        _ => StructureKind::General,
    }
}

fn tiebreak_for(idx: usize, seed: u64) -> TieBreak {
    match idx {
        0 => TieBreak::Min,
        1 => TieBreak::Max,
        _ => TieBreak::Rand { seed },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dispatch-for-dispatch equivalence: the indexed kernel must pick
    /// the same machine at the same start time as the scalar oracle on
    /// every task, across all structured families × all tie-breaks —
    /// including `Rand`, whose agreement hinges on both kernels
    /// enumerating identical tie sets (same RNG draw per dispatch).
    #[test]
    fn indexed_dispatch_matches_scalar_oracle(
        family in 0usize..7,
        tb_idx in 0usize..3,
        m in 2usize..48,
        n in 1usize..160,
        k_raw in 1usize..48,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let mut config = RandomInstanceConfig::unit_tasks(m, n, kind_for(family, k));
        config.unit = unit;
        let inst = random_instance(&config, seed);
        let tb = tiebreak_for(tb_idx, seed ^ 0x7ea5);

        let mut scalar = EftState::new(m, tb);
        let mut indexed = EftKernelState::new(m, tb, DispatchKernel::Indexed);
        for (id, task, set) in inst.iter() {
            let a = scalar.dispatch(task, set);
            let b = indexed.dispatch_task(task, set.view());
            prop_assert_eq!(a, b, "task {} diverged ({:?})", id.0, tb);
        }
        prop_assert_eq!(scalar.completions(), indexed.machine_completions());

        // RNG-consumption contract: if the kernels had drawn a different
        // number of randoms (only possible under Rand), a shared tail of
        // all-machines tasks would desynchronize immediately.
        let tail_release = inst.iter().map(|(_, t, _)| t.release).fold(0.0, f64::max);
        let everyone = ProcSet::full(m);
        for _ in 0..32 {
            let task = Task::unit(tail_release);
            prop_assert_eq!(
                scalar.dispatch(task, &everyone),
                indexed.dispatch_task(task, everyone.view()),
                "RNG streams desynchronized after the structured prefix"
            );
        }
    }
}

/// Full-pipeline equivalence: `eft_stream_with_kernel` forced to
/// `Scalar` vs forced to `Indexed` must produce the same [`Schedule`]
/// *and* the same recorder event trace — the engine derives busy/idle
/// transitions from assignments, so identical schedules must leave
/// identical observability behind.
#[test]
fn stream_kernels_produce_identical_schedules_and_traces() {
    use flowsched::core::stream::InstanceStream;
    for (family, k) in [
        (0usize, 5usize),
        (1, 7),
        (2, 4),
        (3, 1),
        (4, 1),
        (5, 1),
        (6, 1),
    ] {
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 42 }] {
            let m = 24;
            let mut config = RandomInstanceConfig::unit_tasks(m, 400, kind_for(family, k));
            config.unit = false;
            let inst = random_instance(&config, 0xD15);

            let mut rec_scalar = MemoryRecorder::with_defaults(m);
            let scalar = eft_stream_with_kernel(
                InstanceStream::new(&inst),
                tb,
                DispatchKernel::Scalar,
                &mut rec_scalar,
            );
            let mut rec_indexed = MemoryRecorder::with_defaults(m);
            let indexed = eft_stream_with_kernel(
                InstanceStream::new(&inst),
                tb,
                DispatchKernel::Indexed,
                &mut rec_indexed,
            );

            assert_eq!(scalar, indexed, "family {family} {tb:?}: schedules differ");
            scalar.validate(&inst).unwrap();
            assert_eq!(
                rec_scalar.trace().to_vec(),
                rec_indexed.trace().to_vec(),
                "family {family} {tb:?}: recorder traces differ"
            );
        }
    }
}

/// `Auto` must agree with both forced kernels on either side of the
/// machine-count threshold (it is a selection rule, not a third
/// algorithm).
#[test]
fn auto_kernel_is_always_one_of_the_two_paths() {
    use flowsched::algos::indexed::AUTO_INDEXED_MIN_MACHINES;
    use flowsched::core::stream::InstanceStream;
    for m in [AUTO_INDEXED_MIN_MACHINES / 2, 2 * AUTO_INDEXED_MIN_MACHINES] {
        let config = RandomInstanceConfig::unit_tasks(m, 300, StructureKind::IntervalFixed(m / 3));
        let inst = random_instance(&config, 9);
        let auto = eft_stream_with_kernel(
            InstanceStream::new(&inst),
            TieBreak::Min,
            DispatchKernel::Auto,
            &mut flowsched::obs::NoopRecorder,
        );
        let forced = eft_stream_with_kernel(
            InstanceStream::new(&inst),
            TieBreak::Min,
            DispatchKernel::Scalar,
            &mut flowsched::obs::NoopRecorder,
        );
        assert_eq!(auto, forced, "m = {m}");
    }
}
