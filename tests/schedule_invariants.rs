//! Property tests for schedule feasibility and immediate-dispatch
//! invariants across every structure class.

use proptest::prelude::*;

use flowsched::core::time::TIME_EPS;
use flowsched::prelude::*;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn any_structure() -> impl Strategy<Value = StructureKind> {
    prop_oneof![
        Just(StructureKind::Unrestricted),
        (1usize..=6).prop_map(StructureKind::IntervalFixed),
        (1usize..=6).prop_map(StructureKind::RingFixed),
        (1usize..=6).prop_map(StructureKind::DisjointBlocks),
        Just(StructureKind::InclusiveChain),
        Just(StructureKind::NestedLaminar),
        Just(StructureKind::General),
    ]
}

fn any_tiebreak() -> impl Strategy<Value = TieBreak> {
    prop_oneof![
        Just(TieBreak::Min),
        Just(TieBreak::Max),
        any::<u64>().prop_map(|seed| TieBreak::Rand { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn eft_is_always_feasible(
        kind in any_structure(),
        tb in any_tiebreak(),
        n in 1usize..80,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = RandomInstanceConfig {
            m: 6,
            n,
            structure: kind,
            release_span: 12,
            unit,
            ptime_steps: 6,
        };
        let inst = random_instance(&cfg, seed);
        let s = eft(&inst, tb);
        prop_assert!(s.validate(&inst).is_ok(), "{:?}", s.validate(&inst));
    }

    #[test]
    fn flow_time_at_least_processing_time(
        kind in any_structure(),
        seed in any::<u64>(),
    ) {
        let cfg = RandomInstanceConfig {
            m: 6, n: 40, structure: kind, release_span: 8, unit: false, ptime_steps: 8,
        };
        let inst = random_instance(&cfg, seed);
        let s = eft(&inst, TieBreak::Min);
        for (id, task, _) in inst.iter() {
            prop_assert!(s.flow_time(id, &inst) >= task.ptime - TIME_EPS);
        }
    }

    #[test]
    fn eft_never_idles_an_eligible_machine(
        kind in any_structure(),
        seed in any::<u64>(),
    ) {
        // Immediate-dispatch work conservation: when a task starts later
        // than its release, every machine of its processing set must be
        // busy at the release (completion beyond r).
        let cfg = RandomInstanceConfig {
            m: 6, n: 50, structure: kind, release_span: 10, unit: true, ptime_steps: 4,
        };
        let inst = random_instance(&cfg, seed);
        let s = eft(&inst, TieBreak::Min);

        // Recompute machine completions incrementally alongside dispatch.
        let mut completions = vec![0.0_f64; inst.machines()];
        for (id, task, set) in inst.iter() {
            let a = s.assignment(id);
            if a.start > task.release + TIME_EPS {
                for &j in set.as_slice() {
                    prop_assert!(
                        completions[j] > task.release + TIME_EPS,
                        "{id}: started {} > release {} but {j} was free at {}",
                        a.start, task.release, completions[j]
                    );
                }
            }
            // EFT starts exactly when its machine frees (or at release).
            prop_assert!(
                (a.start - task.release.max(completions[a.machine.index()])).abs() <= TIME_EPS
            );
            completions[a.machine.index()] = a.start + task.ptime;
        }
    }

    #[test]
    fn eft_picks_an_earliest_finishing_machine(
        seed in any::<u64>(),
    ) {
        // For unit tasks, the chosen machine must attain the minimal
        // completion max(r, C_j) over the processing set.
        let cfg = RandomInstanceConfig {
            m: 6, n: 50, structure: StructureKind::RingFixed(3),
            release_span: 10, unit: true, ptime_steps: 4,
        };
        let inst = random_instance(&cfg, seed);
        let s = eft(&inst, TieBreak::Min);
        let mut completions = vec![0.0_f64; inst.machines()];
        for (id, task, set) in inst.iter() {
            let a = s.assignment(id);
            let best = set
                .as_slice()
                .iter()
                .map(|&j| task.release.max(completions[j]))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                (a.start - best).abs() <= TIME_EPS,
                "{id}: started {} but earliest possible was {best}",
                a.start
            );
            completions[a.machine.index()] = a.start + task.ptime;
        }
    }

    #[test]
    fn fmax_lower_bound_is_sound(
        kind in any_structure(),
        seed in any::<u64>(),
    ) {
        // The polynomial lower bound never exceeds what EFT achieves
        // (EFT is feasible, so OPT ≤ EFT, so LB ≤ OPT ≤ EFT).
        let cfg = RandomInstanceConfig {
            m: 6, n: 30, structure: kind, release_span: 6, unit: false, ptime_steps: 6,
        };
        let inst = random_instance(&cfg, seed);
        let lb = flowsched::algos::offline::fmax_lower_bound(&inst);
        let achieved = eft(&inst, TieBreak::Min).fmax(&inst);
        prop_assert!(lb <= achieved + 1e-9, "LB {lb} > EFT {achieved}");
    }
}
