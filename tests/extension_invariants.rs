//! Property tests across the extension modules: solver ladder ordering,
//! stepped-vs-event equivalence, JSON round-trips, dispatch-rule
//! feasibility, and local-search dominance.

use proptest::prelude::*;

use flowsched::algos::exact::exact_fmax;
use flowsched::algos::localsearch::improve;
use flowsched::algos::offline::fmax_lower_bound;
use flowsched::algos::policies::{dispatch, DispatchRule};
use flowsched::algos::preemptive::optimal_preemptive_fmax;
use flowsched::core::io::{
    instance_from_json, instance_to_json, schedule_from_json, schedule_to_json,
};
use flowsched::prelude::*;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn small_instances() -> impl Strategy<Value = Instance> {
    (
        1usize..4,
        prop::collection::vec((0u32..4, 1u32..7, 0u32..16), 1..9),
    )
        .prop_map(|(m, raw)| {
            let mut b = InstanceBuilder::new(m);
            for (r, p, bits) in raw {
                let lo = bits as usize % m;
                let hi = (lo + (bits as usize / m)) % m;
                let (lo, hi) = (lo.min(hi), lo.max(hi));
                b.push(
                    Task::new(r as f64, p as f64 * 0.5),
                    ProcSet::interval(lo, hi),
                );
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn solver_ladder_is_ordered(inst in small_instances()) {
        // LB ≤ preemptive OPT ≤ exact OPT ≤ local search ≤ EFT.
        let lb = fmax_lower_bound(&inst);
        let pre = optimal_preemptive_fmax(&inst, 1e-6);
        let exact = exact_fmax(&inst, u64::MAX);
        prop_assert!(exact.is_optimal());
        let opt = exact.value();
        let seed = eft(&inst, TieBreak::Min);
        let polished = improve(&inst, &seed, 100).fmax(&inst);
        let online = seed.fmax(&inst);
        prop_assert!(lb <= pre + 1e-4, "LB {lb} > preemptive {pre}");
        prop_assert!(pre <= opt + 1e-4, "preemptive {pre} > exact {opt}");
        prop_assert!(opt <= polished + 1e-9, "exact {opt} > polished {polished}");
        prop_assert!(polished <= online + 1e-9, "polished {polished} > EFT {online}");
    }

    #[test]
    fn instance_json_round_trips(inst in small_instances()) {
        let json = instance_to_json(&inst);
        let back = instance_from_json(&json).unwrap();
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn schedule_json_round_trips(inst in small_instances()) {
        let s = eft(&inst, TieBreak::Min);
        let json = schedule_to_json(&s);
        let back = schedule_from_json(&json, &inst).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn every_dispatch_rule_is_feasible(
        inst in small_instances(),
        rule_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        let rule = match rule_pick {
            0 => DispatchRule::Eft(TieBreak::Max),
            1 => DispatchRule::RandomMachine { seed },
            2 => DispatchRule::TwoChoices { d: 2, seed },
            _ => DispatchRule::RoundRobin,
        };
        let s = dispatch(&inst, rule);
        prop_assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn stepped_equals_event_driven_on_random_batches(
        m in 2usize..6,
        rounds in 1usize..12,
        type_seed in any::<u64>(),
    ) {
        use flowsched::sim::stepped::run_stepped;
        use flowsched::stats::rng::derive_rng;
        use rand::Rng;

        // Random synchronous unit batches over random interval sets.
        let mut rng = derive_rng(type_seed, 0);
        let batches: Vec<Vec<ProcSet>> = (0..rounds)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        let lo = rng.random_range(0..m);
                        let hi = rng.random_range(lo..m);
                        ProcSet::interval(lo, hi)
                    })
                    .collect()
            })
            .collect();
        // Event-driven reference.
        let mut b = InstanceBuilder::new(m);
        for (t, batch) in batches.iter().enumerate() {
            for set in batch {
                b.push_unit(t as f64, set.clone());
            }
        }
        let inst = b.build().unwrap();
        let event_fmax = eft(&inst, TieBreak::Min).fmax(&inst);

        let stepped = run_stepped(m, rounds, TieBreak::Min, |t| batches[t].clone());
        prop_assert_eq!(stepped.fmax as f64, event_fmax);
    }

    #[test]
    fn compose_equals_restricted_eft_on_disjoint_blocks(
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        use flowsched::algos::compose::compose_disjoint;
        let m = 2 * k.max(1);
        let cfg = RandomInstanceConfig {
            m,
            n: 4 * m,
            structure: StructureKind::DisjointBlocks(k),
            release_span: 5,
            unit: false,
            ptime_steps: 4,
        };
        let inst = random_instance(&cfg, seed);
        let composed =
            compose_disjoint(&inst, |sub| eft(sub, TieBreak::Min)).unwrap();
        prop_assert_eq!(composed, eft(&inst, TieBreak::Min));
    }
}
