//! Reproducibility: every stochastic component of the workspace is
//! bit-deterministic given the root seed — the property that makes
//! EXPERIMENTS.md numbers regenerable.

use flowsched::experiments::{ablation, fig08, fig10, fig11, table1, table2, Scale};
use flowsched::kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::prelude::*;
use flowsched::stats::rng::seeded_rng;
use flowsched::stats::zipf::BiasCase;

fn tiny() -> Scale {
    Scale {
        m: 6,
        k: 3,
        permutations: 3,
        repetitions: 2,
        tasks: 300,
        bias_step: 2.5,
        seed: 99,
    }
}

#[test]
fn fig08_is_deterministic() {
    let a = fig08::run(7);
    let b = fig08::run(7);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.load, y.load);
    }
    let c = fig08::run(8);
    assert!(a.iter().zip(&c).any(|(x, y)| x.load != y.load));
}

#[test]
fn fig10_is_deterministic() {
    let a = fig10::run(&tiny());
    let b = fig10::run(&tiny());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.max_load_pct, y.max_load_pct);
    }
}

#[test]
fn fig11_is_deterministic() {
    let a = fig11::run(&tiny());
    let b = fig11::run(&tiny());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(
            x.fmax_median, y.fmax_median,
            "{}/{}",
            x.strategy, x.load_pct
        );
    }
}

#[test]
fn tables_and_ablation_are_deterministic() {
    let s = tiny();
    let t1a = table1::run(&s);
    let t1b = table1::run(&s);
    for (x, y) in t1a.iter().zip(&t1b) {
        assert_eq!(x.worst_ratio, y.worst_ratio);
    }
    let t2a = table2::run(&s);
    let t2b = table2::run(&s);
    for (x, y) in t2a.iter().zip(&t2b) {
        assert_eq!(x.measured, y.measured, "{}", x.reference);
    }
    let aba = ablation::run(&s);
    let abb = ablation::run(&s);
    for (x, y) in aba.iter().zip(&abb) {
        assert_eq!(x.fmax_median, y.fmax_median);
    }
}

#[test]
fn seed_changes_propagate() {
    let mut s2 = tiny();
    s2.seed = 100;
    let a = fig11::run(&tiny());
    let b = fig11::run(&s2);
    assert!(
        a.points
            .iter()
            .zip(&b.points)
            .any(|(x, y)| x.fmax_median != y.fmax_median),
        "different seeds must change stochastic outputs"
    );
}

#[test]
fn cluster_requests_are_reproducible_end_to_end() {
    let make = |seed: u64| {
        let mut rng = seeded_rng(seed);
        let cluster = KvCluster::new(
            ClusterConfig {
                m: 9,
                k: 3,
                strategy: ReplicationStrategy::Overlapping,
                s: 1.0,
                case: BiasCase::Shuffled,
            },
            &mut rng,
        );
        let inst = cluster.requests(500, 4.0, &mut rng);
        eft(&inst, TieBreak::Rand { seed: 5 }).fmax(&inst)
    };
    assert_eq!(make(1), make(1));
}
