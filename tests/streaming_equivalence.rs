//! The streaming path is the batch path: for every engine and every
//! tie-break, driving a generator-backed [`ArrivalStream`] through the
//! shared engine produces exactly the schedule (and report) that
//! materializing the same stream into an `Instance` and running the
//! batch entry point does. Plus Proposition 1 on streams: FIFO's
//! central-queue engine and EFT's immediate-dispatch engine — two
//! independent loops — agree on unrestricted arrival streams.

use proptest::prelude::*;

use flowsched::algos::eft::{eft, eft_stream};
use flowsched::algos::fifo::{fifo, fifo_stream};
use flowsched::algos::policies::{dispatch, dispatch_stream, DispatchRule};
use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::stream::collect_stream;
use flowsched::obs::NoopRecorder;
use flowsched::sim::driver::{simulate, simulate_stream, SimConfig};
use flowsched::sim::report::ReportConfig;
use flowsched::workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

fn any_structure() -> impl Strategy<Value = StructureKind> {
    prop_oneof![
        Just(StructureKind::Unrestricted),
        (1usize..=6).prop_map(StructureKind::IntervalFixed),
        (1usize..=6).prop_map(StructureKind::RingFixed),
        (1usize..=6).prop_map(StructureKind::DisjointBlocks),
        Just(StructureKind::InclusiveChain),
        Just(StructureKind::NestedLaminar),
        Just(StructureKind::General),
    ]
}

fn any_tiebreak() -> impl Strategy<Value = TieBreak> {
    prop_oneof![
        Just(TieBreak::Min),
        Just(TieBreak::Max),
        any::<u64>().prop_map(|seed| TieBreak::Rand { seed }),
    ]
}

fn any_rule() -> impl Strategy<Value = DispatchRule> {
    prop_oneof![
        any_tiebreak().prop_map(DispatchRule::Eft),
        any::<u64>().prop_map(|seed| DispatchRule::RandomMachine { seed }),
        (1usize..=3, any::<u64>()).prop_map(|(d, seed)| DispatchRule::TwoChoices { d, seed }),
        Just(DispatchRule::RoundRobin),
    ]
}

fn stream_config(
    m: usize,
    n: usize,
    structure: StructureKind,
    lambda: f64,
    unit: bool,
) -> PoissonStreamConfig {
    PoissonStreamConfig {
        m,
        n,
        structure,
        lambda,
        unit,
        ptime_steps: 6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// EFT over the live stream == EFT over the materialized instance,
    /// for every structure and tie-break (including `Rand`, where a
    /// single extra RNG draw anywhere in the streaming path would
    /// diverge).
    #[test]
    fn eft_streaming_equals_batch(
        structure in any_structure(),
        tb in any_tiebreak(),
        m in 2usize..8,
        n in 1usize..120,
        lambda in 0.5f64..8.0,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = structure_bound(structure, m);
        let cfg = stream_config(m, n, k, lambda, unit);
        let inst = collect_stream(PoissonStream::new(&cfg, seed)).unwrap();
        let batch = eft(&inst, tb);
        let streamed = eft_stream(PoissonStream::new(&cfg, seed), tb, &mut NoopRecorder);
        prop_assert_eq!(&streamed, &batch);
        streamed.validate(&inst).unwrap();
    }

    /// The load-oblivious dispatch rules ride the same engine: streaming
    /// == batch for RandomMachine, TwoChoices, RoundRobin, and Eft-by-rule.
    #[test]
    fn dispatch_rules_streaming_equals_batch(
        structure in any_structure(),
        rule in any_rule(),
        m in 2usize..8,
        n in 1usize..120,
        lambda in 0.5f64..8.0,
        seed in any::<u64>(),
    ) {
        let k = structure_bound(structure, m);
        let cfg = stream_config(m, n, k, lambda, true);
        let inst = collect_stream(PoissonStream::new(&cfg, seed)).unwrap();
        let batch = dispatch(&inst, rule);
        let streamed = dispatch_stream(PoissonStream::new(&cfg, seed), rule, &mut NoopRecorder);
        prop_assert_eq!(&streamed, &batch);
        streamed.validate(&inst).unwrap();
    }

    /// FIFO's central-queue engine consumes the same stream the batch
    /// wrapper replays — byte-identical schedules (unrestricted only;
    /// FIFO rejects processing-set restrictions).
    #[test]
    fn fifo_streaming_equals_batch(
        tb in any_tiebreak(),
        m in 2usize..8,
        n in 1usize..120,
        lambda in 0.5f64..8.0,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = stream_config(m, n, StructureKind::Unrestricted, lambda, unit);
        let inst = collect_stream(PoissonStream::new(&cfg, seed)).unwrap();
        let batch = fifo(&inst, tb);
        let streamed = fifo_stream(PoissonStream::new(&cfg, seed), tb, &mut NoopRecorder);
        prop_assert_eq!(&streamed, &batch);
    }

    /// Proposition 1 on live streams: the two *independent* engines —
    /// FIFO's event loop and EFT's immediate dispatch — produce the same
    /// schedule from one unrestricted arrival stream, under every common
    /// tie-break.
    #[test]
    fn fifo_equals_eft_on_unrestricted_streams(
        tb in any_tiebreak(),
        m in 2usize..8,
        n in 1usize..120,
        lambda in 0.5f64..8.0,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = stream_config(m, n, StructureKind::Unrestricted, lambda, unit);
        let sf = fifo_stream(PoissonStream::new(&cfg, seed), tb, &mut NoopRecorder);
        let se = eft_stream(PoissonStream::new(&cfg, seed), tb, &mut NoopRecorder);
        prop_assert_eq!(sf, se);
    }

    /// The streaming report fold reproduces the batch report: exact on
    /// every field the [`ReportBuilder`] exactness contract promises,
    /// within one histogram bin on the online percentile estimates.
    #[test]
    fn streaming_report_equals_batch_report(
        structure in any_structure(),
        tb in any_tiebreak(),
        m in 2usize..8,
        n in 2usize..120,
        lambda in 0.5f64..8.0,
        unit in any::<bool>(),
        warmup_fraction in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let k = structure_bound(structure, m);
        let cfg = stream_config(m, n, k, lambda, unit);
        let inst = collect_stream(PoissonStream::new(&cfg, seed)).unwrap();
        let (schedule, batch) =
            simulate(&inst, &SimConfig { policy: tb, warmup_fraction });
        // The batch warmup count, replicated by prefix count.
        let warmup = ((n as f64 * warmup_fraction) as usize).min(n - 1);
        let streamed = simulate_stream(
            PoissonStream::new(&cfg, seed),
            tb,
            &ReportConfig { warmup_tasks: warmup, ..Default::default() },
            &mut NoopRecorder,
        );
        prop_assert_eq!(streamed.n_measured, batch.n_measured);
        prop_assert_eq!(streamed.fmax, batch.fmax);
        prop_assert_eq!(streamed.mean_flow, batch.mean_flow);
        prop_assert_eq!(streamed.max_stretch, batch.max_stretch);
        prop_assert_eq!(streamed.mean_stretch, batch.mean_stretch);
        prop_assert_eq!(&streamed.utilization, &batch.utilization);
        prop_assert_eq!(streamed.drift, batch.drift);
        // Online percentiles come from the histogram, which tracks
        // per-bin sample extremes and interpolates the rank within the
        // bin. That makes the streaming estimate *exact* whenever the
        // bins holding the relevant order statistics contain at most
        // two samples (or all-equal ones), and otherwise pins it within
        // the spread of the samples sharing that bin — strictly tighter
        // than the old one-bin-width bound.
        let mut flows: Vec<f64> = schedule.flow_times(&inst);
        let warm = inst.len() - batch.n_measured;
        flows.drain(..warm);
        flows.sort_by(f64::total_cmp);
        for (q, p_s, p_b) in [
            (0.50, streamed.p50, batch.p50),
            (0.95, streamed.p95, batch.p95),
            (0.99, streamed.p99, batch.p99),
        ] {
            let h = (flows.len() - 1) as f64 * q;
            let tol = [h.floor() as usize, h.ceil() as usize]
                .into_iter()
                .map(|r| bin_slack(&flows, flows[r]))
                .fold(0.0, f64::max);
            prop_assert!(
                (p_s - p_b).abs() <= tol + 1e-9,
                "percentile q={} drifted past the in-bin spread {}: {} vs {}",
                q,
                tol,
                p_s,
                p_b
            );
        }
    }
}

/// Worst-case streaming error for recovering the order statistic `x`
/// from the default report histogram ([0, 1024), 4096 bins): zero when
/// `x`'s bin holds ≤ 2 samples (the per-bin extremes recover them
/// exactly), else the spread of the samples sharing the bin.
fn bin_slack(sorted: &[f64], x: f64) -> f64 {
    const LO: f64 = 0.0;
    const HI: f64 = 1024.0;
    const BINS: f64 = 4096.0;
    let width = (HI - LO) / BINS;
    // Out-of-range samples land in the under/overflow buckets, which
    // track their own extremes; same spread rule applies.
    let (lo, hi) = if x < LO {
        (f64::NEG_INFINITY, LO)
    } else if x >= HI {
        (HI, f64::INFINITY)
    } else {
        let i = ((x - LO) / width).floor();
        (LO + i * width, LO + (i + 1.0) * width)
    };
    let in_bin: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|v| *v >= lo && *v < hi)
        .collect();
    if in_bin.len() <= 2 {
        0.0
    } else {
        in_bin[in_bin.len() - 1] - in_bin[0]
    }
}

/// Clamps structure parameters to the sampled machine count (the `k` in
/// `IntervalFixed(k)` etc. must satisfy `1 ≤ k ≤ m`).
fn structure_bound(structure: StructureKind, m: usize) -> StructureKind {
    match structure {
        StructureKind::IntervalFixed(k) => StructureKind::IntervalFixed(k.min(m)),
        StructureKind::RingFixed(k) => StructureKind::RingFixed(k.min(m)),
        StructureKind::DisjointBlocks(k) => StructureKind::DisjointBlocks(k.min(m)),
        other => other,
    }
}
