//! End-to-end validation of the simulation stack against queueing
//! theory: with Poisson arrivals, exponential service, and no processing
//! set restrictions, FIFO (= EFT by Proposition 1) on `c` identical
//! machines *is* an M/M/c queue, so the simulated mean flow time must
//! match the Erlang-C mean response time. Deterministic service likewise
//! matches M/D/1 on one machine.

use flowsched::kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::prelude::*;
use flowsched::sim::driver::{simulate, SimConfig};
use flowsched::stats::queueing::{md1_mean_response, mm1_mean_response, mmc_mean_response};
use flowsched::stats::rng::derive_rng;
use flowsched::stats::service::ServiceDist;
use flowsched::stats::zipf::BiasCase;

/// Simulated mean flow on `m` unrestricted machines (full replication
/// makes every request eligible everywhere).
fn simulated_mean_flow(m: usize, lambda: f64, dist: ServiceDist, seed: u64) -> f64 {
    let mut acc = 0.0;
    let reps = 5;
    for rep in 0..reps {
        let mut rng = derive_rng(seed, rep);
        let cluster = KvCluster::new(
            ClusterConfig {
                m,
                k: m, // full replication = no restriction
                strategy: ReplicationStrategy::Overlapping,
                s: 0.0,
                case: BiasCase::Uniform,
            },
            &mut rng,
        );
        let inst = cluster.requests_with_service(40_000, lambda, dist, &mut rng);
        let (_, report) = simulate(
            &inst,
            &SimConfig {
                policy: TieBreak::Min,
                warmup_fraction: 0.1,
            },
        );
        acc += report.mean_flow;
    }
    acc / reps as f64
}

#[test]
fn mm1_mean_response_matches_simulation() {
    // λ = 0.5, μ = 1, one machine → mean response 2.0.
    let sim = simulated_mean_flow(1, 0.5, ServiceDist::exp_unit(), 11);
    let theory = mm1_mean_response(0.5, 1.0);
    assert!(
        (sim - theory).abs() / theory < 0.06,
        "simulated {sim} vs M/M/1 {theory}"
    );
}

#[test]
fn mmc_mean_response_matches_simulation() {
    // 4 machines at 70% load.
    let (m, rho) = (4usize, 0.7);
    let lambda = rho * m as f64;
    let sim = simulated_mean_flow(m, lambda, ServiceDist::exp_unit(), 12);
    let theory = mmc_mean_response(lambda, 1.0, m);
    assert!(
        (sim - theory).abs() / theory < 0.06,
        "simulated {sim} vs M/M/{m} {theory}"
    );
}

#[test]
fn md1_mean_response_matches_simulation() {
    // Unit (deterministic) service on one machine at 60% load.
    let sim = simulated_mean_flow(1, 0.6, ServiceDist::unit(), 13);
    let theory = md1_mean_response(0.6, 1.0);
    assert!(
        (sim - theory).abs() / theory < 0.06,
        "simulated {sim} vs M/D/1 {theory}"
    );
}

#[test]
fn deterministic_service_beats_exponential_at_equal_load() {
    // SCV ordering: D < M at the same utilization (PK formula direction).
    let det = simulated_mean_flow(2, 1.4, ServiceDist::unit(), 14);
    let exp = simulated_mean_flow(2, 1.4, ServiceDist::exp_unit(), 14);
    assert!(
        det < exp,
        "deterministic {det} should beat exponential {exp}"
    );
}

#[test]
fn bimodal_service_has_the_worst_tail() {
    // Higher SCV (2.25) → worse tail latency than exponential (1.0) at
    // the same mean and load, on the p99 metric.
    let p99 = |dist: ServiceDist| {
        let mut rng = derive_rng(15, 0);
        let cluster = KvCluster::new(
            ClusterConfig {
                m: 4,
                k: 4,
                strategy: ReplicationStrategy::Overlapping,
                s: 0.0,
                case: BiasCase::Uniform,
            },
            &mut rng,
        );
        let inst = cluster.requests_with_service(40_000, 2.8, dist, &mut rng);
        let (_, report) = simulate(
            &inst,
            &SimConfig {
                policy: TieBreak::Min,
                warmup_fraction: 0.1,
            },
        );
        report.p99
    };
    let bimodal = p99(ServiceDist::mice_and_elephants());
    let exponential = p99(ServiceDist::exp_unit());
    assert!(
        bimodal > exponential,
        "bimodal p99 {bimodal} should exceed exponential p99 {exponential}"
    );
}
