//! The policy registry's contracts, pinned (ISSUE 8):
//!
//! 1. **One construction path, zero drift**: a registry-built policy
//!    produces the *bitwise-identical* schedule and recorder trace to
//!    the directly-constructed dispatcher it names — across workload
//!    families, tie-breaks, kernels, and sequential vs sharded engines.
//! 2. **Names are total**: every [`PolicySpec`] round-trips through its
//!    registry string (`spec.to_string().parse() == spec`), for random
//!    specs and for the curated [`PolicySpec::examples`].
//! 3. **The frontier degenerates cleanly**: `weft@0` and `setup@0`
//!    (both variants) reproduce plain scalar EFT bitwise, including the
//!    tie-break RNG draws.

use proptest::prelude::*;

use flowsched::algos::engine::{
    immediate_schedule, policy_schedule, policy_schedule_sharded, ShardedConfig,
};
use flowsched::algos::indexed::{DispatchKernel, EftKernelState};
use flowsched::algos::policies::{DispatchRule, Dispatcher};
use flowsched::algos::registry::{PolicyId, PolicySpec};
use flowsched::algos::setup::SetupEftState;
use flowsched::algos::soa::ScanImpl;
use flowsched::algos::tiebreak::TieBreak;
use flowsched::algos::weighted::WeightedEftState;
use flowsched::core::schedule::Schedule;
use flowsched::core::shard::DEFAULT_MAX_SHARDS;
use flowsched::core::stream::ArrivalStream;
use flowsched::obs::{MemoryRecorder, NoopRecorder, Recorder};
use flowsched::workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

fn kind_for(idx: usize, k: usize) -> StructureKind {
    match idx {
        0 => StructureKind::DisjointBlocks(k),
        1 => StructureKind::IntervalFixed(k),
        2 => StructureKind::RingFixed(k),
        3 => StructureKind::InclusivePrefix,
        4 => StructureKind::Unrestricted,
        _ => StructureKind::General,
    }
}

fn stream_for(kind: StructureKind, m: usize, n: usize, seed: u64) -> PoissonStream {
    let cfg = PoissonStreamConfig::unit_tasks(m, n, m as f64 / 2.0, kind);
    PoissonStream::new(&cfg, seed)
}

fn arb_tie() -> impl Strategy<Value = TieBreak> {
    prop_oneof![
        Just(TieBreak::Min),
        Just(TieBreak::Max),
        any::<u64>().prop_map(|seed| TieBreak::Rand { seed }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = DispatchKernel> {
    prop_oneof![
        Just(DispatchKernel::Auto),
        Just(DispatchKernel::Scalar),
        Just(DispatchKernel::Indexed),
    ]
}

fn arb_id() -> impl Strategy<Value = PolicyId> {
    prop_oneof![
        arb_tie().prop_map(|tie| PolicyId::Eft { tie }),
        any::<u64>().prop_map(|seed| PolicyId::Random { seed }),
        (1usize..5, any::<u64>()).prop_map(|(d, seed)| PolicyId::Choices { d, seed }),
        Just(PolicyId::RoundRobin),
        (arb_tie(), 0u32..40).prop_map(|(tie, s)| PolicyId::WeightedEft {
            tie,
            slack: s as f64 * 0.25,
        }),
        (arb_tie(), 0u32..40, any::<bool>()).prop_map(|(tie, c, aware)| PolicyId::SetupEft {
            tie,
            cost: c as f64 * 0.25,
            aware,
        }),
    ]
}

fn arb_scan() -> impl Strategy<Value = ScanImpl> {
    prop_oneof![Just(ScanImpl::Simd), Just(ScanImpl::Scalar)]
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    (arb_id(), arb_kernel(), arb_scan()).prop_map(|(id, kernel, scan)| PolicySpec {
        id,
        kernel,
        scan,
    })
}

/// The pre-registry construction path, reproduced literally: resolve
/// the kernel against the stream, build the concrete dispatcher state,
/// run the shared engine. The registry must never drift from this.
fn direct_schedule<S: ArrivalStream, R: Recorder>(
    stream: S,
    spec: &PolicySpec,
    rec: &mut R,
) -> Schedule {
    let kernel = spec.kernel.resolve_for_stream(&stream);
    let m = stream.machines();
    match spec.id {
        PolicyId::Eft { tie } => {
            let mut state = EftKernelState::with_scan(m, tie, kernel, spec.scan);
            immediate_schedule(stream, &mut state, rec)
        }
        PolicyId::Random { seed } => {
            let mut state =
                Dispatcher::with_kernel(m, DispatchRule::RandomMachine { seed }, kernel);
            immediate_schedule(stream, &mut state, rec)
        }
        PolicyId::Choices { d, seed } => {
            let mut state =
                Dispatcher::with_kernel(m, DispatchRule::TwoChoices { d, seed }, kernel);
            immediate_schedule(stream, &mut state, rec)
        }
        PolicyId::RoundRobin => {
            let mut state = Dispatcher::with_kernel(m, DispatchRule::RoundRobin, kernel);
            immediate_schedule(stream, &mut state, rec)
        }
        PolicyId::WeightedEft { tie, slack } => {
            let mut state = WeightedEftState::new(m, tie, slack);
            immediate_schedule(stream, &mut state, rec)
        }
        PolicyId::SetupEft { tie, cost, aware } => {
            let mut state = SetupEftState::new(m, tie, cost, aware);
            immediate_schedule(stream, &mut state, rec)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Contract 2: registry strings are lossless names.
    #[test]
    fn spec_round_trips_through_its_string(spec in arb_spec()) {
        let s = spec.to_string();
        let parsed: PolicySpec = s.parse()
            .unwrap_or_else(|e| panic!("`{s}` failed to re-parse: {e}"));
        prop_assert_eq!(parsed, spec, "string form `{}` was lossy", s);
    }

    /// Contract 1, sequential: schedule + trace bitwise equality with
    /// the direct construction across families × kernels × policies.
    #[test]
    fn registry_matches_direct_construction(
        spec in arb_spec(),
        family in 0usize..6,
        m in 2usize..24,
        n in 1usize..150,
        k_raw in 1usize..8,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let kind = kind_for(family, k);

        let mut direct_rec = MemoryRecorder::with_defaults(m);
        let direct = direct_schedule(stream_for(kind, m, n, seed), &spec, &mut direct_rec);

        let mut reg_rec = MemoryRecorder::with_defaults(m);
        let registry = policy_schedule(stream_for(kind, m, n, seed), &spec, &mut reg_rec);

        prop_assert_eq!(&direct, &registry, "{} on {:?}: schedules differ", spec, kind);
        prop_assert_eq!(
            direct_rec.trace().to_vec(),
            reg_rec.trace().to_vec(),
            "{} on {:?}: recorder traces differ", spec, kind
        );
    }

    /// Contract 1, sharded: for deterministic tie-breaks the registry's
    /// sharded run (shard-local builds via `for_shard`) reproduces its
    /// own sequential run bitwise — for the new families too.
    #[test]
    fn registry_sharded_matches_sequential(
        policy in 0usize..4,
        tb_max in any::<bool>(),
        m_raw in 2usize..24,
        n in 1usize..150,
        k_raw in 1usize..8,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m_raw;
        let m = (m_raw / k).max(1) * k;
        let tie = if tb_max { TieBreak::Max } else { TieBreak::Min };
        let id = match policy {
            0 => PolicyId::Eft { tie },
            1 => PolicyId::WeightedEft { tie, slack: 2.0 },
            2 => PolicyId::SetupEft { tie, cost: 0.5, aware: true },
            _ => PolicyId::SetupEft { tie, cost: 0.5, aware: false },
        };
        let spec = PolicySpec::new(id);
        let kind = StructureKind::DisjointBlocks(k);

        let sequential =
            policy_schedule(stream_for(kind, m, n, seed), &spec, &mut NoopRecorder);

        let stream = stream_for(kind, m, n, seed);
        let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
        let sharded = policy_schedule_sharded(
            stream,
            &spec,
            &plan,
            &ShardedConfig::with_threads(threads),
            &mut NoopRecorder,
        );
        prop_assert_eq!(
            &sequential, &sharded,
            "{} threads={} shards={}: sharded diverged", spec, threads, plan.shards()
        );
    }

    /// Contract 3: the frontier's zero-parameter degenerations are
    /// plain scalar EFT, bitwise, RNG draws included.
    #[test]
    fn zero_parameter_policies_reduce_to_eft(
        variant in 0usize..3,
        tie_idx in 0usize..3,
        m in 2usize..16,
        n in 1usize..120,
        seed in any::<u64>(),
    ) {
        let tie = ["min", "max", "rand@77"][tie_idx];
        let policy = match variant {
            0 => format!("weft@0:{tie}"),
            1 => format!("setup@0:{tie}"),
            _ => format!("setup-obl@0:{tie}"),
        };
        let spec: PolicySpec = policy.parse().expect("valid policy string");
        let eft: PolicySpec = format!("eft:{tie}:scalar").parse().expect("valid eft string");
        let kind = StructureKind::General;

        let frontier =
            policy_schedule(stream_for(kind, m, n, seed), &spec, &mut NoopRecorder);
        let baseline =
            policy_schedule(stream_for(kind, m, n, seed), &eft, &mut NoopRecorder);
        prop_assert_eq!(frontier, baseline, "{} is not scalar EFT", policy);
    }
}

/// The curated examples cover every family and survive both the
/// round-trip and a real build.
#[test]
fn examples_round_trip_and_build() {
    let examples = PolicySpec::examples();
    assert!(
        examples.len() >= 10,
        "examples() shrank: {}",
        examples.len()
    );
    for spec in examples {
        let reparsed: PolicySpec = spec.to_string().parse().expect("example must re-parse");
        assert_eq!(reparsed, spec);
        let state = spec.build(8);
        use flowsched::algos::eft::ImmediateDispatcher;
        assert_eq!(state.machine_count(), 8, "{spec}: wrong machine count");
    }
}
