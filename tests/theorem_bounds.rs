//! End-to-end verification of every lower-bound theorem at parameters
//! different from the unit tests (guarding against constructions that
//! only work at one size).

use flowsched::prelude::*;
use flowsched::workloads::adversary::fixed_size::fixed_size_adversary;
use flowsched::workloads::adversary::inclusive::inclusive_adversary;
use flowsched::workloads::adversary::interval::run_interval_adversary;
use flowsched::workloads::adversary::nested::nested_adversary;
use flowsched::workloads::adversary::padded::padded_interval_adversary;
use flowsched::workloads::adversary::theorem7::theorem7_adversary;

#[test]
fn theorem3_scales_with_m() {
    // Bound ⌊log2 m + 1⌋ at m ∈ {4, 8, 16, 32}.
    for (m, bound) in [(4usize, 3.0), (8, 4.0), (16, 5.0), (32, 6.0)] {
        let p = 10_000.0;
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = inclusive_adversary(&mut algo, p);
        out.validate().unwrap();
        let expected_fmax = bound * p - (bound - 1.0);
        assert!(
            out.fmax() >= expected_fmax - 1e-6,
            "m={m}: Fmax {} < {expected_fmax}",
            out.fmax()
        );
    }
}

#[test]
fn theorem4_scales_with_k() {
    // Bound ⌊log_k m⌋ at (m, k) ∈ {(16,2) → 4, (16,4) → 2, (27,3) → 3}.
    for (m, k, bound) in [(16usize, 2usize, 4.0), (16, 4, 2.0), (27, 3, 3.0)] {
        let p = 10_000.0;
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = fixed_size_adversary(&mut algo, k, p);
        out.validate().unwrap();
        assert!(
            out.ratio() >= bound - 0.01,
            "m={m} k={k}: ratio {} < {bound}",
            out.ratio()
        );
    }
}

#[test]
fn theorem5_nested_bound_across_sizes() {
    for (m, min_fmax) in [(4usize, 4.0), (8, 5.0), (16, 6.0), (64, 8.0)] {
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = nested_adversary(&mut algo);
        out.validate().unwrap();
        assert!(
            out.fmax() >= min_fmax,
            "m={m}: Fmax {} < log2(m)+2 = {min_fmax}",
            out.fmax()
        );
    }
}

#[test]
fn theorem7_ratio_2_for_all_policies() {
    for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 31 }] {
        let mut algo = EftState::new(6, tb);
        let out = theorem7_adversary(&mut algo, 500.0);
        out.validate().unwrap();
        assert!(out.ratio() >= 2.0 - 0.01, "{tb}: ratio {}", out.ratio());
    }
}

#[test]
fn theorem8_exact_bound_across_m_and_k() {
    for (m, k) in [(4usize, 2usize), (6, 3), (9, 4), (12, 2), (15, 3)] {
        let mut algo = EftState::new(m, TieBreak::Min);
        let out = run_interval_adversary(&mut algo, k, m * m);
        out.validate().unwrap();
        assert!(
            out.fmax() >= (m - k + 1) as f64,
            "m={m} k={k}: Fmax {} < m-k+1",
            out.fmax()
        );
    }
}

#[test]
fn theorem9_randomized_bound_with_multiple_seeds() {
    let (m, k) = (6, 3);
    for seed in [1u64, 2, 3] {
        let mut algo = EftState::new(m, TieBreak::Rand { seed });
        let out = run_interval_adversary(&mut algo, k, 600);
        assert!(
            out.fmax() >= (m - k + 1) as f64,
            "seed {seed}: Fmax {}",
            out.fmax()
        );
    }
}

#[test]
fn theorem10_padding_defeats_every_policy_at_scale() {
    let (m, k) = (12usize, 4usize);
    for tb in [TieBreak::Max, TieBreak::Rand { seed: 8 }] {
        let mut algo = EftState::new(m, tb);
        let out = padded_interval_adversary(&mut algo, k, m * m);
        out.validate().unwrap();
        assert!(
            out.fmax() >= (m - k + 1) as f64,
            "{tb}: Fmax {} < {}",
            out.fmax(),
            m - k + 1
        );
    }
}

#[test]
fn adversary_instances_have_the_claimed_structures() {
    use flowsched::core::structure;

    let mut algo = EftState::new(16, TieBreak::Min);
    let inc = inclusive_adversary(&mut algo, 100.0);
    assert!(structure::is_inclusive(inc.instance.sets()));

    let mut algo = EftState::new(16, TieBreak::Min);
    let fixed = fixed_size_adversary(&mut algo, 2, 100.0);
    assert_eq!(structure::fixed_size(fixed.instance.sets()), Some(2));

    let mut algo = EftState::new(16, TieBreak::Min);
    let nested = nested_adversary(&mut algo);
    assert!(structure::is_nested(nested.instance.sets()));

    let mut algo = EftState::new(8, TieBreak::Min);
    let interval = run_interval_adversary(&mut algo, 3, 10);
    assert!(structure::is_interval_family(interval.instance.sets()));
    assert_eq!(structure::fixed_size(interval.instance.sets()), Some(3));
}

#[test]
fn theorem6_disjoint_cluster_loads_match_loadflow_probes() {
    // Theorem 6 composes schedulers over disjoint processing sets; its
    // premise is that work never leaks between clusters. Cross-check
    // that premise through the observability layer: the per-cluster
    // busy time a recorder accumulates under EFT must equal the
    // cluster's total work, and feeding the observed per-cluster load
    // back into LP (15) must reproduce the disjoint-family closed form
    // λ* = min over blocks |block| / w(block) — via both the simplex
    // and the max-flow solver, with their probes landing in the same
    // recorder.
    use flowsched::algos::eft::eft_stream;
    use flowsched::core::stream::InstanceStream;
    use flowsched::obs::{MemoryRecorder, ProbeKind};
    use flowsched::solver::loadflow::{max_load_lp_recorded, MaxLoadProber};
    use flowsched::solver::simplex::SimplexScratch;
    use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

    let (m, k) = (6usize, 2usize);
    let blocks = m / k;
    let cfg = RandomInstanceConfig {
        m,
        n: 180,
        structure: StructureKind::DisjointBlocks(k),
        release_span: 20,
        unit: false,
        ptime_steps: 5,
    };
    let inst = random_instance(&cfg, 42);

    let mut rec = MemoryRecorder::with_defaults(m);
    let schedule = eft_stream(InstanceStream::new(&inst), TieBreak::Min, &mut rec);
    schedule.validate(&inst).unwrap();

    // Ground truth per-cluster work from the instance itself.
    let mut block_work = vec![0.0f64; blocks];
    for (_, task, set) in inst.iter() {
        assert_eq!(set.len(), k, "disjoint generator must emit full blocks");
        let b = set.min().unwrap() / k;
        assert_eq!(set.max().unwrap(), b * k + k - 1);
        block_work[b] += task.ptime;
    }

    // EFT never schedules outside the processing set, so each cluster's
    // recorded busy time is exactly its work.
    for (b, &work) in block_work.iter().enumerate() {
        let busy: f64 = rec.busy_time()[b * k..(b + 1) * k].iter().sum();
        assert!(
            (busy - work).abs() < 1e-9,
            "block {b}: recorded busy {busy} vs instance work {work}"
        );
    }

    // Per-origin weights derived from the *recorder* (not the instance):
    // a machine's popularity is its cluster's observed share of the
    // total busy time, split evenly inside the cluster.
    let total: f64 = rec.busy_time().iter().sum();
    assert!(total > 0.0);
    let weights: Vec<f64> = (0..m)
        .map(|i| {
            let b: f64 = rec.busy_time()[k * (i / k)..k * (i / k) + k].iter().sum();
            b / (k as f64 * total)
        })
        .collect();
    let allowed: Vec<Vec<usize>> = (0..m)
        .map(|i| {
            let lo = k * (i / k);
            (lo..lo + k).collect()
        })
        .collect();

    // Disjoint-family closed form (empty clusters impose no cap).
    let closed = block_work
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| k as f64 / (w / total))
        .fold(f64::INFINITY, f64::min);

    let mut scratch = SimplexScratch::new();
    let lp = max_load_lp_recorded(&weights, &allowed, &mut scratch, &mut rec);
    let mut prober = MaxLoadProber::new(&weights, &allowed);
    let flow = prober.max_load_recorded(1e-9, &mut rec);

    assert!(
        (lp - closed).abs() < 1e-6,
        "simplex λ* {lp} vs closed form {closed}"
    );
    assert!(
        (flow - closed).abs() < 1e-7,
        "max-flow λ* {flow} vs closed form {closed}"
    );

    // Both solver paths reported their probes into the recorder, and the
    // simplex probe carries the λ* it returned.
    let (lp_solves, lp_pivots, lp_last, _) = rec.probe_stats(ProbeKind::SimplexSolve);
    assert_eq!(lp_solves, 1);
    assert!(lp_pivots > 0, "a non-trivial LP (15) pivots at least once");
    assert_eq!(lp_last, lp);
    let (flow_probes, augmentations, _, flow_max) = rec.probe_stats(ProbeKind::LoadFeasibility);
    assert!(
        flow_probes >= 1,
        "the binary search must log its feasibility probes"
    );
    assert!(augmentations > 0);
    // Probed λ values stay inside the search bracket [0, m / Σw].
    assert!(flow_max <= m as f64 + 1e-9);
}

#[test]
fn optimal_values_match_paper_claims_on_small_instances() {
    // The per-construction OPT values the paper states, cross-checked
    // with the exact solvers where tractable.
    use flowsched::algos::offline::{brute_force_fmax, optimal_unit_fmax};

    let mut algo = EftState::new(4, TieBreak::Min);
    let inc = inclusive_adversary(&mut algo, 3.0);
    assert_eq!(brute_force_fmax(&inc.instance), 3.0);

    let mut algo = EftState::new(4, TieBreak::Max);
    let fixed = fixed_size_adversary(&mut algo, 2, 3.0);
    assert_eq!(brute_force_fmax(&fixed.instance), 3.0);

    let interval = flowsched::workloads::adversary::interval::interval_adversary_instance(6, 3, 3);
    assert_eq!(optimal_unit_fmax(&interval), 1.0);
}
