//! Soak tests: large-scale runs guarding against quadratic blow-ups in
//! the hot paths. The heavier ones are `#[ignore]`d by default — run with
//! `cargo test --release --test soak -- --ignored` — while a moderate one
//! always runs to keep the guard active in CI.

use flowsched::kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::prelude::*;
use flowsched::sim::driver::{simulate, SimConfig};
use flowsched::stats::rng::seeded_rng;
use flowsched::stats::zipf::BiasCase;

fn big_run(n: usize) -> f64 {
    let mut rng = seeded_rng(0x50AC);
    let cluster = KvCluster::new(
        ClusterConfig {
            m: 15,
            k: 3,
            strategy: ReplicationStrategy::Overlapping,
            s: 1.0,
            case: BiasCase::Shuffled,
        },
        &mut rng,
    );
    let inst = cluster.requests(n, 7.5, &mut rng);
    let (schedule, report) = simulate(
        &inst,
        &SimConfig {
            policy: TieBreak::Min,
            warmup_fraction: 0.05,
        },
    );
    schedule.validate(&inst).expect("feasible at scale");
    report.fmax
}

#[test]
fn twenty_thousand_requests_stay_fast() {
    // Dispatching is O(n·k) and validation O(n log n); 20k tasks must be
    // comfortable even in debug builds (< a few seconds).
    let start = std::time::Instant::now();
    let fmax = big_run(20_000);
    assert!(fmax >= 1.0);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "20k-task simulation took {:?}",
        start.elapsed()
    );
}

#[test]
#[ignore = "heavy: run with --release -- --ignored"]
fn two_hundred_thousand_requests() {
    let fmax = big_run(200_000);
    assert!(fmax >= 1.0);
}

#[test]
#[ignore = "heavy: run with --release -- --ignored"]
fn adversary_at_m64() {
    use flowsched::workloads::adversary::interval::run_interval_adversary;
    let (m, k) = (64usize, 8usize);
    let mut algo = EftState::new(m, TieBreak::Min);
    let out = run_interval_adversary(&mut algo, k, m * m);
    assert!(out.fmax() >= (m - k + 1) as f64, "Fmax {}", out.fmax());
}

#[test]
fn stepped_fast_path_handles_long_streams() {
    use flowsched::sim::stepped::run_stepped_interval_adversary;
    // 10 000 rounds × 15 tasks = 150k dispatches on the integer path.
    let out = run_stepped_interval_adversary(15, 3, 10_000, TieBreak::Min);
    assert_eq!(out.fmax, 13);
    assert_eq!(out.tasks, 150_000);
}
