//! `SimReport` aggregates must agree with recomputation from the
//! recorded event trace: the report is derived from the schedule, the
//! trace from the dispatch hooks, and any drift between the two means
//! one of the pipelines is lying.

use flowsched::algos::tiebreak::TieBreak;
use flowsched::obs::{Counter, Event, MemoryRecorder, ObsConfig};
use flowsched::sim::driver::{simulate_with, SimConfig};
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

const STRUCTURES: [StructureKind; 6] = [
    StructureKind::Unrestricted,
    StructureKind::IntervalFixed(3),
    StructureKind::RingFixed(3),
    StructureKind::DisjointBlocks(2),
    StructureKind::InclusiveChain,
    StructureKind::General,
];

const POLICIES: [TieBreak; 3] = [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 7 }];

/// Flows, per-machine busy time, and the projected makespan, recomputed
/// from the event trace alone.
fn recompute(rec: &MemoryRecorder, m: usize) -> (Vec<f64>, Vec<f64>, f64) {
    let mut flows = Vec::new();
    let mut busy = vec![0.0f64; m];
    let mut makespan = 0.0f64;
    for ev in rec.trace().iter() {
        match *ev {
            Event::TaskCompletion { at, flow, .. } => {
                flows.push(flow);
                makespan = makespan.max(at);
            }
            Event::TaskDispatch { machine, ptime, .. } => {
                busy[machine as usize] += ptime;
            }
            _ => {}
        }
    }
    (flows, busy, makespan)
}

#[test]
fn report_aggregates_match_the_event_trace_on_randomized_instances() {
    let mut runs = 0usize;
    for (i, &structure) in STRUCTURES.iter().enumerate() {
        for (j, &policy) in POLICIES.iter().enumerate() {
            for rep in 0..7u64 {
                let seed = 1000 * i as u64 + 100 * j as u64 + rep;
                let n = 30 + (seed % 50) as usize;
                let cfg = RandomInstanceConfig {
                    m: 6,
                    n,
                    structure,
                    release_span: 10,
                    unit: rep % 2 == 0,
                    ptime_steps: 6,
                };
                let inst = random_instance(&cfg, seed);
                let mut rec = MemoryRecorder::new(&ObsConfig {
                    trace_capacity: 8 * n,
                    ..ObsConfig::defaults(6)
                });
                let (_, report) = simulate_with(
                    &inst,
                    &SimConfig {
                        policy,
                        ..Default::default()
                    },
                    &mut rec,
                );

                if rec.trace().dropped() > 0 {
                    // A truncated ring means `recompute` would see only a
                    // suffix of the events — comparing against the full
                    // report would be meaningless, and quietly passing on
                    // partial data would be worse. Skip loudly; the
                    // coverage floor below still guarantees the test did
                    // real work.
                    eprintln!(
                        "note: seed {seed}: trace truncated ({} events dropped) — \
                         skipping trace recomputation for this instance",
                        rec.trace().dropped()
                    );
                    continue;
                }
                let (flows, busy, makespan) = recompute(&rec, 6);
                assert_eq!(flows.len(), n, "one completion event per task");
                assert_eq!(report.n_measured, n);

                // fmax and mean flow from the trace.
                let fmax = flows.iter().cloned().fold(0.0, f64::max);
                assert!(
                    (report.fmax - fmax).abs() < 1e-9,
                    "seed {seed}: report fmax {} vs trace {fmax}",
                    report.fmax
                );
                let mean = flows.iter().sum::<f64>() / flows.len() as f64;
                assert!(
                    (report.mean_flow - mean).abs() < 1e-9,
                    "seed {seed}: report mean {} vs trace {mean}",
                    report.mean_flow
                );

                // Utilization: both sides are busy / makespan, with the
                // projected trace makespan equal to the schedule's.
                for (u_report, b) in report.utilization.iter().zip(&busy) {
                    let u_trace = if makespan > 0.0 { b / makespan } else { 0.0 };
                    assert!(
                        (u_report - u_trace).abs() < 1e-9,
                        "seed {seed}: utilization {u_report} vs trace {u_trace}"
                    );
                }
                // The recorder's own aggregates agree too.
                assert_eq!(rec.counters().get(Counter::TasksCompleted), n as u64);
                assert!((rec.makespan_seen() - makespan).abs() < 1e-12);
                runs += 1;
            }
        }
    }
    assert!(runs >= 100, "coverage floor: {runs} randomized instances");
}

#[test]
fn warmup_trimmed_report_still_matches_trace_tail() {
    // With a warm-up fraction, the report covers a suffix of the trace's
    // completions (trace order == dispatch order == release order).
    let cfg = RandomInstanceConfig {
        m: 6,
        n: 80,
        structure: StructureKind::RingFixed(3),
        release_span: 12,
        unit: true,
        ptime_steps: 4,
    };
    let inst = random_instance(&cfg, 99);
    let mut rec = MemoryRecorder::new(&ObsConfig {
        trace_capacity: 8 * 80,
        ..ObsConfig::defaults(6)
    });
    let (_, report) = simulate_with(
        &inst,
        &SimConfig {
            policy: TieBreak::Min,
            warmup_fraction: 0.25,
        },
        &mut rec,
    );
    if rec.trace().dropped() > 0 {
        eprintln!(
            "note: trace truncated ({} events dropped) — skipping tail comparison",
            rec.trace().dropped()
        );
        return;
    }
    let (flows, _, _) = recompute(&rec, 6);
    let warm = inst.len() - report.n_measured;
    let tail = &flows[warm..];
    let fmax = tail.iter().cloned().fold(0.0, f64::max);
    assert!((report.fmax - fmax).abs() < 1e-9);
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!((report.mean_flow - mean).abs() < 1e-9);
}
