//! Property tests for the observability layer: no-op transparency
//! (recording hooks never change a schedule), counter monotonicity,
//! histogram mass conservation, and trace-ordering invariants.

use proptest::prelude::*;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use flowsched::algos::eft::{eft, eft_stream, EftState};
use flowsched::algos::engine::{NullSink, ShardedConfig};
use flowsched::algos::faulty::{run_immediate_faulty, run_immediate_faulty_sharded};
use flowsched::algos::fifo::{fifo, fifo_stream};
use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::fault::FaultEventKind;
use flowsched::core::shard::DEFAULT_MAX_SHARDS;
use flowsched::core::stream::{ArrivalStream, InstanceStream};
use flowsched::core::task::TaskId;
use flowsched::core::ProcSet;
use flowsched::obs::{
    merge_windows, Counter, Event, MemoryRecorder, NoopRecorder, ObsConfig, ShardedRecorder, Tee,
    WindowConfig, WindowedMetrics,
};
use flowsched::sim::driver::{simulate, simulate_with, SimConfig};
use flowsched::sim::stepped::run_stepped_stream;
use flowsched::workloads::faults::{random_fault_plan, FaultPlanConfig};
use flowsched::workloads::random::{
    random_instance, PoissonStream, PoissonStreamConfig, RandomInstanceConfig, StructureKind,
};

fn any_structure() -> impl Strategy<Value = StructureKind> {
    prop_oneof![
        Just(StructureKind::Unrestricted),
        (1usize..=6).prop_map(StructureKind::IntervalFixed),
        (1usize..=6).prop_map(StructureKind::RingFixed),
        (1usize..=6).prop_map(StructureKind::DisjointBlocks),
        Just(StructureKind::InclusiveChain),
        Just(StructureKind::NestedLaminar),
        Just(StructureKind::General),
    ]
}

fn any_tiebreak() -> impl Strategy<Value = TieBreak> {
    prop_oneof![
        Just(TieBreak::Min),
        Just(TieBreak::Max),
        any::<u64>().prop_map(|seed| TieBreak::Rand { seed }),
    ]
}

/// A recorder big enough to retain every event of an `n`-task run (a
/// dispatch emits at most 4 events: arrival, busy/idle, dispatch,
/// completion).
fn lossless_recorder(m: usize, n: usize) -> MemoryRecorder {
    MemoryRecorder::new(&ObsConfig {
        trace_capacity: 8 * n.max(1),
        ..ObsConfig::defaults(m)
    })
}

fn instance_of(
    kind: StructureKind,
    n: usize,
    unit: bool,
    seed: u64,
) -> flowsched::core::instance::Instance {
    let cfg = RandomInstanceConfig {
        m: 6,
        n,
        structure: kind,
        release_span: 12,
        unit,
        ptime_steps: 6,
    };
    random_instance(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Neither the no-op recorder nor a real in-memory recorder may
    /// perturb the schedule — including under the `Rand` tie-break,
    /// where an extra RNG draw in the hook path would diverge.
    #[test]
    fn recording_never_changes_the_schedule(
        kind in any_structure(),
        tb in any_tiebreak(),
        n in 1usize..80,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let inst = instance_of(kind, n, unit, seed);
        let plain = eft(&inst, tb);
        prop_assert_eq!(
            &plain,
            &eft_stream(InstanceStream::new(&inst), tb, &mut NoopRecorder)
        );
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        prop_assert_eq!(&plain, &eft_stream(InstanceStream::new(&inst), tb, &mut rec));
        let (sim_plain, report_plain) = simulate(&inst, &SimConfig::default());
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        let (sim_rec, report_rec) = simulate_with(&inst, &SimConfig::default(), &mut rec);
        prop_assert_eq!(&sim_plain, &sim_rec);
        prop_assert_eq!(report_plain, report_rec);
    }

    /// FIFO's recorded engine is likewise transparent (unrestricted
    /// instances only — FIFO rejects processing-set restrictions).
    #[test]
    fn recording_never_changes_fifo(
        tb in any_tiebreak(),
        n in 1usize..60,
        seed in any::<u64>(),
    ) {
        let inst = instance_of(StructureKind::Unrestricted, n, false, seed);
        let plain = fifo(&inst, tb);
        prop_assert_eq!(
            &plain,
            &fifo_stream(InstanceStream::new(&inst), tb, &mut NoopRecorder)
        );
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        prop_assert_eq!(&plain, &fifo_stream(InstanceStream::new(&inst), tb, &mut rec));
    }

    /// Counters are monotone over the run: snapshotting the bank after
    /// every dispatch must never show any counter decreasing.
    #[test]
    fn counters_are_monotone(
        kind in any_structure(),
        tb in any_tiebreak(),
        seed in any::<u64>(),
    ) {
        let inst = instance_of(kind, 50, true, seed);
        let mut state = EftState::new(inst.machines(), tb);
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        let mut prev = vec![0u64; Counter::ALL.len()];
        for (_, task, set) in inst.iter() {
            state.dispatch_recorded(task, set, &mut rec);
            for (slot, &c) in prev.iter_mut().zip(Counter::ALL.iter()) {
                let now = rec.counters().get(c);
                prop_assert!(now >= *slot, "{} decreased: {} -> {now}", c.name(), *slot);
                *slot = now;
            }
        }
        prop_assert_eq!(rec.counters().get(Counter::TasksDispatched), inst.len() as u64);
    }

    /// Histogram mass conservation: every dispatched task contributes
    /// exactly one observation (bins + underflow + overflow).
    #[test]
    fn histogram_mass_equals_observation_count(
        kind in any_structure(),
        tb in any_tiebreak(),
        n in 1usize..80,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let inst = instance_of(kind, n, unit, seed);
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        let _ = eft_stream(InstanceStream::new(&inst), tb, &mut rec);
        prop_assert_eq!(rec.flow_histogram().total(), inst.len() as u64);
        prop_assert_eq!(
            rec.counters().get(Counter::TasksDispatched),
            rec.flow_histogram().total()
        );
    }

    /// Trace-ordering invariants of the immediate-dispatch trace:
    /// dispatch events appear in task order with the schedule's exact
    /// start times; per machine, busy/idle transitions strictly
    /// alternate starting with busy, at non-decreasing timestamps.
    #[test]
    fn trace_is_consistent_with_the_schedule(
        kind in any_structure(),
        tb in any_tiebreak(),
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let inst = instance_of(kind, n, true, seed);
        let mut rec = lossless_recorder(inst.machines(), inst.len());
        let schedule = eft_stream(InstanceStream::new(&inst), tb, &mut rec);
        prop_assert_eq!(rec.trace().dropped(), 0, "lossless ring must not drop");

        let mut next_task = 0usize;
        let mut machine_state: Vec<(Option<bool>, f64)> =
            vec![(None, 0.0); inst.machines()]; // (last transition, its time)
        for ev in rec.trace().iter() {
            match *ev {
                Event::TaskDispatch { task, machine, start, ptime } => {
                    // EFT feeds tasks in release order: seq == TaskId.
                    prop_assert_eq!(task, next_task as u64);
                    let id = TaskId(next_task);
                    prop_assert_eq!(start, schedule.start(id));
                    prop_assert_eq!(machine as usize, schedule.machine(id).index());
                    prop_assert_eq!(ptime, inst.tasks()[next_task].ptime);
                    next_task += 1;
                }
                Event::MachineBusy { machine, at } => {
                    let (last, t) = machine_state[machine as usize];
                    prop_assert!(last != Some(true), "machine {machine}: busy twice");
                    prop_assert!(at >= t, "machine {machine}: time went backwards");
                    machine_state[machine as usize] = (Some(true), at);
                }
                Event::MachineIdle { machine, at } => {
                    let (last, t) = machine_state[machine as usize];
                    prop_assert_eq!(last, Some(true), "idle without a preceding busy");
                    prop_assert!(at >= t, "machine {machine}: time went backwards");
                    machine_state[machine as usize] = (Some(false), at);
                }
                _ => {}
            }
        }
        prop_assert_eq!(next_task, inst.len());
    }

    /// The stepped fast path follows the same machine-transition
    /// convention as every other engine run: per machine, busy/idle
    /// strictly alternate starting with busy at non-decreasing
    /// timestamps, and the transition lists are *identical* to those
    /// the event-driven engine emits on the materialized instance.
    #[test]
    fn stepped_transitions_follow_the_engine_convention(
        tb in any_tiebreak(),
        m in 2usize..6,
        steps in 1usize..16,
        batches in prop::collection::vec(
            prop::collection::vec((0usize..6, 0usize..6), 0..4),
            1..16,
        ),
    ) {
        // Deterministic per-round batches of non-empty interval sets.
        let rounds: Vec<Vec<ProcSet>> = (0..steps)
            .map(|t| {
                batches[t % batches.len()]
                    .iter()
                    .map(|&(a, b)| {
                        let (lo, hi) = (a.min(b) % m, a.max(b) % m);
                        ProcSet::interval(lo.min(hi), lo.max(hi))
                    })
                    .collect()
            })
            .collect();
        let total: usize = rounds.iter().map(Vec::len).sum();

        let mut rec = lossless_recorder(m, total.max(1));
        let outcome = run_stepped_stream(m, steps, tb, |t| rounds[t].clone(), &mut rec);
        prop_assert_eq!(outcome.tasks, total);
        prop_assert_eq!(rec.trace().dropped(), 0, "lossless ring must not drop");

        let transitions = |rec: &MemoryRecorder| -> Vec<(bool, u32, f64)> {
            rec.trace()
                .iter()
                .filter_map(|ev| match *ev {
                    Event::MachineBusy { machine, at } => Some((true, machine, at)),
                    Event::MachineIdle { machine, at } => Some((false, machine, at)),
                    _ => None,
                })
                .collect()
        };
        let stepped_transitions = transitions(&rec);

        // Alternation invariant, per machine.
        let mut machine_state: Vec<(Option<bool>, f64)> = vec![(None, 0.0); m];
        for &(busy, machine, at) in &stepped_transitions {
            let (last, t) = machine_state[machine as usize];
            if busy {
                prop_assert!(last != Some(true), "machine {}: busy twice", machine);
            } else {
                prop_assert_eq!(last, Some(true), "idle without a preceding busy");
            }
            prop_assert!(at >= t, "machine {}: time went backwards", machine);
            machine_state[machine as usize] = (Some(busy), at);
        }
        if total > 0 {
            prop_assert!(
                stepped_transitions.iter().any(|&(busy, _, _)| busy),
                "a non-empty stepped run must emit at least one busy transition"
            );
        }

        // Cross-engine: the event-driven engine on the materialized
        // instance emits the identical transition list.
        let mut b = flowsched::core::InstanceBuilder::new(m);
        for (t, round) in rounds.iter().enumerate() {
            for set in round {
                b.push_unit(t as f64, set.clone());
            }
        }
        if let Ok(inst) = b.build() {
            let mut event_rec = lossless_recorder(m, total.max(1));
            let _ = eft_stream(InstanceStream::new(&inst), tb, &mut event_rec);
            prop_assert_eq!(stepped_transitions, transitions(&event_rec));
        } else {
            // Empty instance: no transitions expected either.
            prop_assert!(stepped_transitions.is_empty());
        }
    }

    /// Sharded telemetry is independent of worker interleaving: running
    /// a batch of simulation jobs with per-job recorder shards and
    /// merging the shards in job order yields *the same* snapshot for
    /// every thread count — counters exact, histogram (counts, sum,
    /// per-bin extremes via the quantiles they feed) exact, busy time
    /// and makespan exact, and the merged trace equal to the
    /// single-recorder sequential trace (job-order concatenation is a
    /// valid deterministic interleaving).
    #[test]
    fn sharded_telemetry_is_thread_count_invariant(
        kind in any_structure(),
        tb in any_tiebreak(),
        jobs in 1usize..9,
        threads in 2usize..5,
        unit in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let instances: Vec<_> = (0..jobs)
            .map(|j| instance_of(kind, 10 + 7 * j, unit, seed ^ (j as u64) << 4))
            .collect();
        let per_job = |inst: &flowsched::core::instance::Instance| {
            let cfg = ObsConfig {
                trace_capacity: 8 * inst.len().max(1),
                ..ObsConfig::defaults(6)
            };
            let mut rec = Tee(
                ShardedRecorder::shard(&cfg),
                WindowedMetrics::new(WindowConfig::defaults(6, 4.0)),
            );
            let _ = simulate_with(inst, &SimConfig { policy: tb, ..Default::default() }, &mut rec);
            (rec.0, rec.1)
        };

        // Single-threaded sharded run: jobs in order, one shard each.
        let seq: Vec<_> = instances.iter().map(per_job).collect();

        // Parallel sharded run, `par_map`'s exact work-stealing shape:
        // workers claim job indices off a shared cursor, results land
        // back in job order.
        let par: Vec<_> = {
            let mut slots: Vec<Mutex<Option<(MemoryRecorder, WindowedMetrics)>>> =
                Vec::with_capacity(jobs);
            slots.resize_with(jobs, || Mutex::new(None));
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(inst) = instances.get(i) else { break };
                        *slots[i].lock().unwrap() = Some(per_job(inst));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("every job ran"))
                .collect()
        };

        // Merge both shard sets in job order; a big enough target ring
        // keeps the concatenated trace lossless.
        let total: usize = instances.iter().map(|i| i.len()).sum();
        let merge_cfg = ObsConfig {
            trace_capacity: 8 * total.max(1),
            ..ObsConfig::defaults(6)
        };
        let window_cfg = WindowConfig::defaults(6, 4.0);
        let merge = |shards: Vec<(MemoryRecorder, WindowedMetrics)>| {
            let (recs, wins): (Vec<_>, Vec<_>) = shards.into_iter().unzip();
            let merged = ShardedRecorder::from_shards(recs).merged(&merge_cfg);
            (merged, merge_windows(&window_cfg, wins.iter()))
        };
        let (seq_rec, seq_win) = merge(seq);
        let (par_rec, par_win) = merge(par);

        // The merged snapshots are identical — bitwise, not approximately:
        // per-job shards are deterministic, so thread count cannot leak in.
        for c in Counter::ALL {
            prop_assert_eq!(seq_rec.counters().get(c), par_rec.counters().get(c), "{}", c.name());
        }
        prop_assert_eq!(seq_rec.flow_histogram().counts(), par_rec.flow_histogram().counts());
        prop_assert_eq!(seq_rec.flow_histogram().sum(), par_rec.flow_histogram().sum());
        prop_assert_eq!(seq_rec.flow_histogram().quantile(0.95), par_rec.flow_histogram().quantile(0.95));
        prop_assert_eq!(seq_rec.busy_time(), par_rec.busy_time());
        prop_assert_eq!(seq_rec.makespan_seen(), par_rec.makespan_seen());
        let seq_trace: Vec<Event> = seq_rec.trace().iter().copied().collect();
        let par_trace: Vec<Event> = par_rec.trace().iter().copied().collect();
        prop_assert_eq!(&seq_trace, &par_trace);
        for (a, b) in seq_win.windows().iter().zip(par_win.windows().iter()) {
            prop_assert_eq!(a.arrivals, b.arrivals);
            prop_assert_eq!(a.starts, b.starts);
            prop_assert_eq!(a.completions, b.completions);
            prop_assert_eq!(a.queue_time, b.queue_time);
            prop_assert_eq!(&a.busy, &b.busy);
        }
        prop_assert_eq!(seq_win.windows().len(), par_win.windows().len());

        // And the merged shards agree with one recorder that saw every
        // job sequentially: the trace is the job-order concatenation
        // (so the merge is a *valid* interleaving), counters and
        // histogram mass are conserved.
        let mut single = MemoryRecorder::new(&merge_cfg);
        for inst in &instances {
            let _ = simulate_with(inst, &SimConfig { policy: tb, ..Default::default() }, &mut single);
        }
        for c in Counter::ALL {
            prop_assert_eq!(single.counters().get(c), seq_rec.counters().get(c), "{}", c.name());
        }
        prop_assert_eq!(single.flow_histogram().counts(), seq_rec.flow_histogram().counts());
        let single_trace: Vec<Event> = single.trace().iter().copied().collect();
        prop_assert_eq!(&single_trace, &seq_trace);
    }

    /// Crash/recover lifecycle events survive the sharded-recorder
    /// merge at every thread count: each job runs the faulty sharded
    /// engine into its own recorder shard; merging the shards in job
    /// order yields the same `MachineCrashes`/`MachineRecoveries`
    /// counters (exactly the plans' event totals), the same full trace,
    /// and a crash/recover subsequence identical to the sequential
    /// faulty engine's — lifecycle replay happens before any dispatch,
    /// so worker interleaving cannot reorder or drop it.
    #[test]
    fn faulty_sharded_lifecycle_is_thread_count_invariant(
        jobs in 1usize..4,
        k_idx in 0usize..3,
        n in 1usize..60,
        rate in 0.02f64..0.4,
        tb in any_tiebreak(),
        seed in any::<u64>(),
    ) {
        let m = 6usize;
        let k = [1usize, 2, 3][k_idx]; // k | m: genuine multi-shard plans
        let fault_cfg = FaultPlanConfig {
            horizon: 30.0,
            crash_rate: rate,
            mean_downtime: 2.0,
            degraded_fraction: 0.0,
            min_speed: 0.25,
            dispatch_latency: 0.0,
        };
        let plans: Vec<_> = (0..jobs)
            .map(|j| random_fault_plan(m, &fault_cfg, seed ^ ((j as u64) << 7)))
            .collect();
        let stream_of = |j: usize| {
            let cfg = PoissonStreamConfig::unit_tasks(
                m,
                n + 5 * j,
                m as f64 / 2.0,
                StructureKind::DisjointBlocks(k),
            );
            PoissonStream::new(&cfg, seed ^ (j as u64))
        };

        // One ring big enough for every job's dispatch events plus the
        // injected lifecycle, so the merged trace stays lossless.
        let total_events: usize = plans.iter().map(|p| p.events().len()).sum();
        let total_tasks: usize = (0..jobs).map(|j| n + 5 * j).sum();
        let cfg = ObsConfig {
            trace_capacity: 8 * (total_tasks + total_events).max(1),
            ..ObsConfig::defaults(m)
        };

        let run_merged = |threads: usize| {
            let shards: Vec<MemoryRecorder> = (0..jobs)
                .map(|j| {
                    let mut rec = ShardedRecorder::shard(&cfg);
                    let stream = stream_of(j);
                    let shard_plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
                    run_immediate_faulty_sharded(
                        stream,
                        &plans[j],
                        tb,
                        &shard_plan,
                        &ShardedConfig::with_threads(threads),
                        &mut rec,
                        &mut NullSink,
                    );
                    rec
                })
                .collect();
            ShardedRecorder::from_shards(shards).merged(&cfg)
        };
        let one = run_merged(1); // inline path
        let four = run_merged(4); // threaded path

        // Lifecycle counters are exactly the plans' event totals.
        let count_kind = |kind: FaultEventKind| -> u64 {
            plans
                .iter()
                .flat_map(|p| p.events())
                .filter(|e| e.kind == kind)
                .count() as u64
        };
        let crashes = count_kind(FaultEventKind::Crash);
        let recoveries = count_kind(FaultEventKind::Recover);
        for rec in [&one, &four] {
            prop_assert_eq!(rec.trace().dropped(), 0, "lossless ring must not drop");
            prop_assert_eq!(rec.counters().get(Counter::MachineCrashes), crashes);
            prop_assert_eq!(rec.counters().get(Counter::MachineRecoveries), recoveries);
        }

        // Bitwise thread-count invariance of the merged snapshot.
        for c in Counter::ALL {
            prop_assert_eq!(one.counters().get(c), four.counters().get(c), "{}", c.name());
        }
        let trace_one: Vec<Event> = one.trace().iter().copied().collect();
        let trace_four: Vec<Event> = four.trace().iter().copied().collect();
        prop_assert_eq!(&trace_one, &trace_four);

        // The crash/recover subsequence matches the sequential faulty
        // engine job for job (the full trace already matches for
        // Min/Max; Rand shards draw per-shard RNG streams, but the
        // lifecycle replay is dispatch-independent).
        let lifecycle = |trace: &[Event]| -> Vec<Event> {
            trace
                .iter()
                .filter(|e| {
                    matches!(e, Event::MachineCrash { .. } | Event::MachineRecover { .. })
                })
                .copied()
                .collect()
        };
        let mut seq_lifecycle = Vec::new();
        for (j, plan) in plans.iter().enumerate() {
            let mut rec = MemoryRecorder::new(&cfg);
            run_immediate_faulty(stream_of(j), plan, tb, &mut rec, &mut NullSink);
            let trace: Vec<Event> = rec.trace().iter().copied().collect();
            seq_lifecycle.extend(lifecycle(&trace));
        }
        prop_assert_eq!(lifecycle(&trace_one), seq_lifecycle);
    }
}
