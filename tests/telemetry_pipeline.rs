//! End-to-end acceptance for the telemetry pipeline: one instrumented
//! streaming run produces a structurally valid Chrome trace (what the
//! `timeline` binary writes), a well-formed Prometheus exposition, and
//! a windowed CSV time series — and all three agree with the recorder
//! they were derived from.

use flowsched::algos::tiebreak::TieBreak;
use flowsched::obs::{
    chrome_trace, machine_spans, prometheus_text, task_spans, windows_to_csv, Counter,
};
use flowsched::sim::report::ReportConfig;
use flowsched::sim::telemetry::{simulate_stream_telemetry, Telemetry, TelemetryConfig};
use flowsched::workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};
use serde_json::Value;

const M: usize = 8;
const N: usize = 400;

/// One deterministic instrumented run shared by every check below.
fn pipeline_run() -> Telemetry {
    let cfg = PoissonStreamConfig {
        m: M,
        n: N,
        structure: StructureKind::RingFixed(3),
        lambda: 0.6 * M as f64,
        unit: false,
        ptime_steps: 5,
    };
    let mut telemetry_cfg = TelemetryConfig::defaults(M, 2.0);
    telemetry_cfg.obs.trace_capacity = 8 * N; // lossless, like `timeline`
    simulate_stream_telemetry(
        PoissonStream::new(&cfg, 1234),
        TieBreak::Min,
        &ReportConfig::default(),
        &telemetry_cfg,
    )
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected JSON array, got {other:?}"),
    }
}

#[test]
fn chrome_trace_is_structurally_valid_and_complete() {
    let t = pipeline_run();
    assert_eq!(t.recorder.trace().dropped(), 0, "ring sized to be lossless");
    let tasks = task_spans(t.recorder.trace().iter());
    let machines = machine_spans(t.recorder.trace().iter(), t.recorder.makespan_seen());
    assert_eq!(tasks.len(), N, "one lifecycle span per task");

    let json = chrome_trace(&tasks, &machines);
    let root: Value = serde_json::from_str(&json).expect("trace is valid JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = as_array(root.get("traceEvents").expect("traceEvents key"));

    let mut machine_tracks = Vec::new();
    let mut process_names = Vec::new();
    let mut x_count = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        match ev.get("ph").and_then(Value::as_str) {
            Some("M") => {
                let name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("metadata events carry a name");
                match ev.get("name").and_then(Value::as_str) {
                    Some("process_name") => process_names.push(name.to_string()),
                    Some("thread_name") => machine_tracks.push(name.to_string()),
                    other => panic!("unexpected metadata record {other:?}"),
                }
            }
            Some("X") => {
                // Complete events only (no unbalanced B/E pairs), sorted
                // by timestamp with non-negative durations.
                let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= last_ts, "trace not sorted: {ts} after {last_ts}");
                assert!(dur >= 0.0);
                last_ts = ts;
                x_count += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // Machine and task process tracks, one named thread per machine per
    // process.
    assert!(process_names.contains(&"machines".to_string()));
    assert!(process_names.contains(&"tasks".to_string()));
    for m in 0..M {
        let label = format!("machine {m}");
        assert_eq!(
            machine_tracks.iter().filter(|t| **t == label).count(),
            2,
            "one {label} track in each process"
        );
    }
    assert_eq!(x_count, tasks.len() + machines.len());

    // Task spans carry the flow decomposition Perfetto shows on click.
    let any_task = events
        .iter()
        .find(|e| {
            e.get("ph").and_then(Value::as_str) == Some("X")
                && e.get("pid").and_then(Value::as_f64) == Some(2.0)
        })
        .expect("at least one task event");
    for key in ["release", "wait", "flow"] {
        assert!(
            any_task.get("args").and_then(|a| a.get(key)).is_some(),
            "task args missing {key}"
        );
    }
}

#[test]
fn prometheus_exposition_matches_the_recorder() {
    let t = pipeline_run();
    let text = prometheus_text(&t.recorder);

    // Every counter appears with its exact value.
    for (c, v) in [
        (Counter::TasksArrived, N as u64),
        (Counter::TasksDispatched, N as u64),
        (Counter::TasksCompleted, N as u64),
    ] {
        assert_eq!(t.recorder.counters().get(c), v);
        let line = format!("flowsched_{}_total {v}", c.name());
        assert!(text.contains(&line), "missing {line:?} in exposition");
    }

    // One utilization gauge per machine, histogram count equal to the
    // recorded mass, cumulative buckets ending in +Inf.
    for m in 0..M {
        assert!(text.contains(&format!("flowsched_machine_utilization{{machine=\"{m}\"}}")));
    }
    let count_line = format!(
        "flowsched_flow_time_count {}",
        t.recorder.flow_histogram().total()
    );
    assert!(text.contains(&count_line), "missing {count_line:?}");
    let buckets: Vec<f64> = text
        .lines()
        .filter(|l| l.starts_with("flowsched_flow_time_bucket"))
        .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty());
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative"
    );
    assert!(text.contains("le=\"+Inf\""));
    assert_eq!(
        *buckets.last().unwrap() as u64,
        t.recorder.flow_histogram().total()
    );
}

#[test]
fn csv_time_series_conserves_the_run() {
    let t = pipeline_run();
    let csv = windows_to_csv(&t.windows);
    let mut lines = csv.lines();
    let header = lines.next().expect("header row");
    assert!(header.starts_with(
        "window,t_start,t_end,arrivals,starts,completions,arrival_rate,completion_rate"
    ));
    let cols = header.split(',').count();
    assert_eq!(cols, 13 + M, "13 fixed columns plus one per machine");

    let mut arrivals = 0u64;
    let mut completions = 0u64;
    let mut rows = 0usize;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), cols, "ragged CSV row: {line:?}");
        arrivals += fields[3].parse::<u64>().expect("arrivals column");
        completions += fields[5].parse::<u64>().expect("completions column");
        rows += 1;
    }
    assert_eq!(rows, t.windows.windows().len());
    assert_eq!(
        arrivals, N as u64,
        "every arrival lands in exactly one window"
    );
    assert_eq!(completions, N as u64);
}

#[test]
fn spans_agree_with_the_aggregate_recorder() {
    let t = pipeline_run();
    let tasks = task_spans(t.recorder.trace().iter());
    let machines = machine_spans(t.recorder.trace().iter(), t.recorder.makespan_seen());

    // Total busy time from machine spans == the recorder's busy vector.
    let span_busy: f64 = machines.iter().map(|s| s.end - s.start).sum();
    let rec_busy: f64 = t.recorder.busy_time().iter().sum();
    assert!(
        (span_busy - rec_busy).abs() < 1e-6,
        "busy spans {span_busy} vs recorder {rec_busy}"
    );

    // Flow recomputed from spans matches the report's maximum exactly.
    let span_fmax = tasks.iter().map(|s| s.flow()).fold(0.0, f64::max);
    assert!((span_fmax - t.report.fmax).abs() < 1e-9);
}
