//! Competitive-ratio guarantees verified end-to-end against exact
//! optima: Theorem 1 (`3 − 2/m`), Theorem 2 (unit-task optimality) and
//! Corollary 1 (`3 − 2/k` on disjoint sets).

use proptest::prelude::*;

use flowsched::algos::offline::{brute_force_fmax, optimal_unit_fmax};
use flowsched::prelude::*;
use flowsched::workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn theorem1_fifo_is_3_minus_2_over_m_competitive(
        m in 2usize..5,
        raw in prop::collection::vec((0u32..6, 1u32..9), 2..9),
    ) {
        // General processing times, exact optimum by exhaustive search.
        let mut b = InstanceBuilder::new(m);
        for (r, p) in raw {
            b.push_unrestricted(Task::new(r as f64, p as f64 * 0.5));
        }
        let inst = b.build().unwrap();
        let achieved = fifo(&inst, TieBreak::Min).fmax(&inst);
        let opt = brute_force_fmax(&inst);
        let bound = 3.0 - 2.0 / m as f64;
        prop_assert!(
            achieved <= bound * opt + 1e-9,
            "FIFO {achieved} vs bound {bound} × OPT {opt}"
        );
    }

    #[test]
    fn theorem2_fifo_is_optimal_on_unit_tasks(
        m in 1usize..5,
        raw in prop::collection::vec(0u32..8, 1..40),
    ) {
        let mut b = InstanceBuilder::new(m);
        for r in raw {
            b.push_unrestricted(Task::unit(r as f64));
        }
        let inst = b.build().unwrap();
        let achieved = fifo(&inst, TieBreak::Min).fmax(&inst);
        let opt = optimal_unit_fmax(&inst);
        prop_assert!(
            (achieved - opt).abs() < 1e-9,
            "FIFO {achieved} must equal OPT {opt} on unit tasks"
        );
    }

    #[test]
    fn corollary1_eft_on_disjoint_sets(
        k in 2usize..4,
        seed in any::<u64>(),
        tb_max in any::<bool>(),
    ) {
        // EFT is (3 − 2/k)-competitive on disjoint size-k families.
        let m = 2 * k;
        let cfg = RandomInstanceConfig {
            m,
            n: 5 * m,
            structure: StructureKind::DisjointBlocks(k),
            release_span: 5,
            unit: true,
            ptime_steps: 4,
        };
        let inst = random_instance(&cfg, seed);
        let tb = if tb_max { TieBreak::Max } else { TieBreak::Min };
        let achieved = eft(&inst, tb).fmax(&inst);
        let opt = optimal_unit_fmax(&inst);
        let bound = 3.0 - 2.0 / k as f64;
        prop_assert!(
            achieved <= bound * opt + 1e-9,
            "EFT {achieved} vs ({bound}) × OPT {opt}"
        );
    }

    #[test]
    fn unit_disjoint_eft_is_even_optimal(
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        // Stronger than Corollary 1 on unit tasks: EFT = FIFO per block
        // and FIFO is optimal for unit tasks (Th. 2 + Th. 6 composition).
        let m = 2 * k;
        let cfg = RandomInstanceConfig {
            m,
            n: 4 * m,
            structure: StructureKind::DisjointBlocks(k),
            release_span: 6,
            unit: true,
            ptime_steps: 4,
        };
        let inst = random_instance(&cfg, seed);
        let achieved = eft(&inst, TieBreak::Min).fmax(&inst);
        let opt = optimal_unit_fmax(&inst);
        prop_assert!((achieved - opt).abs() < 1e-9, "EFT {achieved} vs OPT {opt}");
    }
}

/// Deterministic large-scale sanity check of Theorem 1 using the
/// polynomial lower bound instead of brute force (LB ≤ OPT, so the bound
/// check is conservative and cannot false-fail).
#[test]
fn theorem1_holds_at_scale_with_lower_bound() {
    for m in [4usize, 8, 16] {
        for seed in 0..5u64 {
            let cfg = RandomInstanceConfig {
                m,
                n: 30 * m,
                structure: StructureKind::Unrestricted,
                release_span: 10,
                unit: false,
                ptime_steps: 8,
            };
            let inst = random_instance(&cfg, seed);
            let achieved = fifo(&inst, TieBreak::Min).fmax(&inst);
            let lb = flowsched::algos::offline::fmax_lower_bound(&inst);
            let bound = 3.0 - 2.0 / m as f64;
            assert!(
                achieved <= bound * lb.max(inst.pmax()) + 1e-9,
                "m={m} seed={seed}: FIFO {achieved} vs bound {bound} × LB {lb}"
            );
        }
    }
}
