//! Cross-validation of the optimization substrates: the simplex LP, the
//! max-flow bisection, the Hopcroft–Karp matcher and the exhaustive
//! schedulers must all agree wherever their domains overlap.

use proptest::prelude::*;

use flowsched::prelude::*;
use flowsched::solver::loadflow::{load_is_feasible, max_load_binary_search, max_load_lp};
use flowsched::solver::simplex::{LinearProgram, LpOutcome, Relation};

/// Random replication-like configurations: weights + one allowed set per
/// origin that always contains the origin.
fn load_configs() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (2usize..7).prop_flat_map(|m| {
        let weights = prop::collection::vec(1u32..100, m..=m)
            .prop_map(|v| v.into_iter().map(|x| x as f64 / 100.0).collect::<Vec<_>>());
        let masks = prop::collection::vec(0u32..(1 << m), m..=m).prop_map(move |ms| {
            ms.into_iter()
                .enumerate()
                .map(|(j, mask)| {
                    let mut set: Vec<usize> = (0..m).filter(|i| mask & (1 << i) != 0).collect();
                    if !set.contains(&j) {
                        set.push(j);
                        set.sort_unstable();
                    }
                    set
                })
                .collect::<Vec<_>>()
        });
        (weights, masks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn lp_and_maxflow_agree_on_max_load((weights, allowed) in load_configs()) {
        let lp = max_load_lp(&weights, &allowed);
        let bs = max_load_binary_search(&weights, &allowed, 1e-8);
        prop_assert!((lp - bs).abs() < 1e-5, "lp {lp} vs bisect {bs}");
    }

    #[test]
    fn max_load_is_tight((weights, allowed) in load_configs()) {
        // Feasible exactly at the optimum, infeasible just above it.
        let lp = max_load_lp(&weights, &allowed);
        prop_assert!(load_is_feasible(&weights, &allowed, lp * (1.0 - 1e-6)));
        let m = weights.len() as f64;
        let total: f64 = weights.iter().sum();
        if lp < m / total - 1e-6 {
            prop_assert!(!load_is_feasible(&weights, &allowed, lp * (1.0 + 1e-3) + 1e-6));
        }
    }

    #[test]
    fn widening_sets_never_decreases_max_load((weights, allowed) in load_configs()) {
        // Monotonicity: replication only helps.
        let base = max_load_lp(&weights, &allowed);
        let full: Vec<Vec<usize>> =
            (0..weights.len()).map(|_| (0..weights.len()).collect()).collect();
        let best = max_load_lp(&weights, &full);
        prop_assert!(best >= base - 1e-7, "full {best} < restricted {base}");
    }

    #[test]
    fn simplex_solution_is_feasible_and_bland_safe(
        n in 1usize..5,
        rows in prop::collection::vec(
            (prop::collection::vec(-5i32..6, 4), 0u8..3, -10i32..20),
            1..6,
        ),
    ) {
        // Random small LPs: whatever the outcome, an Optimal solution must
        // satisfy every constraint and be non-negative.
        let mut lp = LinearProgram::maximize(n, vec![1.0; n]);
        let mut cons = Vec::new();
        for (coeffs, rel, rhs) in rows {
            let c: Vec<f64> = coeffs.into_iter().take(n).chain(std::iter::repeat(0)).take(n)
                .map(|x| x as f64).collect();
            let rel = match rel { 0 => Relation::Le, 1 => Relation::Ge, _ => Relation::Eq };
            lp.constraint(c.clone(), rel, rhs as f64);
            cons.push((c, rel, rhs as f64));
        }
        if let LpOutcome::Optimal(sol) = lp.solve() {
            for &x in &sol.x {
                prop_assert!(x >= -1e-7, "negative variable {x}");
            }
            for (c, rel, rhs) in cons {
                let lhs: f64 = c.iter().zip(&sol.x).map(|(a, x)| a * x).sum();
                match rel {
                    Relation::Le => prop_assert!(lhs <= rhs + 1e-6, "{lhs} !<= {rhs}"),
                    Relation::Ge => prop_assert!(lhs >= rhs - 1e-6, "{lhs} !>= {rhs}"),
                    Relation::Eq => prop_assert!((lhs - rhs).abs() <= 1e-6, "{lhs} != {rhs}"),
                }
            }
        }
    }

    #[test]
    fn unit_opt_matches_exhaustive_search(
        m in 1usize..4,
        raw in prop::collection::vec((0u32..4, 0u32..15), 1..8),
        seed in any::<u64>(),
    ) {
        // The matching-based optimum equals brute force on tiny unit
        // instances with random interval sets.
        let _ = seed;
        let mut b = InstanceBuilder::new(m);
        for (r, bits) in raw {
            let lo = bits as usize % m;
            let hi = lo + (bits as usize / m) % (m - lo).max(1);
            b.push_unit(r as f64, ProcSet::interval(lo, hi.min(m - 1)));
        }
        let inst = b.build().unwrap();
        let exact = flowsched::algos::offline::brute_force_fmax(&inst);
        let matched = flowsched::algos::offline::optimal_unit_fmax(&inst);
        prop_assert!((exact - matched).abs() < 1e-9, "brute {exact} vs matching {matched}");
    }
}
