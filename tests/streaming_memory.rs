//! The acceptance proof for the streaming core: a 1,000,000-task
//! Poisson workload runs through the streaming engine without the task
//! vector ever existing — peak RSS growth stays bounded by machines +
//! histogram bins + drift window, far below what materializing a
//! million `(Task, ProcSet)` pairs would commit.

#![cfg(target_os = "linux")]

use flowsched::algos::tiebreak::TieBreak;
use flowsched::obs::NoopRecorder;
use flowsched::sim::driver::simulate_stream;
use flowsched::sim::report::ReportConfig;
use flowsched::sim::telemetry::{simulate_stream_telemetry, TelemetryConfig};
use flowsched::workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

/// Peak resident set size of this process, in kibibytes, from
/// `/proc/self/status` (`VmHWM` is a monotonic high-water mark).
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs available on linux");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("VmHWM line present")
}

#[test]
fn million_task_poisson_stream_runs_in_bounded_memory() {
    let cfg = PoissonStreamConfig {
        m: 16,
        n: 1_000_000,
        structure: StructureKind::RingFixed(3),
        lambda: 8.0,
        unit: true,
        ptime_steps: 4,
    };

    let before = peak_rss_kib();
    let report = simulate_stream(
        PoissonStream::new(&cfg, 404),
        TieBreak::Min,
        &ReportConfig::default(),
        &mut NoopRecorder,
    );
    let after = peak_rss_kib();

    // The full report came out of the fold...
    assert_eq!(report.n_measured, 1_000_000);
    assert!(report.fmax >= 1.0);
    assert!(report.utilization.iter().any(|&u| u > 0.0));

    // ...and the run's footprint stayed flat. Live state is the RNG,
    // one scratch set, 16 machine slots, 4096 histogram bins, and the
    // 250k-entry drift window (~4 MiB) — materializing the instance
    // instead would hold 10^6 tasks plus 10^6 three-machine sets
    // (≳ 80 MiB). 32 MiB of headroom keeps the bound meaningful while
    // tolerating allocator slack.
    let grown_kib = after.saturating_sub(before);
    assert!(
        grown_kib < 32 * 1024,
        "streaming run grew peak RSS by {grown_kib} KiB — the task vector \
         is being materialized somewhere"
    );
}

#[test]
fn million_task_stream_with_windowed_telemetry_stays_bounded() {
    // The full telemetry pipeline rides the same stream: aggregate
    // recorder (bounded ring, 64-bin histogram) plus the tumbling-window
    // time series. At λ = 8 the horizon is ≈ 125k time units, so
    // 16-unit windows give ≈ 7.8k WindowStats (~1 KiB each with 16
    // machines and a 32-bin flow histogram) — telemetry must stay
    // O(#windows × #machines), far under the same 32 MiB bound the
    // uninstrumented run honours, not O(tasks).
    let cfg = PoissonStreamConfig {
        m: 16,
        n: 1_000_000,
        structure: StructureKind::RingFixed(3),
        lambda: 8.0,
        unit: true,
        ptime_steps: 4,
    };

    let before = peak_rss_kib();
    let telemetry = simulate_stream_telemetry(
        PoissonStream::new(&cfg, 404),
        TieBreak::Min,
        &ReportConfig::default(),
        &TelemetryConfig::defaults(16, 16.0),
    );
    let after = peak_rss_kib();

    assert_eq!(telemetry.report.n_measured, 1_000_000);
    let starts: u64 = telemetry.windows.windows().iter().map(|w| w.starts).sum();
    assert_eq!(starts, 1_000_000, "every dispatch lands in some window");
    assert_eq!(
        telemetry
            .recorder
            .counters()
            .get(flowsched::obs::Counter::TasksDispatched),
        1_000_000
    );

    let grown_kib = after.saturating_sub(before);
    assert!(
        grown_kib < 32 * 1024,
        "windowed telemetry grew peak RSS by {grown_kib} KiB — per-task \
         state is leaking into the window layer"
    );
}

#[test]
fn ten_million_task_sharded_run_stays_bounded() {
    // The PR-6 regime: the 10M-task cluster-partitioned trace from
    // BENCH_PR6 runs through the sharded engine with real worker
    // threads and bounded SPSC queues. Memory must stay O(machines +
    // queues + report fold): in-flight tasks are capped at
    // (queue_cap + 2) × batch × workers messages (≈ 6k × ~50 B), so a
    // 10× longer trace than the sequential tests still fits the same
    // 32 MiB envelope — if the router buffered the stream (or a worker
    // stopped draining), 10M × ~50 B ≈ 500 MiB would blow it instantly.
    // The drift window is pinned to the fixed 1024-task fallback
    // (`expected_measured: None` is overridden below): auto-sizing it
    // from the 10M-task hint would alone hold n/4-entry head and tail
    // buffers (~64 MiB), drowning the engine bound this test is about.
    use flowsched::algos::engine::ShardedConfig;
    use flowsched::algos::indexed::DispatchKernel;
    use flowsched::core::shard::DEFAULT_MAX_SHARDS;
    use flowsched::core::stream::ArrivalStream;
    use flowsched::sim::driver::simulate_stream_sharded_with;

    let cfg = PoissonStreamConfig {
        m: 256,
        n: 10_000_000,
        structure: StructureKind::DisjointBlocks(16),
        lambda: 128.0,
        unit: true,
        ptime_steps: 4,
    };

    let before = peak_rss_kib();
    let stream = PoissonStream::new(&cfg, 2026);
    let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
    assert!(plan.shards() > 1, "the disjoint trace must actually shard");
    let report_cfg = ReportConfig {
        expected_measured: Some(4096), // 1024-entry drift quarters
        ..ReportConfig::default()
    };
    let report = simulate_stream_sharded_with(
        stream,
        TieBreak::Min,
        DispatchKernel::Auto,
        &plan,
        &ShardedConfig::with_threads(4),
        &report_cfg,
        &mut NoopRecorder,
    );
    let after = peak_rss_kib();

    assert_eq!(report.n_measured, 10_000_000);
    assert!(report.fmax >= 1.0);
    assert!(report.utilization.iter().any(|&u| u > 0.0));

    let grown_kib = after.saturating_sub(before);
    assert!(
        grown_kib < 32 * 1024,
        "sharded 10M-task run grew peak RSS by {grown_kib} KiB — the \
         router or a queue is accumulating in-flight tasks"
    );
}

#[test]
fn million_wide_inclusive_tasks_never_materialize_machine_vectors() {
    // The PR-5 regime: m = 10,000 machines with inclusive-prefix sets
    // averaging m/2 ≈ 5,000 machines per task. The stream lends each set
    // as an O(1) `ProcSetRef::Prefix` and the auto-selected indexed
    // kernel dispatches through the segment tree, so a million such
    // tasks must not allocate a single per-task machine vector —
    // materializing them would commit ≈ 1M × 5k × 8 B ≈ 40 GiB.
    let m = 10_000;
    let cfg = PoissonStreamConfig {
        m,
        n: 1_000_000,
        structure: StructureKind::InclusivePrefix,
        lambda: m as f64 / 2.0,
        unit: true,
        ptime_steps: 4,
    };

    let before = peak_rss_kib();
    let report = simulate_stream(
        PoissonStream::new(&cfg, 1105),
        TieBreak::Min,
        &ReportConfig::default(),
        &mut NoopRecorder,
    );
    let after = peak_rss_kib();

    assert_eq!(report.n_measured, 1_000_000);
    assert!(report.fmax >= 1.0);

    // Live state: the RNG, 10k machine completions, the ~2·16k-slot
    // segment tree (≈ 256 KiB), the report fold (10k utilization slots,
    // 4096 histogram bins, 250k-entry drift window ≈ 4 MiB). The same
    // 32 MiB headroom as the narrow-set runs keeps the bound meaningful:
    // even one wide set retained per thousand tasks would blow it.
    let grown_kib = after.saturating_sub(before);
    assert!(
        grown_kib < 32 * 1024,
        "wide-inclusive streaming run grew peak RSS by {grown_kib} KiB — \
         per-task machine vectors are being materialized somewhere"
    );
}
