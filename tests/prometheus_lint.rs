//! Structural lint for the Prometheus text exposition
//! (`flowsched::obs::prometheus_text{,_with}`): every sample belongs to
//! a family that declared `# HELP` and `# TYPE` *before* its first
//! sample, no family declares them twice, no series (name + label set)
//! repeats, histogram buckets are cumulative with ascending `le` bounds
//! and a `+Inf` bucket equal to `_count`, and when a policy label is
//! requested every sample carries it first. The lint parses the real
//! exposition line by line — the same checks a scrape-side
//! `promtool check metrics` would make — so format regressions fail
//! here rather than in a dashboard.

use std::collections::{HashMap, HashSet};

use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::fault::FaultPlan;
use flowsched::core::instance::InstanceBuilder;
use flowsched::core::stream::InstanceStream;
use flowsched::core::ProcSet;
use flowsched::obs::{
    prometheus_text, prometheus_text_with, Counter, ExtraGauge, MemoryRecorder, ObsConfig,
    PromOptions,
};

/// A run busy enough to populate every family: dispatches on all
/// machines, crash/recover lifecycle, and a deliberately tiny event
/// ring so `trace_events_dropped` is non-zero.
fn recorded_run(trace_capacity: usize) -> MemoryRecorder {
    let m = 4;
    let mut b = InstanceBuilder::new(m);
    for i in 0..40 {
        let lo = i % m;
        let task = flowsched::core::task::Task::new(i as f64 * 0.3, 1.0 + (i % 3) as f64);
        b.push(task, ProcSet::interval(lo, (lo + 1).min(m - 1)));
    }
    let inst = b.build().unwrap();
    let plan = FaultPlan::none(m)
        .with_outage(0, 2.0, 4.0)
        .with_outage(2, 1.0, 3.0);
    let mut rec = MemoryRecorder::new(&ObsConfig {
        trace_capacity,
        ..ObsConfig::defaults(m)
    });
    flowsched::algos::faulty::faulty_schedule(
        InstanceStream::new(&inst),
        &plan,
        TieBreak::Min,
        &mut rec,
    );
    rec
}

/// Splits a sample line into `(name, label_set, value)`.
fn parse_sample(line: &str) -> (String, String, f64) {
    let (series, value) = line.rsplit_once(' ').expect("sample has a value");
    let value: f64 = value.parse().unwrap_or_else(|_| {
        if value == "+Inf" {
            f64::INFINITY
        } else {
            panic!("unparseable sample value {value:?} in {line:?}")
        }
    });
    let (name, labels) = match series.split_once('{') {
        Some((n, rest)) => {
            assert!(rest.ends_with('}'), "unterminated label set in {line:?}");
            (n.to_string(), rest[..rest.len() - 1].to_string())
        }
        None => (series.to_string(), String::new()),
    };
    (name, labels, value)
}

/// The family a sample belongs to: histogram samples share one declared
/// family name without the `_bucket`/`_sum`/`_count` suffix.
fn family_of<'a>(name: &'a str, typed: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if typed.get(stem).map(String::as_str) == Some("histogram") {
                return stem;
            }
        }
    }
    name
}

/// The structural lint proper. Returns the set of family names seen so
/// callers can make presence assertions on top.
fn lint(text: &str, expect_policy: Option<&str>) -> HashSet<String> {
    let mut helped: HashMap<String, String> = HashMap::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut families = HashSet::new();
    // Histogram bucket state, reset per family: (last le, last cum).
    let mut bucket_state: HashMap<String, (f64, f64)> = HashMap::new();
    let mut hist_totals: HashMap<String, (Option<f64>, Option<f64>)> = HashMap::new(); // (+Inf, _count)

    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has text");
            assert!(!help.is_empty(), "{name}: empty HELP text");
            assert!(
                helped.insert(name.to_string(), help.to_string()).is_none(),
                "{name}: duplicate # HELP"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE has a kind");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "{name}: unknown type {ty:?}"
            );
            assert!(
                typed.insert(name.to_string(), ty.to_string()).is_none(),
                "{name}: duplicate # TYPE"
            );
            assert!(helped.contains_key(name), "{name}: # TYPE before # HELP");
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line {line:?}");

        let (name, labels, value) = parse_sample(line);
        assert!(
            name.starts_with("flowsched_"),
            "{name}: missing flowsched_ prefix"
        );
        let family = family_of(&name, &typed).to_string();
        assert!(
            helped.contains_key(&family) && typed.contains_key(&family),
            "{name}: sample before # HELP/# TYPE of family {family}"
        );
        families.insert(family.clone());
        assert!(
            seen_series.insert(format!("{name}{{{labels}}}")),
            "duplicate series {name}{{{labels}}}"
        );
        match expect_policy {
            Some(p) => assert!(
                labels.starts_with(&format!("policy=\"{p}\"")),
                "{name}: policy label missing or not first in {labels:?}"
            ),
            None => assert!(
                !labels.contains("policy="),
                "{name}: unexpected policy label"
            ),
        }
        if typed.get(&family).map(String::as_str) == Some("counter") {
            assert!(
                name.ends_with("_total"),
                "{name}: counter without _total suffix"
            );
            assert!(value >= 0.0, "{name}: negative counter");
        }
        if name.ends_with("_bucket") {
            let le = labels
                .split(',')
                .find_map(|l| l.strip_prefix("le=\""))
                .and_then(|v| v.strip_suffix('"'))
                .expect("bucket has an le label");
            if le == "+Inf" {
                hist_totals.entry(family.clone()).or_default().0 = Some(value);
                if let Some(&(_, cum)) = bucket_state.get(&family) {
                    assert!(value >= cum, "{family}: +Inf bucket below last cumulative");
                }
            } else {
                let le: f64 = le.parse().expect("finite le bound");
                let (last_le, last_cum) = bucket_state
                    .get(&family)
                    .copied()
                    .unwrap_or((f64::NEG_INFINITY, 0.0));
                assert!(le > last_le, "{family}: le bounds not ascending");
                assert!(value >= last_cum, "{family}: bucket counts not cumulative");
                bucket_state.insert(family.clone(), (le, value));
            }
        }
        if name.ends_with("_count") && typed.get(&family).map(String::as_str) == Some("histogram") {
            hist_totals.entry(family.clone()).or_default().1 = Some(value);
        }
    }

    for (family, (inf, count)) in &hist_totals {
        assert_eq!(
            inf.expect("histogram has a +Inf bucket"),
            count.expect("histogram has a _count"),
            "{family}: +Inf bucket != _count"
        );
    }
    families
}

#[test]
fn plain_exposition_is_structurally_valid() {
    let rec = recorded_run(4096);
    let families = lint(&prometheus_text(&rec), None);
    // Every counter family is present, including the PR 9 additions.
    for c in Counter::ALL {
        assert!(
            families.contains(&format!("flowsched_{}_total", c.name())),
            "counter family {} missing from exposition",
            c.name()
        );
    }
    for f in [
        "flowsched_machine_busy_time",
        "flowsched_machine_utilization",
        "flowsched_makespan",
        "flowsched_flow_time",
    ] {
        assert!(families.contains(f), "{f} missing from exposition");
    }
}

#[test]
fn policy_labeled_exposition_is_structurally_valid() {
    let rec = recorded_run(4096);
    let opts = PromOptions {
        policy: Some("eft:min:indexed"),
        extra_gauges: vec![ExtraGauge {
            name: "weighted_fmax",
            help: "Maximum weighted flow time of the run.",
            value: 17.25,
        }],
    };
    let families = lint(&prometheus_text_with(&rec, &opts), Some("eft:min:indexed"));
    assert!(families.contains("flowsched_weighted_fmax"));
}

#[test]
fn dropped_events_counter_reports_ring_losses() {
    // A 16-slot ring under a 40-task run must overwrite; the exposition
    // sources the counter from the ring itself, so the scrape sees it.
    let rec = recorded_run(16);
    assert!(rec.trace().dropped() > 0, "test needs a lossy ring");
    let text = prometheus_text(&rec);
    let line = text
        .lines()
        .find(|l| l.starts_with("flowsched_trace_events_dropped_total"))
        .expect("dropped counter exported");
    let (_, _, value) = parse_sample(line);
    assert_eq!(value as u64, rec.trace().dropped());
}
