//! Property tests on the core data structures: processing-set algebra,
//! structure-predicate consistency with the Figure 1 reduction graph,
//! Gantt rendering robustness, and machine-remapping invariance.

use proptest::prelude::*;

use flowsched::core::gantt::{render, GanttOptions};
use flowsched::core::structure;
use flowsched::prelude::*;

fn procsets(m: usize) -> impl Strategy<Value = ProcSet> {
    prop::collection::vec(0usize..m, 1..=m).prop_map(ProcSet::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn set_algebra_laws(a in procsets(8), b in procsets(8), c in procsets(8)) {
        // Commutativity and associativity of union/intersection.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(
            a.intersection(&b).intersection(&c),
            a.intersection(&b.intersection(&c))
        );
        // Absorption.
        prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
        prop_assert_eq!(a.intersection(&a.union(&b)), a.clone());
        // Difference partitions.
        let inter = a.intersection(&b);
        let diff = a.difference(&b);
        prop_assert!(inter.is_disjoint_from(&diff));
        prop_assert_eq!(inter.union(&diff), a.clone());
    }

    #[test]
    fn subset_iff_intersection_is_self(a in procsets(8), b in procsets(8)) {
        prop_assert_eq!(a.is_subset_of(&b), a.intersection(&b) == a);
        prop_assert_eq!(a.is_disjoint_from(&b), a.intersection(&b).is_empty());
    }

    #[test]
    fn reduction_graph_edges_hold(
        fam in prop::collection::vec(procsets(6), 1..8),
    ) {
        // Figure 1: inclusive ⇒ nested, disjoint ⇒ nested. And nested
        // families admit an interval-izing machine permutation.
        let rep = structure::classify(&fam, 6);
        if rep.inclusive {
            prop_assert!(rep.nested, "inclusive family not nested: {fam:?}");
        }
        if rep.disjoint {
            prop_assert!(rep.nested, "disjoint family not nested: {fam:?}");
        }
        if rep.nested {
            let perm = structure::nested_to_interval_order(&fam, 6)
                .expect("nested families admit the ordering");
            let renamed = structure::apply_machine_permutation(&fam, &perm);
            prop_assert!(
                structure::is_interval_family(&renamed),
                "renamed family not intervals: {renamed:?}"
            );
        }
    }

    #[test]
    fn ring_interval_round_trips(start in 0usize..12, len in 1usize..=12) {
        let m = 12;
        let set = ProcSet::ring_interval(start, len, m);
        prop_assert_eq!(set.len(), len);
        let (s2, l2) = set.as_ring_interval(m).expect("ring intervals detect");
        // Full sets canonicalize to start 0; otherwise the segment round-trips.
        if len == m {
            prop_assert_eq!(l2, m);
        } else {
            prop_assert_eq!((s2, l2), (start, len));
        }
    }

    #[test]
    fn gantt_renders_every_machine_row(
        m in 1usize..6,
        raw in prop::collection::vec((0u32..8, 1u32..5), 1..20),
        numbered in any::<bool>(),
    ) {
        let mut b = InstanceBuilder::new(m);
        for (r, p) in raw {
            b.push_unrestricted(Task::new(r as f64, p as f64 * 0.5));
        }
        let inst = b.build().unwrap();
        let schedule = eft(&inst, TieBreak::Min);
        let art = render(
            &schedule,
            &inst,
            &GanttOptions { resolution: 0.5, until: None, numbered },
        );
        let lines: Vec<&str> = art.lines().collect();
        prop_assert_eq!(lines.len(), m + 1, "ruler + one row per machine");
        // Every machine label appears and rows share a common width.
        for (j, line) in lines.iter().skip(1).enumerate() {
            let label = format!("M{}", j + 1);
            prop_assert!(line.starts_with(&label), "row {j} missing label");
        }
        let widths: Vec<usize> = lines.iter().skip(1).map(|l| l.chars().count()).collect();
        prop_assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged rows: {widths:?}");
    }

    #[test]
    fn remap_preserves_schedulability_and_fmax_distribution(
        perm_seed in any::<u64>(),
    ) {
        use flowsched::stats::permutation::random_permutation;
        use flowsched::stats::rng::derive_rng;
        // Machine renaming is a symmetry of the problem: the EFT schedule
        // of the renamed instance is feasible and the *optimal* value is
        // invariant (checked via the exact solver on a tiny instance).
        let mut b = InstanceBuilder::new(4);
        b.push_unit(0.0, ProcSet::new(vec![0, 2]));
        b.push_unit(0.0, ProcSet::new(vec![1, 3]));
        b.push_unit(0.0, ProcSet::new(vec![0, 1]));
        b.push_unit(1.0, ProcSet::new(vec![2]));
        let inst = b.build().unwrap();
        let mut rng = derive_rng(perm_seed, 1);
        let perm = random_permutation(4, &mut rng);
        let renamed = inst.remap_machines(&perm);
        eft(&renamed, TieBreak::Min).validate(&renamed).unwrap();
        let a = flowsched::algos::offline::brute_force_fmax(&inst);
        let b2 = flowsched::algos::offline::brute_force_fmax(&renamed);
        prop_assert!((a - b2).abs() < 1e-9, "OPT changed under renaming: {a} vs {b2}");
    }
}
