//! Property-based verification of Proposition 1: on `P | online-rᵢ | Fmax`
//! (no processing-set restrictions), the centralized-queue FIFO event
//! simulation and the immediate-dispatch EFT scheduler produce the *same
//! schedule* — machine by machine, start time by start time — under any
//! common tie-break policy.

use proptest::prelude::*;

use flowsched::prelude::*;

/// Random unrestricted instances with dyadic releases/durations so FIFO's
/// event simulation sees exact time comparisons.
fn unrestricted_instances() -> impl Strategy<Value = Instance> {
    (
        1usize..6,
        prop::collection::vec((0u32..32, 1u32..12), 1..60),
    )
        .prop_map(|(m, raw)| {
            let mut b = InstanceBuilder::new(m);
            for (r4, p4) in raw {
                b.push_unrestricted(Task::new(r4 as f64 * 0.25, p4 as f64 * 0.25));
            }
            b.build().expect("valid random instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fifo_equals_eft_min(inst in unrestricted_instances()) {
        let sf = fifo(&inst, TieBreak::Min);
        let se = eft(&inst, TieBreak::Min);
        prop_assert_eq!(sf, se);
    }

    #[test]
    fn fifo_equals_eft_max(inst in unrestricted_instances()) {
        let sf = fifo(&inst, TieBreak::Max);
        let se = eft(&inst, TieBreak::Max);
        prop_assert_eq!(sf, se);
    }

    #[test]
    fn fifo_equals_eft_rand_same_seed(inst in unrestricted_instances(), seed in any::<u64>()) {
        // Proposition 1 extends to randomized policies when both engines
        // consume the same random stream over identical tie sets.
        let tb = TieBreak::Rand { seed };
        let sf = fifo(&inst, tb);
        let se = eft(&inst, tb);
        prop_assert_eq!(sf, se);
    }

    #[test]
    fn both_schedules_are_always_feasible(inst in unrestricted_instances()) {
        fifo(&inst, TieBreak::Min).validate(&inst).unwrap();
        eft(&inst, TieBreak::Min).validate(&inst).unwrap();
    }

    #[test]
    fn fifo_dispatches_in_release_order_per_machine(inst in unrestricted_instances()) {
        // Within a machine, FIFO never inverts release order (the queue is
        // FIFO and arrivals are sorted).
        let s = fifo(&inst, TieBreak::Min);
        for lane in s.machine_timelines(&inst) {
            for w in lane.windows(2) {
                prop_assert!(inst.task(w[0]).release <= inst.task(w[1]).release);
            }
        }
    }
}
