//! Quantitative agreement with the paper's reported numbers — shapes and
//! the few exact values the text states.

use flowsched::kvstore::replication::ReplicationStrategy;
use flowsched::solver::loadflow::max_load_lp;
use flowsched::stats::zipf::Zipf;

/// Max load (% of capacity) for a strategy at (m, k, s) in worst-case
/// weight order.
fn max_load_pct(strategy: ReplicationStrategy, m: usize, k: usize, s: f64) -> f64 {
    let w = Zipf::new(m, s);
    max_load_lp(w.probs(), &strategy.allowed_sets(k, m)) / m as f64 * 100.0
}

#[test]
fn figure11_worst_case_red_lines() {
    // The paper's Figure 11 marks the theoretical max loads; in the
    // Worst-case facet (s = 1, m = 15, k = 3) the lines sit at ≈ 36%
    // (disjoint) and ≈ 59% (overlapping).
    let over = max_load_pct(ReplicationStrategy::Overlapping, 15, 3, 1.0);
    let disj = max_load_pct(ReplicationStrategy::Disjoint, 15, 3, 1.0);
    assert!((over - 59.0).abs() < 1.0, "overlapping {over} vs paper ≈59");
    assert!((disj - 36.0).abs() < 1.0, "disjoint {disj} vs paper ≈36");
}

#[test]
fn figure10_s1_k5_overlapping_hits_100_disjoint_about_70() {
    // Paper, Section 7.3: "for s = 1 and k = 5 … a maximum load of 100%
    // when intervals overlap, whereas the disjoint strategy allows
    // reaching a maximum load of 70%". Those are Shuffled-case medians;
    // we verify with a modest permutation population.
    use flowsched::stats::descriptive::median;
    use flowsched::stats::rng::derive_rng;

    let (m, k, s) = (15usize, 5usize, 1.0);
    let mut over_samples = Vec::new();
    let mut disj_samples = Vec::new();
    for p in 0..60u64 {
        let mut rng = derive_rng(0xF16, p);
        let w = Zipf::new(m, s).shuffled(&mut rng);
        over_samples.push(
            max_load_lp(
                w.probs(),
                &ReplicationStrategy::Overlapping.allowed_sets(k, m),
            ) / m as f64
                * 100.0,
        );
        disj_samples.push(
            max_load_lp(w.probs(), &ReplicationStrategy::Disjoint.allowed_sets(k, m)) / m as f64
                * 100.0,
        );
    }
    let over = median(&over_samples);
    let disj = median(&disj_samples);
    assert!(over > 97.0, "overlapping median {over} vs paper 100%");
    assert!(
        (disj - 70.0).abs() < 6.0,
        "disjoint median {disj} vs paper ≈70%"
    );
}

#[test]
fn figure10_gain_peaks_around_50_percent() {
    // Paper: "the overlapping strategy allows the cluster to handle loads
    // that are up to 50% higher … (e.g., for s = 1.25 and k = 6)".
    use flowsched::stats::descriptive::median;
    use flowsched::stats::rng::derive_rng;

    let (m, k, s) = (15usize, 6usize, 1.25);
    let mut ratios = Vec::new();
    let mut over_s = Vec::new();
    let mut disj_s = Vec::new();
    for p in 0..60u64 {
        let mut rng = derive_rng(0xF17, p);
        let w = Zipf::new(m, s).shuffled(&mut rng);
        over_s.push(max_load_lp(
            w.probs(),
            &ReplicationStrategy::Overlapping.allowed_sets(k, m),
        ));
        disj_s.push(max_load_lp(
            w.probs(),
            &ReplicationStrategy::Disjoint.allowed_sets(k, m),
        ));
    }
    ratios.push(median(&over_s) / median(&disj_s));
    let gain = ratios[0];
    assert!(
        (1.3..=1.7).contains(&gain),
        "gain {gain} should be near the paper's ≈1.5"
    );
}

#[test]
fn no_bias_and_full_replication_neutralize_strategies() {
    // Paper: no difference at s = 0, and no bias effect at k = m.
    for k in 1..=15 {
        let o = max_load_pct(ReplicationStrategy::Overlapping, 15, k, 0.0);
        let d = max_load_pct(ReplicationStrategy::Disjoint, 15, k, 0.0);
        assert!(
            (o - 100.0).abs() < 1e-6 && (d - 100.0).abs() < 1e-6,
            "k={k}: {o} {d}"
        );
    }
    for s10 in 0..=10 {
        let s = s10 as f64 * 0.5;
        let o = max_load_pct(ReplicationStrategy::Overlapping, 15, 15, s);
        let d = max_load_pct(ReplicationStrategy::Disjoint, 15, 15, s);
        assert!(
            (o - 100.0).abs() < 1e-6 && (d - 100.0).abs() < 1e-6,
            "s={s}: {o} {d}"
        );
    }
}

#[test]
fn no_replication_cap_matches_formula() {
    // Section 7.2: without replication λ ≤ 1/max_j P(E_j).
    for s10 in [0, 2, 4] {
        let s = s10 as f64 * 0.5;
        let w = Zipf::new(15, s);
        let allowed: Vec<Vec<usize>> = (0..15).map(|j| vec![j]).collect();
        let lp = max_load_lp(w.probs(), &allowed);
        assert!((lp - 1.0 / w.max_prob()).abs() < 1e-6, "s={s}");
    }
}

#[test]
fn figure11_simulation_shapes_hold_at_reduced_scale() {
    // Paper, Section 7.4 headline: at 90% Uniform load, overlapping gives
    // max-flow ≈ 5 vs ≈ 10 for disjoint (m = 15, k = 3). We reproduce the
    // ordering and rough magnitudes with fewer tasks/repetitions.
    use flowsched::experiments::fig11;
    use flowsched::experiments::Scale;

    let scale = Scale {
        permutations: 6,
        repetitions: 3,
        tasks: 4000,
        ..Scale::quick()
    };
    let out = fig11::run(&scale);
    let get = |strategy: &str, load: f64| {
        out.points
            .iter()
            .find(|p| {
                p.case == "Uniform"
                    && p.strategy == strategy
                    && p.policy == "EFT-Min"
                    && p.load_pct == load
            })
            .unwrap()
            .fmax_median
    };
    let over = get("Overlapping", 90.0);
    let disj = get("Disjoint", 90.0);
    assert!(
        over < disj,
        "overlapping {over} must beat disjoint {disj} at 90%"
    );
    assert!(
        (2.0..=9.0).contains(&over),
        "overlapping Fmax {over} (paper ≈5)"
    );
    assert!(
        (5.0..=20.0).contains(&disj),
        "disjoint Fmax {disj} (paper ≈10)"
    );
}
