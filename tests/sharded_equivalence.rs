//! Equivalence of the sharded dispatch engine with the sequential
//! streaming engine.
//!
//! The sharded engine (`flowsched_parallel::sharded` driven through
//! `engine::run_immediate_sharded`) partitions the machines by cluster,
//! dispatches each shard on its own worker, and merges the decisions
//! back in arrival order. These tests pin the contract from ISSUE 6:
//! for `Min`/`Max` tie-breaks the schedule, the `SimReport`, and the
//! full recorder trace are **bitwise-identical** to the sequential run
//! across every structure family and thread count — including odd
//! thread counts that leave workers with uneven shard loads, and tiny
//! batch/queue configurations that force the backpressure paths.
//! `Rand` is pinned to its documented weaker contract: identical to
//! sequential on single-shard plans, thread-count invariant (but
//! per-shard seeded) on multi-shard plans.

use proptest::prelude::*;

use flowsched::algos::eft::eft_stream;
use flowsched::algos::engine::{immediate_schedule_sharded, ShardedConfig};
use flowsched::algos::indexed::DispatchKernel;
use flowsched::algos::tiebreak::TieBreak;
use flowsched::core::shard::{ShardPlan, DEFAULT_MAX_SHARDS};
use flowsched::core::stream::ArrivalStream;
use flowsched::obs::{MemoryRecorder, NoopRecorder};
use flowsched::sim::driver::{simulate_stream, simulate_stream_sharded_with};
use flowsched::sim::report::ReportConfig;
use flowsched::workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

/// The families exercised: the disjoint kinds produce genuine
/// multi-shard plans; the spanning kinds collapse to a single shard
/// (pinning that the engine costs nothing and changes nothing there).
fn kind_for(idx: usize, k: usize) -> StructureKind {
    match idx {
        0 => StructureKind::DisjointBlocks(k),
        1 => StructureKind::IntervalFixed(k),
        2 => StructureKind::RingFixed(k),
        3 => StructureKind::InclusivePrefix,
        4 => StructureKind::Unrestricted,
        _ => StructureKind::General,
    }
}

fn stream_for(kind: StructureKind, m: usize, n: usize, seed: u64) -> PoissonStream {
    let cfg = PoissonStreamConfig::unit_tasks(m, n, m as f64 / 2.0, kind);
    PoissonStream::new(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Schedule + recorder-trace equality, sequential vs sharded, for
    /// the deterministic tie-breaks across families × thread counts.
    #[test]
    fn sharded_schedule_and_trace_match_sequential(
        family in 0usize..6,
        tb_max in any::<bool>(),
        m in 2usize..32,
        n in 1usize..200,
        k_raw in 1usize..32,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m;
        let kind = kind_for(family, k);
        let tb = if tb_max { TieBreak::Max } else { TieBreak::Min };

        let mut seq_rec = MemoryRecorder::with_defaults(m);
        let sequential = eft_stream(stream_for(kind, m, n, seed), tb, &mut seq_rec);

        let stream = stream_for(kind, m, n, seed);
        let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
        let mut shard_rec = MemoryRecorder::with_defaults(m);
        let sharded = immediate_schedule_sharded(
            stream,
            tb,
            DispatchKernel::Auto,
            &plan,
            &ShardedConfig::with_threads(threads),
            &mut shard_rec,
        );

        prop_assert_eq!(
            &sequential, &sharded,
            "{:?} {:?} threads={} shards={}: schedules differ",
            kind, tb, threads, plan.shards()
        );
        prop_assert_eq!(
            seq_rec.trace().to_vec(),
            shard_rec.trace().to_vec(),
            "{:?} {:?} threads={}: recorder traces differ",
            kind, tb, threads
        );
    }

    /// The online-folded `SimReport` (order-sensitive float sums) is
    /// bitwise-identical too, including under stressed backpressure:
    /// tiny batches and depth-1 queues force the block/flush paths.
    #[test]
    fn sharded_sim_report_matches_sequential(
        m_raw in 2usize..24,
        n in 1usize..300,
        k_raw in 1usize..8,
        threads in 1usize..5,
        tiny in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m_raw;
        let m = (m_raw / k).max(1) * k; // k | m: every block is full width
        let kind = StructureKind::DisjointBlocks(k);
        let report_cfg = ReportConfig::default();

        let baseline = simulate_stream(
            stream_for(kind, m, n, seed),
            TieBreak::Min,
            &report_cfg,
            &mut NoopRecorder,
        );

        let stream = stream_for(kind, m, n, seed);
        let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
        let cfg = ShardedConfig {
            threads,
            batch: if tiny { 3 } else { 256 },
            queue_cap: if tiny { 1 } else { 4 },
        };
        let sharded = simulate_stream_sharded_with(
            stream,
            TieBreak::Min,
            DispatchKernel::Auto,
            &plan,
            &cfg,
            &report_cfg,
            &mut NoopRecorder,
        );

        prop_assert_eq!(
            format!("{baseline:?}"),
            format!("{sharded:?}"),
            "m={} k={} threads={} tiny={}: reports differ", m, k, threads, tiny
        );
    }

    /// `Rand` on a single-shard plan consumes the same RNG stream as the
    /// sequential engine (shard 0 keeps the seed), so spanning families
    /// reproduce the sequential schedule exactly.
    #[test]
    fn rand_single_shard_matches_sequential(
        m in 2usize..24,
        n in 1usize..200,
        threads in 1usize..5,
        seed in any::<u64>(),
    ) {
        let kind = StructureKind::Unrestricted;
        let tb = TieBreak::Rand { seed: seed ^ 0x7ea5 };
        let sequential = eft_stream(stream_for(kind, m, n, seed), tb, &mut NoopRecorder);

        let stream = stream_for(kind, m, n, seed);
        let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
        prop_assert!(plan.is_single(), "unrestricted sets must not shard");
        let sharded = immediate_schedule_sharded(
            stream,
            tb,
            DispatchKernel::Auto,
            &plan,
            &ShardedConfig::with_threads(threads),
            &mut NoopRecorder,
        );
        prop_assert_eq!(sequential, sharded);
    }

    /// `Rand` on a multi-shard plan is deterministic and thread-count
    /// invariant: the per-shard streams depend on `(seed, shard)` only,
    /// so 1, 2, and 4 workers all produce the same schedule.
    #[test]
    fn rand_multi_shard_is_thread_count_invariant(
        m_raw in 2usize..24,
        n in 1usize..200,
        k_raw in 1usize..6,
        seed in any::<u64>(),
    ) {
        let k = 1 + k_raw % m_raw;
        let m = (m_raw / k).max(2) * k;
        let kind = StructureKind::DisjointBlocks(k);
        let tb = TieBreak::Rand { seed: seed ^ 0x0DD5 };
        let run = |threads: usize| {
            let stream = stream_for(kind, m, n, seed);
            let plan = stream.shard_plan(DEFAULT_MAX_SHARDS);
            immediate_schedule_sharded(
                stream,
                tb,
                DispatchKernel::Auto,
                &plan,
                &ShardedConfig::with_threads(threads),
                &mut NoopRecorder,
            )
        };
        let inline = run(1);
        prop_assert_eq!(&inline, &run(2), "2 workers diverged from inline");
        prop_assert_eq!(&inline, &run(4), "4 workers diverged from inline");
        prop_assert_eq!(&inline, &run(3), "3 workers diverged from inline");
    }
}

/// A set that straddles a shard boundary is a routing bug, not a silent
/// misassignment — the engine must panic with the straddle message.
#[test]
#[should_panic(expected = "straddles")]
fn straddling_set_panics_instead_of_misrouting() {
    use flowsched::core::instance::InstanceBuilder;
    use flowsched::core::procset::ProcSet;
    use flowsched::core::stream::InstanceStream;

    let mut b = InstanceBuilder::new(4);
    b.push_unit(0.0, ProcSet::interval(1, 2)); // spans the cut at 2
    let inst = b.build().unwrap();
    let plan = ShardPlan::blocks(4, 2, DEFAULT_MAX_SHARDS);
    assert_eq!(plan.shards(), 2);
    let _ = immediate_schedule_sharded(
        InstanceStream::new(&inst),
        TieBreak::Min,
        DispatchKernel::Auto,
        &plan,
        &ShardedConfig::with_threads(2),
        &mut NoopRecorder,
    );
}

/// `InstanceStream` derives its plan from the merged set hulls, so a
/// disjoint-block instance shards and reproduces the sequential run
/// end-to-end through the hull-derived plan (not just the generator's
/// analytic one).
#[test]
fn instance_stream_hull_plan_round_trips() {
    use flowsched::core::stream::InstanceStream;
    use flowsched::workloads::random::{random_instance, RandomInstanceConfig};

    let config = RandomInstanceConfig::unit_tasks(24, 500, StructureKind::DisjointBlocks(4));
    let inst = random_instance(&config, 0xB10C);
    let plan = InstanceStream::new(&inst).shard_plan(DEFAULT_MAX_SHARDS);
    assert!(plan.shards() > 1, "hulls of disjoint blocks must shard");

    for tb in [TieBreak::Min, TieBreak::Max] {
        let sequential = eft_stream(InstanceStream::new(&inst), tb, &mut NoopRecorder);
        for threads in [1, 3] {
            let sharded = immediate_schedule_sharded(
                InstanceStream::new(&inst),
                tb,
                DispatchKernel::Auto,
                &plan,
                &ShardedConfig::with_threads(threads),
                &mut NoopRecorder,
            );
            assert_eq!(sequential, sharded, "{tb:?} threads={threads}");
        }
        sequential.validate(&inst).unwrap();
    }
}
