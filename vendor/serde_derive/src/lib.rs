//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the only shape this workspace derives them on: structs with named
//! fields (optionally generic, e.g. `Record<T: Serialize>`). The input
//! token stream is parsed by hand — no `syn`/`quote`, since the build
//! environment cannot download them — and the generated impl is built
//! as a string, then re-parsed into a `TokenStream`.
//!
//! Unsupported inputs (enums, tuple structs, `#[serde(...)]`
//! attributes) panic at expansion time with a clear message rather
//! than silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

/// The pieces of a struct declaration the derives need.
struct StructShape {
    name: String,
    /// Full generics as written, e.g. `<T: Serialize>` (empty if none).
    generics_decl: String,
    /// Just the parameter names, e.g. `<T>` (empty if none).
    generics_args: String,
    fields: Vec<String>,
}

/// Skips `#[...]` attributes and doc comments at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => match &tokens[i + 1] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => i += 2,
                _ => break,
            },
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility prefix at the cursor.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_struct(input: TokenStream, derive_name: &str) -> StructShape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => panic!(
            "#[derive({derive_name})] (vendored stand-in) only supports structs \
             with named fields, found {other:?}"
        ),
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => panic!("#[derive({derive_name})]: expected struct name, found {other:?}"),
    };

    // Generics: everything between a balanced `<` ... `>` pair.
    let mut generics_decl = String::new();
    let mut generic_params: Vec<String> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0usize;
            let start = i;
            loop {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    Some(_) => {}
                    None => panic!("#[derive({derive_name})]: unclosed generics on {name}"),
                }
                i += 1;
            }
            let decl_tokens: TokenStream = tokens[start..i].iter().cloned().collect();
            generics_decl = decl_tokens.to_string();
            generic_params = extract_generic_params(&tokens[start + 1..i - 1]);
        }
    }
    let generics_args = if generic_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", generic_params.join(", "))
    };

    // Named fields live in the brace group; a `;` here means a unit or
    // tuple struct, which the stand-in does not support.
    let fields_group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => panic!(
                "#[derive({derive_name})] (vendored stand-in) requires named fields; \
                 {name} is a unit or tuple struct"
            ),
            Some(_) => i += 1, // where-clauses etc. (unused in this workspace)
            None => panic!("#[derive({derive_name})]: no field block found on {name}"),
        }
    };

    StructShape {
        name,
        generics_decl,
        generics_args,
        fields: parse_field_names(fields_group.stream(), derive_name),
    }
}

/// Pulls the parameter names out of the tokens between `<` and `>`:
/// for `T: Serialize, U` this yields `["T", "U"]`.
fn extract_generic_params(inner: &[TokenTree]) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut at_param_start = true;
    for tok in inner {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => at_param_start = true,
            TokenTree::Ident(id) if depth == 0 && at_param_start => {
                let text = id.to_string();
                // `const N: usize` parameters: the name follows `const`.
                if text != "const" {
                    params.push(text);
                    at_param_start = false;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 0 && at_param_start => {
                // Lifetime parameter: the following ident is its name.
                // (Unused in this workspace but cheap to tolerate.)
            }
            _ => {
                if depth == 0 {
                    at_param_start = false;
                }
            }
        }
    }
    params
}

/// Collects field names from the contents of the struct's brace group.
fn parse_field_names(stream: TokenStream, derive_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("#[derive({derive_name})]: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "#[derive({derive_name})]: expected `:` after field `{field}`, found {other:?}"
            ),
        }
        fields.push(field);
        // Skip the type: advance to the next top-level comma. Angle
        // brackets need explicit depth tracking (`Vec<(usize, Time)>`).
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Serialize");
    let mut body = String::new();
    for field in &shape.fields {
        body.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{field}\"), \
             ::serde::Serialize::to_value(&self.{field})));\n"
        ));
    }
    let code = format!(
        "impl{decl} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::with_capacity({n});\n\
                 {body}\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}",
        decl = shape.generics_decl,
        name = shape.name,
        args = shape.generics_args,
        n = shape.fields.len(),
        body = body,
    );
    TokenStream::from_str(&code).expect("derive(Serialize): generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Deserialize");
    let mut body = String::new();
    for field in &shape.fields {
        body.push_str(&format!(
            "{field}: ::serde::from_field(__v, \"{field}\")?,\n"
        ));
    }
    let code = format!(
        "impl{decl} ::serde::Deserialize for {name}{args} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected object for {name}, got {{__v:?}}\")));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}",
        decl = shape.generics_decl,
        name = shape.name,
        args = shape.generics_args,
        body = body,
    );
    TokenStream::from_str(&code).expect("derive(Deserialize): generated impl failed to parse")
}
