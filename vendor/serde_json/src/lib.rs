//! Offline stand-in for `serde_json` (the subset this workspace uses):
//! `to_string`, `to_string_pretty`, `from_str`, and the [`Value`]
//! document model (re-exported from the vendored `serde`).
//!
//! The parser is a plain recursive-descent JSON reader; the writer
//! emits numbers via Rust's shortest-roundtrip float formatting, with
//! integral values printed without a trailing `.0` so records look like
//! ordinary JSON integers.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error raised by [`from_str`] on malformed input or a type mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.0))
}

// ---- writer ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), out, indent, depth, ('[', ']'), |v, o, d| {
                write_value(v, o, indent, d)
            })
        }
        Value::Object(fields) => write_seq(
            fields.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, v), o, d| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, o, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!(
                "invalid literal at offset {} (expected `{text}`)",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multibyte sequences are
                    // copied as-is).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"name":"demo","count":15,"ratio":2.5,"flags":[true,false,null]}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"], "demo");
        assert_eq!(v["count"], 15);
        assert_eq!(v["ratio"], 2.5);
        let emitted = to_string(&v).unwrap();
        let back: Value = from_str(&emitted).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            ("b".into(), Value::Array(vec![Value::String("x\ny".into())])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(from_str::<Value>("{oops").is_err());
        assert!(from_str::<Value>("[1, 2,").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<u32>("\"not a number\"").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\ backslash\t";
        let emitted = to_string(&s).unwrap();
        let back: String = from_str(&emitted).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn scientific_notation_parses() {
        let v: Value = from_str("[1e3, -2.5E-2]").unwrap();
        assert_eq!(v[0], 1000.0);
        assert_eq!(v[1], -0.025);
    }
}
