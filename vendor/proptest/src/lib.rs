//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Supports the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/`Just`/`prop_oneof!`/`collection::vec` strategies with
//! `prop_map`/`prop_flat_map` adaptors, and `ProptestConfig::with_cases`.
//!
//! Two deliberate simplifications versus upstream:
//!
//! - **No shrinking.** A failing case reports the case number and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! - **Determinism by default.** The RNG is seeded from the test's name,
//!   so failures are stable across runs and machines (upstream seeds
//!   from the OS unless a regression file exists).

pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// Runs `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property (produced by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic source of randomness for strategies.
    #[derive(Debug)]
    pub struct TestRng {
        pub(crate) inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds the generator from the test's name (FNV-1a hash), so
        /// every run of the same test draws the same case sequence.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0100_01b3);
            }
            use rand::SeedableRng as _;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then a second value from a strategy built
        /// out of the first (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (what `prop_oneof!` arms become).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            let pick = rng.inner.random_range(0..self.arms.len());
            self.arms[pick].generate(rng)
        }
    }

    // Ranges are strategies over their element type.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.inner.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.inner.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy drawing from a type's full uniform distribution.
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — uniform values of a primitive type.
    pub fn any<T: rand::StandardUniform>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: rand::StandardUniform> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.inner.random()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let n = rng
                .inner
                .random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Entry point of the stand-in; see the crate docs for the
/// differences from upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // The workspace writes `#[test]` explicitly inside `proptest!`
        // blocks (upstream accepts both styles), so the captured metas
        // are emitted as-is rather than adding a second `#[test]`.
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let ($($arg,)+) =
                    ($( $crate::strategy::Strategy::generate(&($strat), &mut __rng) ,)+);
                let mut __check = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = __check() {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, e
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property (without panicking the runner) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -4i32..=4) {
            prop_assert!(x < 10);
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u64..100, 0.0f64..1.0)) {
            let doubled = Just(a).prop_map(|v| v * 2).generate_for_test();
            prop_assert_eq!(doubled, a * 2);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(0u32..5, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_builds_dependent_values(
            (n, idx) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            prop_assert!(idx < n);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn any_draws_compile(flag in any::<bool>(), word in any::<u64>()) {
            let _ = (flag, word);
            prop_assert!(true);
        }
    }

    // Helper used above: generate one value outside a runner.
    trait GenForTest: crate::strategy::Strategy + Sized {
        fn generate_for_test(self) -> Self::Value {
            let mut rng = crate::test_runner::TestRng::deterministic("helper");
            self.generate(&mut rng)
        }
    }
    impl<S: crate::strategy::Strategy + Sized> GenForTest for S {}

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let mut a = crate::test_runner::TestRng::deterministic("same-name");
        let mut b = crate::test_runner::TestRng::deterministic("same-name");
        let xs: Vec<u64> = (0..16).map(|_| (0u64..1000).generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| (0u64..1000).generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case_number() {
        // Run the expansion by hand so the panic happens inside this test.
        let cfg = crate::test_runner::Config::with_cases(5);
        let mut rng = crate::test_runner::TestRng::deterministic("fails");
        for case in 0..cfg.cases {
            use crate::strategy::Strategy as _;
            let x = (0usize..10).generate(&mut rng);
            let check = || -> Result<(), crate::test_runner::TestCaseError> {
                if x < 10 {
                    return Err(crate::test_runner::TestCaseError::fail("forced"));
                }
                Ok(())
            };
            if let Err(e) = check() {
                panic!(
                    "proptest `fails` failed at case {}/{}: {}",
                    case + 1,
                    cfg.cases,
                    e
                );
            }
        }
    }
}
