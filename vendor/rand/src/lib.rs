//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses:
//!
//! - [`rngs::StdRng`] — a deterministic generator (xoshiro256\*\*,
//!   seeded through SplitMix64). Stream values differ from upstream
//!   `rand`'s StdRng, which is fine: every consumer in this workspace
//!   treats the RNG as an opaque deterministic stream and asserts
//!   statistical properties, never exact upstream values.
//! - [`SeedableRng::seed_from_u64`].
//! - [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`] over
//!   the primitive types and range shapes the workspace samples.
//!
//! The generator passes the usual smoke checks (equidistribution over
//! small ranges, avalanche on seeds) in this crate's tests; it is not a
//! cryptographic RNG and does not try to be.

/// Types whose values can be drawn uniformly by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`'s stream.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range shapes accepted by [`Rng::random_range`].
///
/// The produced type `T` is a trait *parameter* (not an associated
/// type) so inference can flow backwards from the call site — e.g.
/// `vec[rng.random_range(0..2)]` types the literal range as
/// `Range<usize>`, matching upstream `rand` 0.9.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types rangeable by [`Rng::random_range`]. A single generic
/// `SampleRange` impl per range shape (rather than one impl per
/// element type) keeps `Range<{integer}>` unambiguous during
/// inference, again matching upstream.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `u64` in `[0, span)` by widening multiply (tiny, ignorable
/// bias for the spans this workspace uses).
#[inline]
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u: f64 = StandardUniform::draw(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u: f64 = StandardUniform::draw(rng);
        lo + u * (hi - lo)
    }
}

/// The slice of `rand::Rng` this workspace calls.
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of an inferred primitive type.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a half-open or inclusive range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let u: f64 = StandardUniform::draw(self);
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    #[inline]
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic xoshiro256\*\* generator (the workspace's standard
    /// RNG; not upstream-compatible, see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as xoshiro's authors
            // recommend; reject the (probability ~2^-256) all-zero state.
            let mut s = [0u64; 4];
            let mut z = seed;
            for w in &mut s {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *w = splitmix64(z);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        let mut seen_incl = [false; 4];
        for _ in 0..1_000 {
            seen_incl[rng.random_range(1usize..=4) - 1] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_bounds_for_signed_and_float() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn trait_object_through_mut_ref() {
        // `&mut StdRng` must itself satisfy `Rng` (generic call sites
        // pass re-borrowed generators down the stack).
        fn takes_rng(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = takes_rng(&mut rng);
        let _ = rng.next_u64();
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(3usize..3);
    }
}
