//! Offline stand-in for `criterion` (the subset this workspace uses):
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology (simplified from upstream, same spirit):
//!
//! 1. **Warm-up** — the routine runs repeatedly (growing the iteration
//!    count geometrically) until ~40 ms have elapsed, which also yields
//!    a per-iteration estimate.
//! 2. **Sampling** — 11 timed batches, each sized from the estimate to
//!    take ~15 ms, produce 11 per-iteration figures.
//! 3. **Report** — the median is printed; outliers and plots are out of
//!    scope.
//!
//! When the `FLOWSCHED_BENCH_JSON` environment variable names a file,
//! every completed benchmark also merges `{name: median_ns}` into that
//! file (read-modify-write, so results from the workspace's several
//! bench binaries accumulate into one document). `scripts/bench_baseline.sh`
//! uses this to snapshot baselines like `BENCH_PR1.json`.

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(40);
const SAMPLES: usize = 11;
const TARGET_SAMPLE: Duration = Duration::from_millis(15);

/// Runs one benchmark's timed section.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the measurement
    /// plan asks for. Return values are dropped after the clock stops,
    /// which is enough to keep the call from being optimized out when
    /// paired with `std::hint::black_box` at the call site.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (a stand-in for `criterion::Criterion`).
pub struct Criterion {
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            json_path: std::env::var("FLOWSCHED_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Measures one named routine and reports its median ns/iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let median_ns = run_measurement(f);
        println!("{id:<56} median {median_ns:>14.1} ns/iter");
        if let Some(path) = &self.json_path {
            merge_into_json(path, &id, median_ns);
        }
    }

    /// Opens a named group; member benchmarks report as `group/member`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one member routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
    }

    /// Ends the group (accepted for API compatibility; dropping the
    /// group does the same).
    pub fn finish(self) {}
}

/// Warm-up then sample; returns the median ns/iteration.
fn run_measurement<F: FnMut(&mut Bencher)>(mut f: F) -> f64 {
    // Warm-up: grow the iteration count until the routine has run for
    // WARMUP total, yielding a per-iteration estimate.
    let mut iters: u64 = 1;
    let mut spent = Duration::ZERO;
    let mut per_iter_ns = f64::MAX;
    while spent < WARMUP {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        spent += b.elapsed;
        if b.elapsed > Duration::ZERO {
            per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters = iters.saturating_mul(2);
    }
    if per_iter_ns == f64::MAX {
        per_iter_ns = 1.0; // sub-nanosecond routine; sample sizing below still works
    }

    // Sampling: size each batch to roughly TARGET_SAMPLE.
    let batch = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher {
                iters: batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Merges `{id: median_ns}` into the JSON document at `path`.
fn merge_into_json(path: &str, id: &str, median_ns: f64) {
    use serde_json::Value;
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .unwrap_or(Value::Object(Vec::new()));
    if !matches!(doc, Value::Object(_)) {
        eprintln!("criterion: {path} is not a JSON object; overwriting");
        doc = Value::Object(Vec::new());
    }
    if let Value::Object(fields) = &mut doc {
        match fields.iter_mut().find(|(k, _)| k == id) {
            Some((_, v)) => *v = Value::Number(median_ns),
            None => fields.push((id.to_string(), Value::Number(median_ns))),
        }
    }
    write_doc(path, &doc);
}

fn write_doc(path: &str, doc: &serde_json::Value) {
    match serde_json::to_string_pretty(doc) {
        Ok(text) => {
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("criterion: cannot write {path}: {e}");
            }
        }
        Err(e) => eprintln!("criterion: cannot serialize results: {e}"),
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary (ignores harness CLI flags such
/// as the `--bench` cargo passes).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_routine() {
        let median = run_measurement(|b| b.iter(|| std::hint::black_box(3u64.wrapping_mul(7))));
        assert!(median.is_finite() && median >= 0.0);
    }

    #[test]
    fn group_names_are_prefixed_and_json_merges() {
        let dir = std::env::temp_dir();
        let path = dir.join("flowsched_criterion_shim_test.json");
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);

        let mut c = Criterion {
            json_path: Some(path_str.clone()),
        };
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function("fast", |b| b.iter(|| std::hint::black_box(1 + 1)));
            g.finish();
        }
        c.bench_function("solo", |b| b.iter(|| std::hint::black_box(2 + 2)));
        // Second write to the same id must replace, not duplicate.
        c.bench_function("solo", |b| b.iter(|| std::hint::black_box(2 + 2)));

        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(doc["grp/fast"].as_f64().is_some());
        assert!(doc["solo"].as_f64().is_some());
        let serde_json::Value::Object(fields) = &doc else {
            panic!()
        };
        assert_eq!(fields.iter().filter(|(k, _)| k == "solo").count(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
