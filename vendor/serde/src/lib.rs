//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! The build environment has no crates.io access, so serialization goes
//! through a single in-memory JSON document model, [`Value`]:
//!
//! - [`Serialize`] renders a type into a [`Value`];
//! - [`Deserialize`] rebuilds a type from a [`Value`];
//! - the derive macros (re-exported from `serde_derive`) implement both
//!   for plain structs with named fields, which is all the workspace
//!   derives them on.
//!
//! `serde_json` (also vendored) adds the text encoding/decoding on top.
//! This is not a general serde: no zero-copy, no custom attributes, no
//! enum representations — by design, just enough for the experiment
//! records and instance/schedule files, kept small and auditable.

// Let the derive macros' generated `::serde::...` paths resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON document.
///
/// Object fields keep insertion order (a `Vec`, not a map) so emitted
/// records are stable and diffable run to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact,
    /// which covers every count and seed the workspace records).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up an array element.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_value_int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_value_int_eq!(i32, i64, u32, u64, usize);

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON document.
    fn to_value(&self) -> Value;
}

/// Error raised when a [`Value`] does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds the type, reporting a mismatch as an error (never a
    /// panic — malformed input files surface as `Err`).
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches and converts one object field (used by derived impls; the
/// field's type drives inference).
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

// ---- Serialize impls for the primitives the workspace records. ----

macro_rules! impl_ser_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError(format!("expected number, got {v:?}")))?;
                let cast = n as $t;
                if (cast as f64 - n).abs() > 1e-9 {
                    return Err(DeError(format!(
                        "number {n} does not fit {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}

impl_ser_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back: Vec<(usize, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("demo".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(2.5)]),
            ),
        ]);
        assert_eq!(v["name"], "demo");
        assert_eq!(v["xs"][1], 2.5);
        assert_eq!(v["xs"][0], 1);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(bool::from_value(&Value::Number(1.0)).is_err());
        assert!(<Vec<u32>>::from_value(&Value::Bool(false)).is_err());
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
    }

    #[test]
    fn derive_serialize_and_deserialize_work() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Point {
            x: f64,
            label: String,
            tags: Vec<u32>,
        }
        let p = Point {
            x: 1.5,
            label: "a".into(),
            tags: vec![1, 2],
        };
        let v = p.to_value();
        assert_eq!(v["x"], 1.5);
        assert_eq!(v["label"], "a");
        let back = Point::from_value(&v).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn derive_handles_generic_bounds() {
        #[derive(Serialize)]
        struct Wrap<T: Serialize> {
            inner: T,
        }
        let v = Wrap {
            inner: vec![1u32, 2],
        }
        .to_value();
        assert_eq!(v["inner"][0], 1);
    }
}
