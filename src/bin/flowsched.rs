//! `flowsched` — command-line entry point for the whole reproduction.
//!
//! ```text
//! flowsched list                          # available experiments
//! flowsched run fig10a --paper            # one experiment, paper scale
//! flowsched run table2 --json out.json    # machine-readable record
//! flowsched all --out results/            # everything, JSON per experiment
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use flowsched::experiments::record::write_json;
use flowsched::experiments::{
    ablation, fig08, fig10, fig11, openq, policies, selfcheck, service, table1, table2, Scale,
};

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "table1",
        "FIFO/EFT competitiveness on P | online-ri | Fmax (paper Table 1)",
    ),
    (
        "table2",
        "structured-processing-set bounds, theory vs measured (paper Table 2)",
    ),
    ("fig08", "load distributions λ·P(E_j) (paper Figure 8)"),
    ("fig10a", "LP (15) max-load sweep (paper Figure 10a)"),
    (
        "fig10b",
        "overlapping/disjoint max-load ratio (paper Figure 10b)",
    ),
    ("fig11", "Fmax vs average load simulation (paper Figure 11)"),
    ("ablation", "tie-break × replication strategy ablation"),
    (
        "openq",
        "open question: staggered replication scored on three axes",
    ),
    ("service", "service-time sensitivity beyond unit tasks"),
    (
        "policies",
        "immediate-dispatch rules: adversarial vs average behaviour",
    ),
    (
        "selfcheck",
        "re-derive the headline claims and print a verdict per claim",
    ),
];

struct Cli {
    command: String,
    target: Option<String>,
    scale: Scale,
    json: Option<PathBuf>,
    out_dir: PathBuf,
}

fn usage() -> String {
    let mut s = String::from(
        "usage: flowsched <list|run <experiment>|all> [--paper] [--seed <u64>] \
         [--json <file>] [--out <dir>]\n\nexperiments:\n",
    );
    for (name, desc) in EXPERIMENTS {
        s.push_str(&format!("  {name:<10} {desc}\n"));
    }
    s
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter().peekable();
    let command = it.next().cloned().ok_or_else(usage)?;
    let target = if command == "run" {
        Some(
            it.next()
                .cloned()
                .ok_or("run requires an experiment name")?,
        )
    } else {
        None
    };
    let mut scale = Scale::quick();
    let mut json = None;
    let mut out_dir = PathBuf::from("results");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::paper(),
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                scale.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--json" => {
                json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?));
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().ok_or("--out requires a path")?);
            }
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok(Cli {
        command,
        target,
        scale,
        json,
        out_dir,
    })
}

/// Runs one experiment: prints the table, optionally writes JSON.
fn run_one(name: &str, scale: &Scale, json: Option<&Path>) -> Result<(), String> {
    let maybe_write = |text: String, write: &dyn Fn(&Path) -> std::io::Result<()>| {
        print!("{text}");
        if let Some(path) = json {
            write(path).map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    };
    match name {
        "table1" => {
            let rows = table1::run(scale);
            maybe_write(table1::render(&rows), &|p| {
                write_json(p, name, scale, &rows)
            })
        }
        "table2" => {
            let rows = table2::run(scale);
            maybe_write(table2::render(&rows), &|p| {
                write_json(p, name, scale, &rows)
            })
        }
        "fig08" => {
            let rows = fig08::run(scale.seed);
            maybe_write(fig08::render(&rows), &|p| write_json(p, name, scale, &rows))
        }
        "fig10a" => {
            let out = fig10::run(scale);
            maybe_write(fig10::render_10a(&out, scale), &|p| {
                std::fs::write(
                    p.with_extension("svg"),
                    flowsched::experiments::plot::fig10a_svg(&out, scale),
                )?;
                write_json(p, name, scale, &out)
            })
        }
        "fig10b" => {
            let out = fig10::run(scale);
            maybe_write(fig10::render_10b(&out, scale), &|p| {
                write_json(p, name, scale, &out)
            })
        }
        "fig11" => {
            let out = fig11::run(scale);
            maybe_write(fig11::render(&out), &|p| {
                std::fs::write(
                    p.with_extension("svg"),
                    flowsched::experiments::plot::fig11_svg(&out),
                )?;
                write_json(p, name, scale, &out)
            })
        }
        "ablation" => {
            let rows = ablation::run(scale);
            maybe_write(ablation::render(&rows), &|p| {
                write_json(p, name, scale, &rows)
            })
        }
        "openq" => {
            let rows = openq::run(scale);
            maybe_write(openq::render(&rows), &|p| write_json(p, name, scale, &rows))
        }
        "service" => {
            let rows = service::run(scale);
            maybe_write(service::render(&rows), &|p| {
                write_json(p, name, scale, &rows)
            })
        }
        "policies" => {
            let rows = policies::run(scale);
            maybe_write(policies::render(&rows, scale), &|p| {
                write_json(p, name, scale, &rows)
            })
        }
        "selfcheck" => {
            let rows = selfcheck::run(scale);
            let all_pass = rows.iter().all(|r| r.pass);
            maybe_write(selfcheck::render(&rows), &|p| {
                write_json(p, name, scale, &rows)
            })?;
            if !all_pass {
                return Err("self-check failed".into());
            }
            Ok(())
        }
        other => Err(format!("unknown experiment {other:?}\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli.command.as_str() {
        "list" => {
            print!("{}", usage());
            Ok(())
        }
        "run" => run_one(
            cli.target.as_deref().unwrap(),
            &cli.scale,
            cli.json.as_deref(),
        ),
        "all" => {
            let mut err = Ok(());
            for (name, _) in EXPERIMENTS {
                println!("==> {name}");
                let json = cli.out_dir.join(format!("{name}.json"));
                if let e @ Err(_) = run_one(name, &cli.scale, Some(&json)) {
                    err = e;
                    break;
                }
                println!();
            }
            err
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
