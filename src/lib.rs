//! # flowsched — facade crate
//!
//! Single entry point re-exporting the whole workspace: the model
//! ([`core`]), online schedulers ([`algos`]), adversarial and stochastic
//! workloads ([`workloads`]), the key-value-store replication model
//! ([`kvstore`]), the discrete-event simulator ([`sim`]), LP/flow solvers
//! ([`solver`]), the observability layer ([`obs`]), statistics
//! ([`stats`]), parallel sweep utilities ([`parallel`]) and paper
//! experiment runners ([`experiments`]).
//!
//! This workspace reproduces Canon, Dugois & Marchal, *"Bounding the Flow
//! Time in Online Scheduling with Structured Processing Sets"* (INRIA
//! RR-9446 / IPDPS 2022). See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use flowsched::prelude::*;
//!
//! // Three unit tasks on two machines, the middle one restricted to M2.
//! let mut b = InstanceBuilder::new(2);
//! b.push_unit(0.0, ProcSet::full(2));
//! b.push_unit(0.0, ProcSet::singleton(1));
//! b.push_unit(0.5, ProcSet::full(2));
//! let inst = b.build().unwrap();
//!
//! let schedule = eft(&inst, TieBreak::Min);
//! schedule.validate(&inst).unwrap();
//! assert!(schedule.fmax(&inst) <= 2.0);
//! ```

pub use flowsched_algos as algos;
pub use flowsched_core as core;
pub use flowsched_experiments as experiments;
pub use flowsched_kvstore as kvstore;
pub use flowsched_obs as obs;
pub use flowsched_parallel as parallel;
pub use flowsched_sim as sim;
pub use flowsched_solver as solver;
pub use flowsched_stats as stats;
pub use flowsched_workloads as workloads;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use flowsched_algos::prelude::*;
    pub use flowsched_core::prelude::*;
}
