#!/usr/bin/env bash
# Bench regression gate: re-run the criterion benches behind a recorded
# baseline and compare medians, with a noise tolerance.
#
# Baselines are the flat {bench_name: median_ns} JSON files the vendored
# criterion harness writes via FLOWSCHED_BENCH_JSON (see
# scripts/bench_baseline.sh):
#
#   BENCH_PR1.json — solvers / schedulers / simulation kernels
#   BENCH_PR3.json — streaming engine vs batch replay
#   BENCH_PR4.json — telemetry recorder overhead (noop / memory / windowed)
#   BENCH_PR5.json — scalar vs indexed dispatch kernels across machine counts
#   BENCH_PR6.json — sequential vs sharded dispatch thread ladder
#   BENCH_PR9.json — pipeline-probe overhead (noop vs live PipelineMetrics)
#   BENCH_PR10.json — scalar vs SIMD tie scan + the m = 2^20 dispatch sweep
#
# A row regresses when current > baseline * (1 + FLOWSCHED_BENCH_TOL);
# the default tolerance is 0.30 — wall-clock medians on shared machines
# drift by 10–15% between sessions, so the gate is deliberately loose
# and exists to catch step-function regressions, not percent creep.
#
# WARN-ONLY by default: regressions are reported but the exit status
# stays 0, which is how ci_check.sh runs it. Pass --strict to turn
# regressions into a non-zero exit (for local perf work).
#
# Usage:
#   scripts/bench_gate.sh                    # every baseline present
#   scripts/bench_gate.sh BENCH_PR3.json     # one baseline
#   scripts/bench_gate.sh --strict           # fail on regression
#   FLOWSCHED_BENCH_TOL=0.10 scripts/bench_gate.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${FLOWSCHED_BENCH_TOL:-0.30}"
STRICT=0
BASELINES=()
for arg in "$@"; do
  case "$arg" in
    --strict) STRICT=1 ;;
    *) BASELINES+=("$arg") ;;
  esac
done
if [ "${#BASELINES[@]}" -eq 0 ]; then
  for b in BENCH_PR1.json BENCH_PR3.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR9.json BENCH_PR10.json; do
    [ -f "$b" ] && BASELINES+=("$b")
  done
fi
if [ "${#BASELINES[@]}" -eq 0 ]; then
  echo "bench_gate: no baseline JSON files found — nothing to compare"
  exit 0
fi

# Which bench binaries feed which baseline.
benches_for() {
  case "$(basename "$1")" in
    BENCH_PR1.json) echo "solvers schedulers simulation" ;;
    BENCH_PR3.json) echo "streaming" ;;
    BENCH_PR4.json) echo "telemetry" ;;
    BENCH_PR5.json) echo "dispatch" ;;
    BENCH_PR6.json) echo "sharded" ;;
    BENCH_PR9.json) echo "pipeline" ;;
    BENCH_PR10.json) echo "scan" ;;
    *) echo "" ;;
  esac
}

# Flat {name: number} JSON -> "name value" lines.
flatten() {
  sed -n 's/^[[:space:]]*"\([^"]*\)":[[:space:]]*\([0-9.eE+-]*\),\{0,1\}[[:space:]]*$/\1 \2/p' "$1"
}

CURRENT="$(mktemp /tmp/bench_gate.XXXXXX.json)"
trap 'rm -f "$CURRENT"' EXIT

FAILED=0
for baseline in "${BASELINES[@]}"; do
  benches="$(benches_for "$baseline")"
  if [ -z "$benches" ]; then
    echo "bench_gate: $baseline — unknown baseline, skipping (name the bench binaries in benches_for)"
    continue
  fi
  echo "== $baseline (benches: $benches; tolerance +$(awk -v t="$TOL" 'BEGIN{printf "%.0f%%", t*100}')) =="
  : > "$CURRENT"
  for bench in $benches; do
    FLOWSCHED_BENCH_JSON="$CURRENT" \
      cargo bench -q -p flowsched-bench --bench "$bench" >/dev/null
  done
  # Join on bench name; only rows present in both files are gated.
  if ! flatten "$baseline" | sort >"$CURRENT.base"; then
    echo "bench_gate: cannot parse $baseline, skipping"
    continue
  fi
  flatten "$CURRENT" | sort >"$CURRENT.now"
  result="$(join "$CURRENT.base" "$CURRENT.now" | awk -v tol="$TOL" '
    {
      base = $2 + 0; now = $3 + 0;
      ratio = (base > 0) ? now / base : 1;
      verdict = (ratio > 1 + tol) ? "REGRESSED" : "ok";
      if (verdict == "REGRESSED") bad++;
      printf "  %-55s %12.0f -> %12.0f  x%.2f  %s\n", $1, base, now, ratio, verdict;
    }
    END { exit bad > 0 ? 1 : 0 }
  ')" && rc=0 || rc=$?
  echo "$result"
  rm -f "$CURRENT.base" "$CURRENT.now"
  if [ "$rc" -ne 0 ]; then
    FAILED=1
    echo "  WARNING: medians above drifted past the tolerance vs $baseline"
  fi
  echo
done

if [ "$FAILED" -ne 0 ]; then
  if [ "$STRICT" -eq 1 ]; then
    echo "bench_gate: regressions found (strict mode)"
    exit 1
  fi
  echo "bench_gate: regressions found — warn-only, not failing the build"
else
  echo "bench_gate: all compared medians within tolerance"
fi
