#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every PR.
#
#   1. release build of the whole workspace
#   2. the full test suite (unit + integration + doc tests), which
#      includes the observability hardening suites
#      (tests/obs_invariants.rs, tests/report_consistency.rs)
#   3. clippy with warnings promoted to errors
#
# Usage:
#   scripts/ci_check.sh            # all three stages
#   scripts/ci_check.sh --no-clippy   # skip the lint stage (e.g. when the
#                                     # toolchain lacks clippy)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_CLIPPY=1
if [ "${1:-}" = "--no-clippy" ]; then
  RUN_CLIPPY=0
fi

echo "== cargo build --release =="
cargo build --release

echo
echo "== cargo test -q =="
cargo test -q

if [ "$RUN_CLIPPY" = 1 ]; then
  echo
  echo "== cargo clippy --all-targets -- -D warnings =="
  cargo clippy --all-targets -- -D warnings
fi

echo
echo "ci_check: all stages passed"
