#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every PR.
#
#   1. formatting (cargo fmt --check over the whole workspace,
#      vendored stand-ins included)
#   2. release build of the whole workspace
#   3. the full test suite (unit + integration + doc tests), which
#      includes the observability hardening suites
#      (tests/obs_invariants.rs, tests/report_consistency.rs,
#      tests/prometheus_lint.rs) and the streaming-core suites
#      (tests/streaming_equivalence.rs, tests/streaming_memory.rs)
#   4. clippy with warnings promoted to errors
#   5. rustdoc with warnings promoted to errors (broken intra-doc
#      links, missing docs on public items)
#   6. large-m smoke run: 100k-machine streams through the indexed
#      dispatch kernel (cargo run --release -p flowsched-bench --bin
#      smoke_scale), panicking on any degenerate report
#   7. sharded determinism smoke: the sharded_smoke bin runs under
#      FLOWSCHED_THREADS=1 and =4 and the printed schedule hashes must
#      be identical (thread-count invariance, end to end)
#   8. fault-injection soak: the fault_soak bin dispatches a 1M-task
#      Poisson stream under a 1% crash-rate fault plan, asserting
#      bounded memory (VmHWM growth < 32 MiB) in-process; the stage
#      asserts the schedule hash is identical under FLOWSCHED_THREADS=1
#      and =4 (the faulty engine is thread-count invariant too)
#   9. competitive-ratio ladder: the ratio_ladder bin runs every
#      registry policy (eft / weft / setup variants) over its
#      adversarial stream and asserts the measured ratios stay inside
#      the envelopes recorded in EXPERIMENTS.md
#  10. pipeline-profile smoke: the pipeline_profile bin runs a bounded
#      trace through the sequential and the probe-instrumented sharded
#      engine, asserting in-process that the two schedules hash
#      identically (the wall-clock probe must never perturb dispatch)
#      and printing the per-stage ns/task table
#  11. hardware-limit smoke: the same smoke_scale bin re-run at
#      m = 2^20 via FLOWSCHED_SMOKE_M/N — the SoA completion bank,
#      SIMD tie scan, and branchless segment-tree descent at the
#      million-machine scale (ISSUE 10)
#  12. bench gate (warn-only): scripts/bench_gate.sh re-runs the benches
#      behind BENCH_PR1/PR3/PR4/PR5/PR6/PR9/PR10.json and reports
#      medians that drifted past the noise tolerance — it never fails
#      the build
#
# Usage:
#   scripts/ci_check.sh                 # all twelve stages
#   scripts/ci_check.sh --no-clippy     # skip the lint stage (e.g. when
#                                       # the toolchain lacks clippy)
#   scripts/ci_check.sh --no-bench-gate # skip the (slow) bench stage
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_CLIPPY=1
RUN_BENCH_GATE=1
for arg in "$@"; do
  case "$arg" in
    --no-clippy) RUN_CLIPPY=0 ;;
    --no-bench-gate) RUN_BENCH_GATE=0 ;;
    *) echo "ci_check: unknown flag $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --check

echo
echo "== cargo build --release =="
cargo build --release

echo
echo "== cargo test -q =="
cargo test -q

if [ "$RUN_CLIPPY" = 1 ]; then
  echo
  echo "== cargo clippy --all-targets -- -D warnings =="
  cargo clippy --all-targets -- -D warnings
fi

echo
echo "== RUSTDOCFLAGS=\"-D warnings\" cargo doc --no-deps =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo
echo "== 100k-machine smoke run (indexed dispatch) =="
cargo run -q --release -p flowsched-bench --bin smoke_scale

echo
echo "== sharded determinism smoke (1 vs 4 threads) =="
HASH1="$(FLOWSCHED_THREADS=1 cargo run -q --release -p flowsched-bench --bin sharded_smoke \
  | sed -n 's/^schedule_hash=//p')"
HASH4="$(FLOWSCHED_THREADS=4 cargo run -q --release -p flowsched-bench --bin sharded_smoke \
  | sed -n 's/^schedule_hash=//p')"
echo "  threads=1: $HASH1"
echo "  threads=4: $HASH4"
if [ -z "$HASH1" ] || [ "$HASH1" != "$HASH4" ]; then
  echo "ci_check: sharded schedule hash diverges across thread counts" >&2
  exit 1
fi

echo
echo "== fault-injection soak (1 vs 4 threads) =="
FHASH1="$(FLOWSCHED_THREADS=1 cargo run -q --release -p flowsched-bench --bin fault_soak \
  | sed -n 's/^schedule_hash=//p')"
FHASH4="$(FLOWSCHED_THREADS=4 cargo run -q --release -p flowsched-bench --bin fault_soak \
  | sed -n 's/^schedule_hash=//p')"
echo "  threads=1: $FHASH1"
echo "  threads=4: $FHASH4"
if [ -z "$FHASH1" ] || [ "$FHASH1" != "$FHASH4" ]; then
  echo "ci_check: faulty schedule hash diverges across thread counts" >&2
  exit 1
fi

echo
echo "== competitive-ratio ladder (envelope gate) =="
cargo run -q --release -p flowsched-bench --bin ratio_ladder

echo
echo "== pipeline-profile smoke (probe transparency + stage table) =="
cargo run -q --release -p flowsched-bench --bin pipeline_profile -- --tasks 20000 --threads 4

echo
echo "== 2^20-machine smoke run (SoA bank + branchless descent) =="
FLOWSCHED_SMOKE_M=1048576 FLOWSCHED_SMOKE_N=200000 \
  cargo run -q --release -p flowsched-bench --bin smoke_scale

if [ "$RUN_BENCH_GATE" = 1 ]; then
  echo
  echo "== scripts/bench_gate.sh (warn-only) =="
  scripts/bench_gate.sh
fi

echo
echo "ci_check: all stages passed"
