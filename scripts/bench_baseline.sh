#!/usr/bin/env bash
# Snapshot solver-kernel benchmark medians into a JSON baseline.
#
# Runs the workspace bench binaries (default: solvers) with
# FLOWSCHED_BENCH_JSON pointed at the output file; the vendored criterion
# harness merges {bench_name: median_ns} into it after every benchmark,
# so repeated/partial runs accumulate into one document.
#
# Usage:
#   scripts/bench_baseline.sh            # -> BENCH_PR1.json; solver, scheduler,
#                                        #    and simulation bench binaries
#   scripts/bench_baseline.sh out.json   # custom output file
#   scripts/bench_baseline.sh out.json solvers offline   # pick bench binaries
#
# The seed_* entries measure the pre-optimization kernels preserved in
# flowsched_solver::reference; compare them against their unprefixed
# counterparts to judge the flat-tableau / persistent-probe speedups.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR1.json}"
shift || true
if [ "$#" -gt 0 ]; then
  BENCHES=("$@")
else
  BENCHES=(solvers schedulers simulation)
fi

case "$OUT" in
  /*) JSON_PATH="$OUT" ;;
  *) JSON_PATH="$PWD/$OUT" ;;
esac

echo "recording medians into $JSON_PATH"
for bench in "${BENCHES[@]}"; do
  FLOWSCHED_BENCH_JSON="$JSON_PATH" \
    cargo bench -q -p flowsched-bench --bench "$bench"
done

# Stamp the recording environment into the baseline so a drift report
# can be read next to where its numbers came from. The `_meta` object is
# non-numeric, so bench_gate.sh's flatten step ignores it by design.
if command -v jq >/dev/null 2>&1; then
  jq --arg nproc "$(nproc)" \
     --arg rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
     --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
     '. + {_meta: {nproc: $nproc, git_rev: $rev, recorded_at: $date}}' \
     "$JSON_PATH" > "$JSON_PATH.tmp" && mv "$JSON_PATH.tmp" "$JSON_PATH"
else
  echo "bench_baseline: jq not found, skipping _meta stamp" >&2
fi

echo
echo "== $JSON_PATH =="
cat "$JSON_PATH"
echo
