//! Criterion benchmarks: scalar vs indexed EFT dispatch kernels across
//! machine counts (the PR-5 scaling sweep, recorded into
//! `BENCH_PR5.json`).
//!
//! Each benchmark streams the same 4,096-task Poisson workload through
//! `simulate_stream_with_kernel` with the kernel forced, so the measured
//! difference is dispatch cost alone: the scalar oracle scans every
//! member of each processing set, the indexed kernel answers the same
//! Equation (2) query through the leftmost-argmin segment tree in
//! O(log m). Three set shapes at m ∈ {2⁶, 2⁸, 2¹⁰, 2¹², 2¹⁴, 2¹⁶}:
//!
//! - `interval`: fixed intervals of width m/2 — the Theorem 8 family,
//!   and the worst case for the scalar scan;
//! - `inclusive`: random prefixes (average width m/2) — the Theorem 6
//!   inclusive regime;
//! - `disjoint`: blocks of width m/16 — the Corollary 1 family.
//!
//! Acceptance (ISSUE 5): ≥ 5× at m = 4096 on `interval`, with the
//! indexed per-task cost staying near-flat from m = 2⁶ to 2¹⁶.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::indexed::DispatchKernel;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::simulate_stream_with_kernel;
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const TASKS: usize = 4096;
const MACHINE_COUNTS: [usize; 6] = [64, 256, 1024, 4096, 16384, 65536];

fn run(cfg: &PoissonStreamConfig, kernel: DispatchKernel) -> f64 {
    simulate_stream_with_kernel(
        PoissonStream::new(cfg, 7),
        TieBreak::Min,
        kernel,
        &ReportConfig::default(),
        &mut NoopRecorder,
    )
    .fmax
}

fn sweep(c: &mut Criterion, shape: &str, structure: impl Fn(usize) -> StructureKind) {
    let mut g = c.benchmark_group(format!("dispatch_{shape}"));
    for m in MACHINE_COUNTS {
        let cfg = PoissonStreamConfig {
            m,
            n: TASKS,
            structure: structure(m),
            lambda: m as f64,
            unit: true,
            ptime_steps: 4,
        };
        for (kernel, name) in [
            (DispatchKernel::Scalar, "scalar"),
            (DispatchKernel::Indexed, "indexed"),
        ] {
            g.bench_function(format!("m{m}_{name}"), |b| {
                b.iter(|| black_box(run(black_box(&cfg), kernel)))
            });
        }
    }
    g.finish();
}

fn bench_interval(c: &mut Criterion) {
    sweep(c, "interval", |m| StructureKind::IntervalFixed(m / 2));
}

fn bench_inclusive(c: &mut Criterion) {
    sweep(c, "inclusive", |_| StructureKind::InclusivePrefix);
}

fn bench_disjoint(c: &mut Criterion) {
    sweep(c, "disjoint", |m| StructureKind::DisjointBlocks(m / 16));
}

criterion_group!(benches, bench_interval, bench_inclusive, bench_disjoint);
criterion_main!(benches);
