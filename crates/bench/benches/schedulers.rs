//! Criterion benchmarks: online scheduler throughput (dispatches/s) on
//! the workloads the experiments run — EFT with each tie-break, and FIFO
//! for the Proposition 1 pairing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::tiebreak::TieBreak;
use flowsched_algos::{eft, fifo};
use flowsched_workloads::adversary::interval::interval_adversary_instance;
use flowsched_workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn bench_eft_policies(c: &mut Criterion) {
    let inst = random_instance(
        &RandomInstanceConfig::unit_tasks(15, 10_000, StructureKind::RingFixed(3)),
        1,
    );
    let mut g = c.benchmark_group("eft_10k_tasks_m15_k3");
    for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 1 }] {
        g.bench_function(format!("{tb}"), |b| {
            b.iter(|| black_box(eft(black_box(&inst), tb)));
        });
    }
    g.finish();
}

fn bench_fifo_vs_eft(c: &mut Criterion) {
    let inst = random_instance(
        &RandomInstanceConfig::unit_tasks(15, 10_000, StructureKind::Unrestricted),
        2,
    );
    let mut g = c.benchmark_group("fifo_vs_eft_unrestricted_10k");
    g.bench_function("eft", |b| {
        b.iter(|| black_box(eft(black_box(&inst), TieBreak::Min)))
    });
    g.bench_function("fifo_event_sim", |b| {
        b.iter(|| black_box(fifo(black_box(&inst), TieBreak::Min)))
    });
    g.finish();
}

fn bench_adversary_stream(c: &mut Criterion) {
    let inst = interval_adversary_instance(15, 3, 225);
    c.bench_function("eft_min_theorem8_stream_m15", |b| {
        b.iter(|| black_box(eft(black_box(&inst), TieBreak::Min)));
    });
}

criterion_group!(
    benches,
    bench_eft_policies,
    bench_fifo_vs_eft,
    bench_adversary_stream
);
criterion_main!(benches);
