//! Criterion benchmarks: end-to-end simulation throughput (one Figure 11
//! point) and the parallel sweep utilities (DESIGN.md ablation 4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_parallel::par_map;
use flowsched_sim::driver::{simulate, SimConfig};
use flowsched_stats::rng::seeded_rng;
use flowsched_stats::zipf::BiasCase;

fn bench_fig11_point(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let cluster = KvCluster::new(
        ClusterConfig {
            m: 15,
            k: 3,
            strategy: ReplicationStrategy::Overlapping,
            s: 1.0,
            case: BiasCase::Shuffled,
        },
        &mut rng,
    );
    let inst = cluster.requests(10_000, 7.5, &mut rng);
    c.bench_function("simulate_fig11_point_10k_tasks", |b| {
        b.iter(|| black_box(simulate(black_box(&inst), &SimConfig::default())))
    });
}

fn bench_request_generation(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let cluster = KvCluster::new(
        ClusterConfig {
            m: 15,
            k: 3,
            strategy: ReplicationStrategy::Disjoint,
            s: 1.0,
            case: BiasCase::WorstCase,
        },
        &mut rng,
    );
    c.bench_function("generate_10k_requests", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| black_box(cluster.requests(10_000, 7.5, &mut rng)))
    });
}

fn bench_par_map_grain(c: &mut Criterion) {
    // How the sweep scales: the same work as 64 LP-ish units, serial vs
    // parallel map.
    let work = |x: &u64| -> u64 {
        let mut acc = *x;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    };
    let items: Vec<u64> = (0..64).collect();
    let mut g = c.benchmark_group("par_map_64_heavy_items");
    g.bench_function("serial", |b| {
        b.iter(|| black_box(items.iter().map(work).collect::<Vec<_>>()))
    });
    g.bench_function("par_map", |b| b.iter(|| black_box(par_map(&items, work))));
    g.finish();
}

fn bench_event_vs_stepped(c: &mut Criterion) {
    // DESIGN.md ablation 3: event-driven EFT vs the integer time-stepped
    // fast path on the Theorem 8 stream.
    use flowsched_algos::eft::EftState;
    use flowsched_algos::tiebreak::TieBreak;
    use flowsched_sim::stepped::run_stepped_interval_adversary;
    use flowsched_workloads::adversary::interval::run_interval_adversary;

    let (m, k, rounds) = (15usize, 3usize, 225usize);
    let mut g = c.benchmark_group("theorem8_stream_m15_225steps");
    g.bench_function("event_driven", |b| {
        b.iter(|| {
            let mut algo = EftState::new(m, TieBreak::Min);
            black_box(run_interval_adversary(&mut algo, k, rounds))
        })
    });
    g.bench_function("time_stepped", |b| {
        b.iter(|| black_box(run_stepped_interval_adversary(m, k, rounds, TieBreak::Min)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig11_point,
    bench_request_generation,
    bench_par_map_grain,
    bench_event_vs_stepped
);
criterion_main!(benches);
