//! Criterion microbenchmarks: the scalar one-pass tie scan vs the
//! vectorized two-pass SoA scan, plus the m = 2²⁰ dispatch sweep
//! (ISSUE 10, recorded into `BENCH_PR10.json`).
//!
//! The `scan_*` groups time one Equation (2) tie scan in isolation —
//! same completion array, same set, same release — so the measured
//! ratio is pure scan implementation: the scalar oracle makes one
//! adaptive pass (argmin mode until the first `C_j ≤ release`, then
//! release mode for good), the SIMD path min-reduces the cache-aligned
//! padded [`CompletionBank`] in 8-wide chunks and then collects
//! `C_j ≤ max(release, min)` members in ascending order. Completions
//! are quantized onto a handful of values so tie runs are long — the
//! regime the scan exists for. Two families at
//! m ∈ {2⁸, 2¹⁰, 2¹², 2¹⁴, 2¹⁶, 2¹⁸}:
//!
//! - `scan_interval`: a width-m/2 interval (the Theorem 8 shape);
//! - `scan_inclusive`: a width-m/2 prefix (the Theorem 6 shape).
//!
//! Acceptance (ISSUE 10): SIMD ≥ 2× over scalar at m ≥ 1024 on both.
//!
//! `dispatch_m20` streams 512 tasks over m = 2²⁰ machines per kernel —
//! the hardware-limit end of the PR-5 scaling sweep, pinning per-kernel
//! ns/task where the scalar scan visits half a million machines per
//! dispatch and the indexed kernel answers in O(log m).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::eft::scan_ties;
use flowsched_algos::indexed::DispatchKernel;
use flowsched_algos::soa::{scan_ties_simd, CompletionBank};
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::compact::ProcSetRef;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::simulate_stream_with_kernel;
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const MACHINE_COUNTS: [usize; 6] = [256, 1024, 4096, 16384, 65536, 262144];

/// Completions quantized onto 5 values: long exact-tie runs, idle
/// machines (0.0) included.
fn completions(m: usize) -> Vec<f64> {
    (0..m)
        .map(|j| ((j * 7 + j / 13) % 5) as f64 * 0.5)
        .collect()
}

fn scan_sweep(c: &mut Criterion, shape: &str, set_for: impl Fn(usize) -> ProcSetRef<'static>) {
    let mut g = c.benchmark_group(format!("scan_{shape}"));
    for m in MACHINE_COUNTS {
        let vals = completions(m);
        let bank = CompletionBank::from_completions(&vals);
        let set = set_for(m);
        let release = 0.5;
        let mut ties = Vec::with_capacity(m);
        g.bench_function(format!("m{m}_scalar"), |b| {
            b.iter(|| {
                scan_ties(
                    black_box(&vals),
                    black_box(set).iter(),
                    black_box(release),
                    &mut ties,
                );
                black_box(ties.len())
            })
        });
        g.bench_function(format!("m{m}_simd"), |b| {
            b.iter(|| {
                scan_ties_simd(
                    black_box(bank.padded()),
                    black_box(set),
                    black_box(release),
                    &mut ties,
                );
                black_box(ties.len())
            })
        });
    }
    g.finish();
}

fn bench_scan_interval(c: &mut Criterion) {
    scan_sweep(c, "interval", |m| {
        ProcSetRef::interval(m / 8, m / 8 + m / 2)
    });
}

fn bench_scan_inclusive(c: &mut Criterion) {
    scan_sweep(c, "inclusive", |m| ProcSetRef::prefix(m / 2));
}

fn bench_dispatch_m20(c: &mut Criterion) {
    const M: usize = 1 << 20;
    const TASKS: usize = 512;
    let mut g = c.benchmark_group("dispatch_m20");
    let cfg = PoissonStreamConfig {
        m: M,
        n: TASKS,
        structure: StructureKind::IntervalFixed(M / 2),
        lambda: M as f64,
        unit: true,
        ptime_steps: 4,
    };
    for (kernel, name) in [
        (DispatchKernel::Scalar, "scalar"),
        (DispatchKernel::Indexed, "indexed"),
        (DispatchKernel::Auto, "auto"),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    simulate_stream_with_kernel(
                        PoissonStream::new(black_box(&cfg), 7),
                        TieBreak::Min,
                        kernel,
                        &ReportConfig::default(),
                        &mut NoopRecorder,
                    )
                    .fmax,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scan_interval,
    bench_scan_inclusive,
    bench_dispatch_m20
);
criterion_main!(benches);
