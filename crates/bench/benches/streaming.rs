//! Criterion benchmarks: the streaming engine against the batch path.
//!
//! `replay_*` pins the refactor overhead — the batch entry points now
//! run through `InstanceStream` + the shared engine, so `eft` on a
//! materialized instance must cost what it did before the streaming
//! core landed (compare against `BENCH_PR1.json`'s scheduler rows).
//! `generate_*` measures the end-to-end difference the stream unlocks:
//! folding a report straight off a `PoissonStream` versus materializing
//! the same arrivals into an `Instance` first and scheduling that.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::eft::eft_stream;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::stream::collect_stream;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::{simulate, simulate_stream, SimConfig};
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

fn poisson_config(n: usize) -> PoissonStreamConfig {
    PoissonStreamConfig {
        m: 15,
        n,
        structure: StructureKind::RingFixed(3),
        lambda: 7.5,
        unit: false,
        ptime_steps: 6,
    }
}

fn bench_replay_vs_direct_stream(c: &mut Criterion) {
    // Same 20k arrivals, two sources: a materialized instance replayed
    // through the engine vs the generator streamed straight in.
    let cfg = poisson_config(20_000);
    let inst = collect_stream(PoissonStream::new(&cfg, 11)).unwrap();
    let mut g = c.benchmark_group("eft_20k_ring3");
    g.bench_function("replay_instance", |b| {
        b.iter(|| black_box(simulate(black_box(&inst), &SimConfig::default())))
    });
    g.bench_function("stream_direct", |b| {
        b.iter(|| {
            black_box(simulate_stream(
                PoissonStream::new(black_box(&cfg), 11),
                TieBreak::Min,
                &ReportConfig::default(),
                &mut NoopRecorder,
            ))
        })
    });
    g.finish();
}

fn bench_generate_and_schedule_100k(c: &mut Criterion) {
    // End to end from a cold generator: materialize-then-schedule vs
    // fold-online. The streaming side never allocates per task.
    let cfg = poisson_config(100_000);
    let mut g = c.benchmark_group("poisson_100k_ring3");
    g.bench_function("materialize_then_simulate", |b| {
        b.iter(|| {
            let inst = collect_stream(PoissonStream::new(black_box(&cfg), 29)).unwrap();
            black_box(simulate(&inst, &SimConfig::default()))
        })
    });
    g.bench_function("simulate_stream", |b| {
        b.iter(|| {
            black_box(simulate_stream(
                PoissonStream::new(black_box(&cfg), 29),
                TieBreak::Min,
                &ReportConfig::default(),
                &mut NoopRecorder,
            ))
        })
    });
    g.finish();
}

fn bench_schedule_only_stream(c: &mut Criterion) {
    // The engine alone (schedule materialized, report skipped): the cost
    // of `eft_stream` on a generator, the shape `flowsched-parallel`
    // sweeps shard over seeds.
    let cfg = poisson_config(20_000);
    c.bench_function("eft_stream_20k_ring3", |b| {
        b.iter(|| {
            black_box(eft_stream(
                PoissonStream::new(black_box(&cfg), 47),
                TieBreak::Min,
                &mut NoopRecorder,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_replay_vs_direct_stream,
    bench_generate_and_schedule_100k,
    bench_schedule_only_stream
);
criterion_main!(benches);
