//! Criterion benchmarks: sequential vs sharded EFT dispatch on a
//! cluster-partitioned Poisson trace (the PR-6 scaling ladder, recorded
//! into `BENCH_PR6.json`).
//!
//! The workload is the shardable shape from the paper's Section 7
//! experiments: `m = 256` machines split into 16 disjoint blocks of 16
//! (`StructureKind::DisjointBlocks`), the partitioned-cluster analogue
//! of a key-value store whose replica groups never span partitions.
//! Tasks arrive as one Poisson stream (λ = m/2, unit service) and each
//! task names one block. `ArrivalStream::shard_plan` turns the block
//! structure into a 16-shard plan, so the sharded engine runs one EFT
//! kernel per block on the worker pool while the sequential baseline
//! dispatches every task on one thread.
//!
//! The ladder holds the trace fixed (`FLOWSCHED_BENCH_TASKS` tasks,
//! default 10 million) and sweeps the worker count through
//! `ShardedConfig::with_threads` ∈ {1, 2, 4, 8}; `seq` is
//! `simulate_stream` on the unsharded path. `t1` runs the sharded
//! engine inline (no threads, no channels), so `seq` vs `t1` isolates
//! the routing overhead and `t1` vs `tN` isolates the scaling.
//!
//! **Reading the numbers**: speedup is wall-clock `seq` ÷ `tN`. The
//! curve is only meaningful on a machine with ≥ N physical cores —
//! on a single-core container every `tN` point degenerates to `t1`
//! plus channel overhead (see EXPERIMENTS.md, "Sharded scaling").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::engine::ShardedConfig;
use flowsched_algos::indexed::DispatchKernel;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::stream::ArrivalStream;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::{simulate_stream, simulate_stream_sharded_with};
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const MACHINES: usize = 256;
const BLOCK: usize = 16;
const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Trace length: 10M tasks by default (the PR-6 acceptance trace);
/// `FLOWSCHED_BENCH_TASKS` overrides for quick local runs — but
/// medians from a shortened run are not comparable to the committed
/// baseline.
fn tasks() -> usize {
    std::env::var("FLOWSCHED_BENCH_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000_000)
}

fn trace(n: usize) -> PoissonStream {
    let cfg = PoissonStreamConfig::unit_tasks(
        MACHINES,
        n,
        MACHINES as f64 / 2.0,
        StructureKind::DisjointBlocks(BLOCK),
    );
    PoissonStream::new(&cfg, 7)
}

fn bench_sharded_scale(c: &mut Criterion) {
    let n = tasks();
    let mut g = c.benchmark_group("sharded_scale");
    let label = |suffix: &str| format!("disjoint_10m/{suffix}");

    g.bench_function(label("seq"), |b| {
        b.iter(|| {
            black_box(simulate_stream(
                trace(n),
                TieBreak::Min,
                &ReportConfig::default(),
                &mut NoopRecorder,
            ))
        })
    });

    for threads in THREAD_LADDER {
        let cfg = ShardedConfig::with_threads(threads);
        g.bench_function(label(&format!("t{threads}")), |b| {
            b.iter(|| {
                let stream = trace(n);
                let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
                black_box(simulate_stream_sharded_with(
                    stream,
                    TieBreak::Min,
                    DispatchKernel::Auto,
                    &plan,
                    &cfg,
                    &ReportConfig::default(),
                    &mut NoopRecorder,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_scale);
criterion_main!(benches);
