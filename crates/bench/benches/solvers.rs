//! Criterion benchmarks: the two max-load solvers (DESIGN.md ablation 2)
//! and the raw substrates (simplex, Dinic, Hopcroft–Karp).
//!
//! Each optimized kernel is benchmarked next to its `seed_*` baseline —
//! the pre-optimization implementation preserved in
//! `flowsched_solver::reference` (row-of-rows simplex with per-pivot
//! clones; per-probe network rebuilds; from-scratch Hopcroft–Karp per
//! budget probe). `scripts/bench_baseline.sh` records both sides into
//! `BENCH_PR1.json`, which is where the flat-tableau / persistent-probe
//! speedups are judged.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_solver::loadflow::{
    max_load_binary_search, max_load_lp, max_load_lp_with, MaxLoadProber,
};
use flowsched_solver::matching::BipartiteMatcher;
use flowsched_solver::reference;
use flowsched_solver::simplex::SimplexScratch;
use flowsched_stats::rng::seeded_rng;
use flowsched_stats::zipf::Zipf;

fn fig10_point() -> (Vec<f64>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let m = 15;
    let mut rng = seeded_rng(42);
    let w = Zipf::new(m, 1.0).shuffled(&mut rng);
    (
        w.probs().to_vec(),
        ReplicationStrategy::Overlapping.allowed_sets(3, m),
        ReplicationStrategy::Disjoint.allowed_sets(3, m),
    )
}

fn bench_load_solvers(c: &mut Criterion) {
    let (w, over, disj) = fig10_point();
    let mut g = c.benchmark_group("max_load_m15_k3_zipf1");
    // Optimized flat-tableau simplex, cold (scratch per call) and warm
    // (one arena across all iterations, the sweep-job shape).
    g.bench_function("simplex_lp_overlapping", |b| {
        b.iter(|| black_box(max_load_lp(black_box(&w), black_box(&over))))
    });
    {
        let mut scratch = SimplexScratch::new();
        g.bench_function("simplex_lp_overlapping_warm", |b| {
            b.iter(|| {
                black_box(max_load_lp_with(
                    black_box(&w),
                    black_box(&over),
                    &mut scratch,
                ))
            })
        });
    }
    g.bench_function("seed_simplex_lp_overlapping", |b| {
        b.iter(|| black_box(reference::max_load_lp(black_box(&w), black_box(&over))))
    });
    g.bench_function("simplex_lp_disjoint", |b| {
        b.iter(|| black_box(max_load_lp(black_box(&w), black_box(&disj))))
    });
    g.bench_function("seed_simplex_lp_disjoint", |b| {
        b.iter(|| black_box(reference::max_load_lp(black_box(&w), black_box(&disj))))
    });
    // Bisection on λ: persistent prober (built per call / reused) vs the
    // seed's network-rebuild-per-probe search.
    g.bench_function("maxflow_bisect_overlapping", |b| {
        b.iter(|| {
            black_box(max_load_binary_search(
                black_box(&w),
                black_box(&over),
                1e-6,
            ))
        })
    });
    {
        let mut prober = MaxLoadProber::new(&w, &over);
        g.bench_function("maxflow_bisect_overlapping_warm", |b| {
            b.iter(|| black_box(prober.max_load(1e-6)))
        });
    }
    g.bench_function("seed_maxflow_bisect_overlapping", |b| {
        b.iter(|| {
            black_box(reference::max_load_binary_search(
                black_box(&w),
                black_box(&over),
                1e-6,
            ))
        })
    });
    // A single feasibility probe, the inner-loop unit of the bisection.
    {
        let mut prober = MaxLoadProber::new(&w, &over);
        g.bench_function("feasibility_probe_warm", |b| {
            b.iter(|| black_box(prober.is_feasible(black_box(10.0))))
        });
    }
    g.bench_function("seed_feasibility_probe", |b| {
        b.iter(|| {
            black_box(reference::load_is_feasible(
                black_box(&w),
                black_box(&over),
                10.0,
            ))
        })
    });
    g.finish();
}

/// One Figure 10 `(s, permutation)` parallel job: 15 interval sizes × 2
/// replication strategies = 30 LP (15) solves on one shared tableau
/// arena. This is the unit of work `experiments::fig10::run` hands to
/// `par_map`, so its wall-clock directly scales the whole sweep
/// (paper shape: 21 bias values × 100 permutations of these jobs).
fn bench_fig10_cell(c: &mut Criterion) {
    let m = 15;
    let mut rng = seeded_rng(7);
    let w = Zipf::new(m, 1.0).shuffled(&mut rng);
    let mut g = c.benchmark_group("fig10_cell_m15");
    g.bench_function("optimized_30_lps_shared_scratch", |b| {
        b.iter(|| {
            let mut scratch = SimplexScratch::new();
            let mut acc = 0.0;
            for strategy in ReplicationStrategy::all() {
                for k in 1..=m {
                    let allowed = strategy.allowed_sets(k, m);
                    acc += max_load_lp_with(w.probs(), &allowed, &mut scratch);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("seed_30_lps", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for strategy in ReplicationStrategy::all() {
                for k in 1..=m {
                    let allowed = strategy.allowed_sets(k, m);
                    acc += reference::max_load_lp(w.probs(), &allowed);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    // A dense bipartite instance of the size the unit-OPT oracle builds.
    let (n_tasks, slots) = (600usize, 900usize);
    c.bench_function("hopcroft_karp_600x900_dense", |b| {
        b.iter(|| {
            let mut g = BipartiteMatcher::new(n_tasks, slots);
            for l in 0..n_tasks {
                for r in (l % 7)..slots.min(l % 7 + 40) {
                    g.add_edge(l, r);
                }
            }
            black_box(g.solve().size)
        })
    });
}

fn bench_unit_opt(c: &mut Criterion) {
    use flowsched_algos::offline::{optimal_unit_fmax, unit_budget_feasible};
    use flowsched_core::instance::Instance;
    use flowsched_workloads::adversary::interval::interval_adversary_instance;

    /// The seed search this PR replaced: geometric doubling + bisection,
    /// each probe a from-scratch Hopcroft–Karp solve.
    fn seed_optimal_unit_fmax(inst: &Instance) -> f64 {
        let mut hi = 1usize;
        while !unit_budget_feasible(inst, hi) {
            hi *= 2;
        }
        let mut lo = hi / 2;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if unit_budget_feasible(inst, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi as f64
    }

    let inst = interval_adversary_instance(8, 3, 10);
    c.bench_function("optimal_unit_fmax_m8_80tasks", |b| {
        b.iter(|| black_box(optimal_unit_fmax(black_box(&inst))))
    });
    c.bench_function("seed_optimal_unit_fmax_m8_80tasks", |b| {
        b.iter(|| black_box(seed_optimal_unit_fmax(black_box(&inst))))
    });
}

criterion_group!(
    benches,
    bench_load_solvers,
    bench_fig10_cell,
    bench_matching,
    bench_unit_opt
);
criterion_main!(benches);
