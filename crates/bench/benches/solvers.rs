//! Criterion benchmarks: the two max-load solvers (DESIGN.md ablation 2)
//! and the raw substrates (simplex, Dinic, Hopcroft–Karp).

use criterion::{Criterion, criterion_group, criterion_main};
use std::hint::black_box;

use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_solver::loadflow::{max_load_binary_search, max_load_lp};
use flowsched_solver::matching::BipartiteMatcher;
use flowsched_stats::rng::seeded_rng;
use flowsched_stats::zipf::Zipf;

fn fig10_point() -> (Vec<f64>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let m = 15;
    let mut rng = seeded_rng(42);
    let w = Zipf::new(m, 1.0).shuffled(&mut rng);
    (
        w.probs().to_vec(),
        ReplicationStrategy::Overlapping.allowed_sets(3, m),
        ReplicationStrategy::Disjoint.allowed_sets(3, m),
    )
}

fn bench_load_solvers(c: &mut Criterion) {
    let (w, over, disj) = fig10_point();
    let mut g = c.benchmark_group("max_load_m15_k3_zipf1");
    g.bench_function("simplex_lp_overlapping", |b| {
        b.iter(|| black_box(max_load_lp(black_box(&w), black_box(&over))))
    });
    g.bench_function("maxflow_bisect_overlapping", |b| {
        b.iter(|| black_box(max_load_binary_search(black_box(&w), black_box(&over), 1e-6)))
    });
    g.bench_function("simplex_lp_disjoint", |b| {
        b.iter(|| black_box(max_load_lp(black_box(&w), black_box(&disj))))
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    // A dense bipartite instance of the size the unit-OPT oracle builds.
    let (n_tasks, slots) = (600usize, 900usize);
    c.bench_function("hopcroft_karp_600x900_dense", |b| {
        b.iter(|| {
            let mut g = BipartiteMatcher::new(n_tasks, slots);
            for l in 0..n_tasks {
                for r in (l % 7)..slots.min(l % 7 + 40) {
                    g.add_edge(l, r);
                }
            }
            black_box(g.solve().size)
        })
    });
}

fn bench_unit_opt(c: &mut Criterion) {
    use flowsched_algos::offline::optimal_unit_fmax;
    use flowsched_workloads::adversary::interval::interval_adversary_instance;
    let inst = interval_adversary_instance(8, 3, 10);
    c.bench_function("optimal_unit_fmax_m8_80tasks", |b| {
        b.iter(|| black_box(optimal_unit_fmax(black_box(&inst))))
    });
}

criterion_group!(benches, bench_load_solvers, bench_matching, bench_unit_opt);
criterion_main!(benches);
