//! Criterion benchmarks: what telemetry costs the streaming engine.
//!
//! Three recorders over the same 20k-task Poisson stream:
//!
//! - `noop` — the `NoopRecorder` baseline; `const ENABLED = false`
//!   means every hook folds away, so this must match the uninstrumented
//!   `stream_direct` row of `benches/streaming.rs` (and the seed
//!   baselines in `BENCH_PR3.json`) within noise.
//! - `memory` — the aggregate `MemoryRecorder`: counters, flow
//!   histogram, busy-time vector, bounded event ring.
//! - `windowed` — `Tee(MemoryRecorder, WindowedMetrics)`, the full
//!   telemetry pipeline the `timeline` binary runs.
//!
//! The deltas between rows are the advertised overhead of each layer;
//! `scripts/bench_gate.sh` watches the `noop` row against the recorded
//! baselines so instrumentation can never tax uninstrumented runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::tiebreak::TieBreak;
use flowsched_obs::{MemoryRecorder, NoopRecorder, ObsConfig, Tee, WindowConfig, WindowedMetrics};
use flowsched_sim::driver::simulate_stream;
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

fn poisson_config(n: usize) -> PoissonStreamConfig {
    PoissonStreamConfig {
        m: 15,
        n,
        structure: StructureKind::RingFixed(3),
        lambda: 7.5,
        unit: false,
        ptime_steps: 6,
    }
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let cfg = poisson_config(20_000);
    let report = ReportConfig::default();
    let mut g = c.benchmark_group("telemetry_20k_ring3");
    g.bench_function("noop", |b| {
        b.iter(|| {
            black_box(simulate_stream(
                PoissonStream::new(black_box(&cfg), 11),
                TieBreak::Min,
                &report,
                &mut NoopRecorder,
            ))
        })
    });
    g.bench_function("memory", |b| {
        b.iter(|| {
            let mut rec = MemoryRecorder::new(&ObsConfig::defaults(cfg.m));
            black_box(simulate_stream(
                PoissonStream::new(black_box(&cfg), 11),
                TieBreak::Min,
                &report,
                &mut rec,
            ));
            black_box(rec)
        })
    });
    g.bench_function("windowed", |b| {
        b.iter(|| {
            let mut rec = Tee(
                MemoryRecorder::new(&ObsConfig::defaults(cfg.m)),
                WindowedMetrics::new(WindowConfig::defaults(cfg.m, 16.0)),
            );
            black_box(simulate_stream(
                PoissonStream::new(black_box(&cfg), 11),
                TieBreak::Min,
                &report,
                &mut rec,
            ));
            black_box(rec)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
