//! Criterion benchmarks: the offline reference solvers (exact B&B,
//! preemptive max-flow optimum, local search) and the model substrates
//! (structure classification, Zipf sampling).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::exact::exact_fmax;
use flowsched_algos::localsearch::eft_plus_local_search;
use flowsched_algos::preemptive::optimal_preemptive_fmax;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::structure;
use flowsched_stats::rng::seeded_rng;
use flowsched_stats::zipf::Zipf;
use flowsched_workloads::random::{random_instance, RandomInstanceConfig, StructureKind};

fn bench_exact_solvers(c: &mut Criterion) {
    let inst = random_instance(
        &RandomInstanceConfig {
            m: 4,
            n: 14,
            structure: StructureKind::IntervalFixed(2),
            release_span: 3,
            unit: false,
            ptime_steps: 6,
        },
        7,
    );
    let mut g = c.benchmark_group("offline_reference_n14_m4");
    g.bench_function("exact_branch_and_bound", |b| {
        b.iter(|| black_box(exact_fmax(black_box(&inst), u64::MAX)))
    });
    g.bench_function("preemptive_maxflow_optimum", |b| {
        b.iter(|| black_box(optimal_preemptive_fmax(black_box(&inst), 1e-4)))
    });
    g.bench_function("eft_plus_local_search", |b| {
        b.iter(|| black_box(eft_plus_local_search(black_box(&inst), TieBreak::Min, 100)))
    });
    g.finish();
}

fn bench_structure_classification(c: &mut Criterion) {
    let inst = random_instance(
        &RandomInstanceConfig::unit_tasks(15, 5_000, StructureKind::RingFixed(3)),
        3,
    );
    c.bench_function("classify_5k_sets_m15", |b| {
        b.iter(|| black_box(structure::classify(black_box(inst.sets()), 15)))
    });
}

fn bench_zipf_sampling(c: &mut Criterion) {
    let z = Zipf::new(15, 1.0);
    c.bench_function("zipf_sample_m15", |b| {
        let mut rng = seeded_rng(5);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_exact_solvers,
    bench_structure_classification,
    bench_zipf_sampling
);
criterion_main!(benches);
