//! Criterion benchmarks: pipeline-probe overhead on the sharded engine
//! (recorded into `BENCH_PR9.json`).
//!
//! Same cluster-partitioned Poisson trace as `benches/sharded.rs`
//! (m = 256, 16 disjoint blocks, λ = m/2, unit service). Four points:
//!
//! - `noop_t4` / `probed_t4` — the 4-worker sharded engine with the
//!   disabled [`NoopPipeline`] vs a live [`PipelineMetrics`] probe;
//! - `noop_inline` / `probed_inline` — the inline (single-worker) path,
//!   where spans are recorded per task instead of per batch and the
//!   probe is therefore at its most expensive relative to the work.
//!
//! The zero-cost contract says `noop_*` must match the pre-PR-9 engine:
//! `NoopPipeline::ENABLED = false` folds every `Instant::now()` away,
//! so the probed signature costs nothing unless a live probe is passed.
//! `scripts/bench_gate.sh` holds `noop_*` to the committed baseline;
//! `probed_*` quantifies the opt-in cost of profiling (clock reads are
//! per *batch* on the threaded path, so it stays small there).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use flowsched_algos::engine::{
    run_policy_sharded, run_policy_sharded_probed, NullSink, ShardedConfig,
};
use flowsched_algos::registry::PolicySpec;
use flowsched_core::stream::ArrivalStream;
use flowsched_obs::{NoopRecorder, PipelineMetrics};
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const MACHINES: usize = 256;
const BLOCK: usize = 16;

/// Trace length: 1M tasks by default; `FLOWSCHED_BENCH_TASKS` overrides
/// for quick local runs — medians from a shortened run are not
/// comparable to the committed baseline.
fn tasks() -> usize {
    std::env::var("FLOWSCHED_BENCH_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1_000_000)
}

fn trace(n: usize) -> PoissonStream {
    let cfg = PoissonStreamConfig::unit_tasks(
        MACHINES,
        n,
        MACHINES as f64 / 2.0,
        StructureKind::DisjointBlocks(BLOCK),
    );
    PoissonStream::new(&cfg, 7)
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let n = tasks();
    let spec: PolicySpec = "eft:min".parse().unwrap();
    let mut g = c.benchmark_group("pipeline");

    for (suffix, threads) in [("t4", 4usize), ("inline", 1)] {
        let cfg = ShardedConfig::with_threads(threads);
        g.bench_function(format!("disjoint_1m/noop_{suffix}"), |b| {
            b.iter(|| {
                let stream = trace(n);
                let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
                run_policy_sharded(
                    stream,
                    &spec,
                    &plan,
                    &cfg,
                    &mut NoopRecorder,
                    &mut black_box(NullSink),
                )
            })
        });
        g.bench_function(format!("disjoint_1m/probed_{suffix}"), |b| {
            b.iter(|| {
                let stream = trace(n);
                let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
                let metrics = PipelineMetrics::new();
                run_policy_sharded_probed(
                    stream,
                    &spec,
                    &plan,
                    &cfg,
                    &mut NoopRecorder,
                    &mut black_box(NullSink),
                    metrics.clone(),
                );
                black_box(metrics.stage(flowsched_obs::Stage::Dispatch).spans)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline_overhead);
criterion_main!(benches);
