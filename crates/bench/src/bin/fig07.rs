//! Regenerates the paper's Figure 7 — the Theorem 10 construction:
//! `δ/ε` small tasks injected before each batch of regular tasks, forcing
//! EFT under *any* tie-break to replay EFT-Min's losing trajectory.

use flowsched_algos::eft::EftState;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_workloads::adversary::interval::run_interval_adversary;
use flowsched_workloads::adversary::padded::{padded_interval_adversary, DELTA, EPSILON};

fn main() {
    let (m, k) = (6, 3);
    println!("Figure 7 / Theorem 10 — small-task padding (δ = {DELTA}, ε = {EPSILON})\n");

    // Show the staggered completions Property 1 enforces after step 0.
    let mut algo = EftState::new(m, TieBreak::Rand { seed: 7 });
    let out = padded_interval_adversary(&mut algo, k, 1);
    println!("small tasks of step 0 and their completions (machine pinned to t + i·δ):");
    for (id, task, set) in out.instance.iter() {
        if task.ptime < 1.0 {
            let a = out.schedule.assignment(id);
            println!(
                "  {id}: p = {:>10.7} set = {:<13} → {} completes {:.7}",
                task.ptime,
                set.to_string(),
                a.machine,
                a.start + task.ptime
            );
        }
    }

    // The punchline: every tie-break now reaches m − k + 1.
    println!(
        "\nFmax on the padded stream after {} steps (target m−k+1 = {}):",
        m * m,
        m - k + 1
    );
    for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 99 }] {
        let mut algo = EftState::new(m, tb);
        let padded = padded_interval_adversary(&mut algo, k, m * m);
        let mut algo = EftState::new(m, tb);
        let plain = run_interval_adversary(&mut algo, k, m * m);
        println!(
            "  {tb:<8}  padded: {:>7.4}   unpadded: {:>4}",
            padded.fmax(),
            plain.fmax()
        );
    }
    println!("\n(unpadded, only EFT-Min is trapped; padded, all policies are)");
}
