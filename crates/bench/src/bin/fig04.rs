//! Regenerates the paper's Figures 4–6 — the schedule profile `w_t` of
//! EFT-Min under the Theorem 8 adversary converging to the stable profile
//! `w_τ(j) = min(m−j, m−k)`, and the plateau propagation along the way.

use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::profile::{compare_profiles, stable_profile};
use flowsched_sim::driver::profile_trace;
use flowsched_workloads::adversary::interval::interval_adversary_instance;

fn main() {
    let (m, k) = (6, 3);
    let rounds = m * m;
    let inst = interval_adversary_instance(m, k, rounds);
    let times: Vec<f64> = (0..rounds).map(|t| t as f64).collect();
    let trace = profile_trace(&inst, TieBreak::Min, &times);
    let target = stable_profile(m, k);

    println!("Figures 4–6 — EFT-Min profile w_t vs stable profile w_τ (m = {m}, k = {k})");
    println!("w_τ = {target:?}\n");
    println!("{:>4}  {:<30} relation to w_τ", "t", "w_t");
    let mut converged_at = None;
    for (t, w) in trace.iter().enumerate() {
        let rel = match compare_profiles(w, &target) {
            Some(std::cmp::Ordering::Equal) => "= w_τ (stable)",
            Some(std::cmp::Ordering::Less) => "< w_τ (behind)",
            Some(std::cmp::Ordering::Greater) => "> w_τ (ahead)",
            None => "incomparable",
        };
        if converged_at.is_none() {
            println!("{t:>4}  {:<30} {rel}", format!("{w:?}"));
        }
        if converged_at.is_none() && compare_profiles(w, &target) == Some(std::cmp::Ordering::Equal)
        {
            converged_at = Some(t);
        }
    }
    match converged_at {
        Some(t) => println!(
            "\nprofile reached w_τ at t = {t}; thereafter the k trailing type-1 tasks\n\
             stack on the first machines and some task flows m−k+1 = {}",
            m - k + 1
        ),
        None => println!("\nprofile did not converge within {rounds} rounds"),
    }
}
