//! Instrumented simulation run: the per-run observability summary next
//! to the usual `SimReport`.
//!
//! Runs the Section 7.4 key-value-store workload through
//! `simulate_with` and a `MemoryRecorder`, then probes the
//! configuration's theoretical maximum load so the solver probe
//! aggregates fire too. `--csv` switches the human-readable summary to
//! the machine-readable JSON snapshot (the flag doubles as the
//! "machine output" switch for this binary; there is no tabular form).
//!
//! ```text
//! cargo run --release -p flowsched-bench --bin obs [--paper] [--seed <u64>] [--csv]
//! ```

use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_obs::{render_summary, MemoryRecorder, ObsConfig};
use flowsched_sim::driver::{simulate_with, SimConfig};
use flowsched_solver::loadflow::MaxLoadProber;
use flowsched_stats::zipf::BiasCase;
use rand::SeedableRng;

fn main() {
    let args = flowsched_bench::parse_args();
    let scale = args.scale;
    let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed);

    // The paper's realistic cluster: k = 3 ring replication, biased
    // popularity (s = 1), at 80% of each machine's service rate.
    let config = ClusterConfig {
        m: scale.m,
        k: scale.k,
        strategy: ReplicationStrategy::Overlapping,
        s: 1.0,
        case: BiasCase::Shuffled,
    };
    let cluster = KvCluster::new(config, &mut rng);
    let mut rec = MemoryRecorder::new(&ObsConfig::defaults(scale.m));

    // Solver probes first: the configuration's theoretical maximum load
    // (LP (15)) via binary-searched max-flow feasibility, then simulate
    // at 80% of it — a loaded but stable regime.
    let weights = cluster.popularity().probs().to_vec();
    let allowed = cluster.allowed_sets();
    let mut prober = MaxLoadProber::new(&weights, &allowed);
    let max_load = prober.max_load_recorded(1e-9, &mut rec);
    let lambda = 0.8 * max_load;
    let inst = cluster.requests(scale.tasks, lambda, &mut rng);

    let (schedule, report) = simulate_with(&inst, &SimConfig::default(), &mut rec);
    schedule
        .validate(&inst)
        .expect("simulated schedule is valid");

    if args.csv {
        println!("{}", rec.snapshot().to_json());
        return;
    }

    println!(
        "obs: instrumented EFT run — m={}, k={}, n={}, λ={lambda:.2}, seed={:#x}",
        scale.m, scale.k, scale.tasks, scale.seed
    );
    println!(
        "SimReport: fmax={:.4} mean_flow={:.4} p50={:.4} p95={:.4} p99={:.4} drift={:.3}{}",
        report.fmax,
        report.mean_flow,
        report.p50,
        report.p95,
        report.p99,
        report.drift,
        if report.looks_saturated() {
            "  [saturated]"
        } else {
            ""
        },
    );
    println!("max load λ* = {max_load:.4} (binary-searched max-flow)");
    print!("{}", render_summary(&rec));
}
