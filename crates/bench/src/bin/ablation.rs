//! Tie-break × replication-strategy ablation (DESIGN.md ablation 1).

use flowsched_experiments::ablation;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = ablation::run(&args.scale);
    print!("{}", ablation::render(&rows));
}
