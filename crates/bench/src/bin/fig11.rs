//! Regenerates the paper's Figure 11 (Fmax vs average load).

use flowsched_experiments::fig11;

fn main() {
    let args = flowsched_bench::parse_args();
    let out = fig11::run(&args.scale);
    print!("{}", fig11::render(&out));
}
