//! Regenerates the paper's Figure 11 (Fmax vs average load).
//!
//! With `--timeline <dir>` the sweep runs instrumented: every curve job
//! records into a per-job telemetry shard, the shards merge into one
//! snapshot (identical to a sequential run — see
//! `fig11::run_instrumented`), and the directory receives the merged
//! windowed time series (`windows.csv`), Prometheus aggregates
//! (`metrics.prom`), the JSON snapshot (`snapshot.json`), and a Chrome
//! trace of the retained span tail (`trace.json`; see EXPERIMENTS.md
//! for how to read it in Perfetto — jobs are concatenated, so machine
//! tracks interleave spans from different load points).

use flowsched_experiments::fig11;
use flowsched_obs::{
    chrome_trace, machine_spans, task_spans, windows_to_csv, ObsConfig, WindowConfig,
};

fn main() {
    let args = flowsched_bench::parse_args();
    let Some(dir) = args.timeline else {
        let out = fig11::run(&args.scale);
        print!("{}", fig11::render(&out));
        return;
    };

    let scale = args.scale;
    let mut obs = ObsConfig::defaults(scale.m);
    // Room for the full span record of a quick sweep; the paper scale
    // keeps the most recent tail and says so in the summary.
    obs.trace_capacity = obs.trace_capacity.max(1 << 18);
    let window = WindowConfig::defaults(scale.m, 8.0);
    let telemetry = fig11::run_instrumented(&scale, &obs, &window);

    let rec = &telemetry.recorder;
    let prom = flowsched_obs::prometheus_text(rec);
    let tasks = task_spans(rec.trace().iter());
    let machines = machine_spans(rec.trace().iter(), rec.makespan_seen());

    std::fs::create_dir_all(&dir).expect("create timeline output directory");
    for (name, contents) in [
        ("trace.json", chrome_trace(&tasks, &machines)),
        ("metrics.prom", prom),
        ("windows.csv", windows_to_csv(&telemetry.windows)),
        ("snapshot.json", rec.snapshot().to_json()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write timeline export");
        eprintln!("wrote {}", path.display());
    }

    print!("{}", fig11::render(&telemetry.output));
}
