//! Immediate-dispatch rule comparison: adversarial vs average behaviour.

use flowsched_experiments::policies;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = policies::run(&args.scale);
    print!("{}", policies::render(&rows, &args.scale));
}
