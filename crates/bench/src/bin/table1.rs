//! Regenerates the paper's Table 1 (measured FIFO/EFT competitiveness).

use flowsched_experiments::table1;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = table1::run(&args.scale);
    print!("{}", table1::render(&rows));
}
