//! Regenerates the paper's Figure 1 — the reduction graph of processing
//! set structures — and demonstrates each edge constructively on concrete
//! families, including the nested→interval machine reordering.

use flowsched_core::procset::ProcSet;
use flowsched_core::structure;

fn family(label: &str, fam: &[ProcSet], m: usize) {
    let rep = structure::classify(fam, m);
    println!(
        "{label:<34} inclusive={:<5} disjoint={:<5} nested={:<5} interval={:<5} → {}",
        rep.inclusive,
        rep.disjoint,
        rep.nested,
        rep.interval || rep.ring_interval,
        rep.most_specific()
    );
}

fn main() {
    println!("Figure 1 — reduction graph of processing set structures\n");
    println!("  inclusive ─┐");
    println!("             ├─> nested ──> interval ──> general");
    println!("  disjoint ──┘\n");

    let m = 6;
    family(
        "inclusive chain {M1}⊂{M1,M2}⊂M",
        &[
            ProcSet::new(vec![0]),
            ProcSet::new(vec![0, 1]),
            ProcSet::full(m),
        ],
        m,
    );
    family(
        "disjoint blocks {M1,M2},{M3,M4}",
        &[ProcSet::interval(0, 1), ProcSet::interval(2, 3)],
        m,
    );
    family(
        "nested laminar family",
        &[
            ProcSet::interval(0, 3),
            ProcSet::interval(0, 1),
            ProcSet::interval(2, 3),
            ProcSet::new(vec![0]),
        ],
        m,
    );
    family(
        "overlapping ring intervals",
        &(0..m)
            .map(|u| ProcSet::ring_interval(u, 3, m))
            .collect::<Vec<_>>(),
        m,
    );
    family(
        "general family {M1,M3},{M2,M3}",
        &[ProcSet::new(vec![0, 2]), ProcSet::new(vec![1, 2])],
        m,
    );

    // Constructive edge nested → interval: reorder machines so a laminar
    // family becomes contiguous intervals.
    println!("\nnested → interval (constructive): scattered laminar family");
    let fam = [
        ProcSet::new(vec![0, 3, 5]),
        ProcSet::new(vec![0, 5]),
        ProcSet::new(vec![1, 2]),
        ProcSet::new(vec![2]),
    ];
    println!(
        "  before: {:?} (interval family: {})",
        fam.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        structure::is_interval_family(&fam)
    );
    let perm = structure::nested_to_interval_order(&fam, m).expect("family is laminar");
    let renamed = structure::apply_machine_permutation(&fam, &perm);
    println!("  permutation (old→new): {perm:?}");
    println!(
        "  after:  {:?} (interval family: {})",
        renamed.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        structure::is_interval_family(&renamed)
    );
}
