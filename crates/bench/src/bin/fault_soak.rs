//! Fault-injection soak run (CI stage): dispatches a cluster-partitioned
//! million-task Poisson trace through `run_immediate_faulty_sharded`
//! under a 1% crash-rate fault plan and prints an FNV-1a hash of the
//! full schedule plus the run's peak-RSS growth.
//!
//! `ci_check.sh` runs this twice — `FLOWSCHED_THREADS=1` and `=4` — and
//! asserts the printed `schedule_hash` lines are identical, pinning the
//! faulty engine's thread-count invariance end-to-end on a real workload
//! (the proptests in `tests/fault_injection.rs` pin it on small shapes).
//! The bin itself asserts bounded memory: the faulty stream's deferral
//! heap and the fault plan must not grow the footprint past 32 MiB on a
//! workload whose materialized form would be ≳ 80 MiB (the
//! `tests/streaming_memory.rs` VmHWM methodology).

use flowsched_algos::faulty::run_immediate_faulty_sharded;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_algos::ShardedConfig;
use flowsched_core::schedule::Assignment;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_obs::NoopRecorder;
use flowsched_workloads::faults::{random_fault_plan, FaultPlanConfig};
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

use flowsched_algos::engine::DispatchSink;

const MACHINES: usize = 256;
const BLOCK: usize = 16;
const TASKS: usize = 1_000_000;
const CRASH_RATE: f64 = 0.01;
const MEM_BOUND_KIB: u64 = 32 * 1024;

/// FNV-1a over the dispatch stream: order-sensitive, so the hash also
/// certifies that commits arrive in arrival order even when crashes
/// re-queue stranded tasks.
struct HashSink {
    hash: u64,
    count: u64,
}

impl HashSink {
    fn new() -> Self {
        HashSink {
            hash: 0xcbf2_9ce4_8422_2325,
            count: 0,
        }
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl DispatchSink for HashSink {
    fn accept(&mut self, seq: u64, task: Task, a: Assignment) {
        self.fold(&seq.to_le_bytes());
        self.fold(&task.release.to_bits().to_le_bytes());
        self.fold(&task.ptime.to_bits().to_le_bytes());
        self.fold(&(a.machine.index() as u64).to_le_bytes());
        self.fold(&a.start.to_bits().to_le_bytes());
        self.count += 1;
    }
}

/// Peak resident set size of this process, in kibibytes, from
/// `/proc/self/status` (`VmHWM` is a monotonic high-water mark).
#[cfg(target_os = "linux")]
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs available on linux");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("VmHWM line present")
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kib() -> u64 {
    0
}

fn main() {
    let cfg = PoissonStreamConfig::unit_tasks(
        MACHINES,
        TASKS,
        MACHINES as f64 / 2.0,
        StructureKind::DisjointBlocks(BLOCK),
    );
    // Arrivals span ≈ n / λ ≈ 7 800 time units; crashes cover the whole
    // trace. 1% per machine per unit time ≈ 80 outages per machine.
    let fcfg = FaultPlanConfig::crashes(8_000.0, CRASH_RATE, 2.0);
    let plan = random_fault_plan(MACHINES, &fcfg, 0xFA17);
    let n_outages: usize = (0..MACHINES).map(|j| plan.faults(j).outages().len()).sum();

    let stream = PoissonStream::new(&cfg, 0x5AAD);
    let shard_plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
    let threads = flowsched_parallel::default_threads();
    let mut sink = HashSink::new();

    let before = peak_rss_kib();
    run_immediate_faulty_sharded(
        stream,
        &plan,
        TieBreak::Min,
        &shard_plan,
        &ShardedConfig::with_threads(threads),
        &mut NoopRecorder,
        &mut sink,
    );
    let after = peak_rss_kib();

    assert_eq!(sink.count, TASKS as u64, "tasks went missing");
    let grown_kib = after.saturating_sub(before);
    assert!(
        !cfg!(target_os = "linux") || grown_kib < MEM_BOUND_KIB,
        "fault soak grew VmHWM by {grown_kib} KiB (bound {MEM_BOUND_KIB} KiB)"
    );
    println!(
        "fault_soak: m = {MACHINES}, n = {TASKS}, outages = {n_outages}, \
         shards = {}, threads = {threads}, rss_growth = {grown_kib} KiB",
        shard_plan.shards()
    );
    println!("schedule_hash=0x{:016x}", sink.hash);
}
