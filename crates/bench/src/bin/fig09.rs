//! Regenerates the paper's Figure 9 — the two replication strategies on
//! m = 6 machines with k = 3: every owner's replica set under the
//! overlapping (ring) and disjoint constructions.

use flowsched_kvstore::replication::ReplicationStrategy;

fn main() {
    let (m, k) = (6usize, 3usize);
    println!("Figure 9 — replication strategies, m = {m}, k = {k}\n");
    println!(
        "{:<8} {:<18} {:<18}",
        "owner", "overlapping I_k(u)", "disjoint I_k(u)"
    );
    println!("{}", "-".repeat(46));
    for u in 0..m {
        let over = ReplicationStrategy::Overlapping.replica_set(u, k, m);
        let disj = ReplicationStrategy::Disjoint.replica_set(u, k, m);
        println!(
            "M{:<7} {:<18} {:<18}",
            u + 1,
            over.to_string(),
            disj.to_string()
        );
    }
    println!(
        "\nExample (paper): a task feasible on M3 only becomes feasible on\n\
         {} (overlapping) or {} (disjoint).",
        ReplicationStrategy::Overlapping.replica_set(2, k, m),
        ReplicationStrategy::Disjoint.replica_set(2, k, m)
    );
}
