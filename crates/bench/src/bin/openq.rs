//! Open-question exploration: score replication strategies (including the
//! staggered-blocks candidate) on tolerable load, average flow time and
//! adversarial exposure.
//!
//! With `--timeline <dir>` the half-load axis is additionally re-run
//! with windowed telemetry, writing one `windows_<strategy>.csv` time
//! series per strategy — the "when do queues build" view behind the
//! `Fmax @50%` column.

use flowsched_experiments::openq;
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_obs::{windows_to_csv, WindowConfig};

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = openq::run(&args.scale);
    print!("{}", openq::render(&rows));

    let Some(dir) = args.timeline else { return };
    std::fs::create_dir_all(&dir).expect("create timeline output directory");
    let window = WindowConfig::defaults(args.scale.m, 8.0);
    for strategy in ReplicationStrategy::extended() {
        let series = openq::half_load_timeseries(&args.scale, strategy, &window);
        let path = dir.join(format!(
            "windows_{}.csv",
            strategy.to_string().to_lowercase()
        ));
        std::fs::write(&path, windows_to_csv(&series)).expect("write timeline export");
        eprintln!("wrote {}", path.display());
    }
}
