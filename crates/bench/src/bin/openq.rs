//! Open-question exploration: score replication strategies (including the
//! staggered-blocks candidate) on tolerable load, average flow time and
//! adversarial exposure.

use flowsched_experiments::openq;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = openq::run(&args.scale);
    print!("{}", openq::render(&rows));
}
