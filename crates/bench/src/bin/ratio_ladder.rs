//! Competitive-ratio ladder (CI stage): runs every registry policy of
//! the ladder over its adversarial stream, prints the table, and
//! asserts each measured ratio stays inside the envelope recorded in
//! `EXPERIMENTS.md` §"Competitive-ratio ladder". Any drift in a
//! dispatcher, oracle, or stream moves a ratio and fails the run.

use flowsched_experiments::ratio;

/// `(family, policy, envelope)` — the recorded upper envelopes. The
/// measured values are deterministic (6.0 / 3.0 / 1.0 / 4.0 / 3.0 at
/// every scale), so the margin only absorbs float noise.
const ENVELOPES: &[(&str, &str, f64)] = &[
    ("interval-adversary", "eft:min", 6.05),
    ("weighted-burst", "eft:min", 3.05),
    ("weighted-burst", "weft@8:min", 1.05),
    ("setup-thrash", "setup-obl@2:min", 4.05),
    ("setup-thrash", "setup@2:min", 3.05),
];

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = ratio::run(&args.scale);
    print!("{}", ratio::render(&rows));

    let mut checked = 0usize;
    for &(family, policy, envelope) in ENVELOPES {
        let row = rows
            .iter()
            .find(|r| r.family == family && r.policy == policy)
            .unwrap_or_else(|| panic!("ladder lost its {family}/{policy} rung"));
        assert!(
            row.ratio <= envelope,
            "{family}/{policy}: measured ratio {} escaped the envelope {envelope}",
            row.ratio
        );
        checked += 1;
    }
    assert_eq!(checked, rows.len(), "an unenveloped rung joined the ladder");

    // The frontier policies must actually beat their oblivious
    // baselines — the envelopes alone would accept regressions to
    // equality.
    let ratio_of = |family: &str, policy: &str| {
        rows.iter()
            .find(|r| r.family == family && r.policy == policy)
            .expect("checked above")
            .ratio
    };
    assert!(
        ratio_of("weighted-burst", "weft@8:min") < ratio_of("weighted-burst", "eft:min"),
        "weighted-EFT stopped beating weight-oblivious EFT"
    );
    assert!(
        ratio_of("setup-thrash", "setup@2:min") < ratio_of("setup-thrash", "setup-obl@2:min"),
        "setup-aware dispatch stopped beating the oblivious baseline"
    );
    println!("\nratio_ladder: all {checked} rungs inside their envelopes");
}
