//! Regenerates the paper's Figure 2 — the Theorem 5 nested adversary in
//! action: halving machine intervals, interval-wide `G₁` batches and
//! per-machine `G₂` streams, and the uncompleted-task count the chosen
//! subinterval accumulates.

use flowsched_algos::eft::EftState;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::gantt::{render, GanttOptions};
use flowsched_workloads::adversary::nested::nested_adversary;

fn main() {
    let m = 8;
    let mut algo = EftState::new(m, TieBreak::Min);
    let out = nested_adversary(&mut algo);
    out.validate().expect("valid adversary schedule");

    let levels = (m as f64).log2() as usize;
    let phase = levels + 2;
    println!(
        "Figure 2 — Theorem 5 nested adversary vs EFT-Min, m = {m} \
         (phase length F = log2(m)+2 = {phase})\n"
    );
    let art = render(
        &out.schedule,
        &out.instance,
        &GanttOptions {
            resolution: 1.0,
            until: None,
            numbered: false,
        },
    );
    println!("{art}");
    println!(
        "tasks: {}   Fmax: {}   paper bound: any online algorithm suffers \
         Fmax ≥ log2(m)+2 = {} while OPT ≤ 3",
        out.instance.len(),
        out.fmax(),
        levels + 2
    );
    println!("achieved ratio vs OPT = 3: {:.2}", out.ratio());
}
