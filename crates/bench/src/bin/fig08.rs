//! Regenerates the paper's Figure 8 (load distributions λ·P(E_j)).

use flowsched_experiments::fig08;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = fig08::run(args.scale.seed);
    print!("{}", fig08::render(&rows));
}
