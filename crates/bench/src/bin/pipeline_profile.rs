//! Pipeline wall-clock profile: where does a sharded dispatch cycle
//! actually spend its nanoseconds?
//!
//! ```text
//! cargo run --release -p flowsched-bench --bin pipeline_profile -- \
//!     [--tasks <n>] [--threads <t>] [--seed <u64>]
//! ```
//!
//! Runs the same cluster-partitioned Poisson trace twice:
//!
//! 1. sequentially (`run_policy`, no transport at all) — the floor any
//!    routing overhead is measured against;
//! 2. sharded with a live [`PipelineMetrics`] probe
//!    (`run_policy_sharded_probed`) — every stage span, queue gauge,
//!    and stall counter of the transport.
//!
//! It prints both runs' wall-clock, verifies the two schedules hash
//! identically (the probe must never perturb dispatch), and renders the
//! per-stage table: spans, total ms, ns/span, **ns/task** — the last
//! column is the per-task routing tax of each stage, the measurement
//! ROADMAP item 1 asks for. `dequeue_wait`/`enqueue_wait` rows are pure
//! waits (0 items), so read their cost from `total_ms` against the
//! run's wall-clock instead.
//!
//! The dispatch policy is the registry string in `FLOWSCHED_POLICY`
//! (default `eft:min`). `ci_check.sh` runs a bounded `--tasks` smoke of
//! this binary; `scripts/bench_gate.sh` separately gates the
//! noop-probe overhead (`benches/pipeline.rs`).

use std::time::Instant;

use flowsched_algos::engine::{run_policy, run_policy_sharded_probed, DispatchSink, ShardedConfig};
use flowsched_algos::registry::PolicySpec;
use flowsched_core::schedule::Assignment;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_obs::{NoopRecorder, PipelineMetrics};
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const MACHINES: usize = 256;
const BLOCK: usize = 16;

/// FNV-1a over the dispatch stream, same folding as `sharded_smoke`:
/// order-sensitive, so equal hashes certify identical schedules in
/// identical commit order.
struct HashSink {
    hash: u64,
    count: u64,
}

impl HashSink {
    fn new() -> Self {
        HashSink {
            hash: 0xcbf2_9ce4_8422_2325,
            count: 0,
        }
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl DispatchSink for HashSink {
    fn accept(&mut self, seq: u64, task: Task, a: Assignment) {
        self.fold(&seq.to_le_bytes());
        self.fold(&task.release.to_bits().to_le_bytes());
        self.fold(&task.ptime.to_bits().to_le_bytes());
        self.fold(&(a.machine.index() as u64).to_le_bytes());
        self.fold(&a.start.to_bits().to_le_bytes());
        self.count += 1;
    }
}

fn main() {
    let mut tasks: usize = 500_000;
    let mut threads = flowsched_parallel::default_threads();
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tasks" => {
                let v = it.next().expect("--tasks requires a count");
                tasks = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--tasks takes a usize, got {v:?}"));
            }
            "--threads" => {
                let v = it.next().expect("--threads requires a count");
                threads = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--threads takes a usize, got {v:?}"));
            }
            other => rest.push(other.to_string()),
        }
    }
    let args = flowsched_bench::parse_from(rest);
    let seed = args.scale.seed;

    let policy = std::env::var("FLOWSCHED_POLICY").unwrap_or_else(|_| "eft:min".into());
    let spec: PolicySpec = policy
        .parse()
        .unwrap_or_else(|e| panic!("FLOWSCHED_POLICY: {e}"));
    let cfg = PoissonStreamConfig::unit_tasks(
        MACHINES,
        tasks,
        MACHINES as f64 / 2.0,
        StructureKind::DisjointBlocks(BLOCK),
    );

    // Pass 1: the sequential engine — the no-transport floor.
    let mut seq_sink = HashSink::new();
    let t0 = Instant::now();
    run_policy(
        PoissonStream::new(&cfg, seed),
        &spec,
        &mut NoopRecorder,
        &mut seq_sink,
    );
    let seq_elapsed = t0.elapsed();

    // Pass 2: the sharded engine with the live probe.
    let stream = PoissonStream::new(&cfg, seed);
    let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
    let shards = plan.shards();
    let metrics = PipelineMetrics::new();
    let mut shard_sink = HashSink::new();
    let t0 = Instant::now();
    run_policy_sharded_probed(
        stream,
        &spec,
        &plan,
        &ShardedConfig::with_threads(threads),
        &mut NoopRecorder,
        &mut shard_sink,
        metrics.clone(),
    );
    let shard_elapsed = t0.elapsed();

    assert_eq!(seq_sink.count, tasks as u64, "sequential run lost tasks");
    assert_eq!(shard_sink.count, tasks as u64, "sharded run lost tasks");
    assert_eq!(
        seq_sink.hash, shard_sink.hash,
        "probed sharded schedule diverged from the sequential engine"
    );

    println!(
        "pipeline_profile: m = {MACHINES}, n = {tasks}, shards = {shards}, \
         threads = {threads}, policy = {spec}, seed = {seed:#x}"
    );
    println!(
        "schedule_hash=0x{:016x} (sequential == sharded)",
        seq_sink.hash
    );
    println!(
        "sequential: {:.3} ms ({:.1} ns/task)",
        seq_elapsed.as_secs_f64() * 1e3,
        seq_elapsed.as_nanos() as f64 / tasks as f64
    );
    println!(
        "sharded:    {:.3} ms ({:.1} ns/task)",
        shard_elapsed.as_secs_f64() * 1e3,
        shard_elapsed.as_nanos() as f64 / tasks as f64
    );
    println!("per-stage wall-clock breakdown (router thread + workers):");
    print!("{}", metrics.render_table());
}
