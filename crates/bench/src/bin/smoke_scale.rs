//! Large-m smoke run for the indexed dispatch kernel (CI stage).
//!
//! Streams 200,000 tasks over 100,000 machines — the fig11 shape pushed
//! three orders of magnitude past the paper's m ≈ 10² — once per
//! structured family that the compact-set / segment-tree path serves
//! (wide intervals, inclusive prefixes, disjoint blocks, replication
//! rings). `DispatchKernel::Auto` selects the indexed kernel at this
//! scale; the run exists to prove the whole pipeline (generator →
//! compact `ProcSetRef` views → segment-tree dispatch → report fold)
//! completes in seconds and constant memory where the scalar scan would
//! need ~10¹⁰ machine visits. Prints one line per family and fails
//! loudly (panics) if any report comes back degenerate.

use std::time::Instant;

use flowsched_algos::tiebreak::TieBreak;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::simulate_stream;
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const M: usize = 100_000;
const N: usize = 200_000;

fn main() {
    let families = [
        ("interval_m/2", StructureKind::IntervalFixed(M / 2)),
        ("inclusive_prefix", StructureKind::InclusivePrefix),
        ("disjoint_blocks", StructureKind::DisjointBlocks(M / 100)),
        ("ring_k3", StructureKind::RingFixed(3)),
    ];
    println!("smoke_scale: m = {M}, n = {N} tasks per family");
    for (name, structure) in families {
        let cfg = PoissonStreamConfig {
            m: M,
            n: N,
            structure,
            lambda: M as f64 / 2.0,
            unit: true,
            ptime_steps: 4,
        };
        let start = Instant::now();
        let report = simulate_stream(
            PoissonStream::new(&cfg, 0x5CA1E),
            TieBreak::Min,
            &ReportConfig::default(),
            &mut NoopRecorder,
        );
        let elapsed = start.elapsed();
        assert_eq!(report.n_measured, N, "{name}: tasks went missing");
        assert!(
            report.fmax >= 1.0,
            "{name}: degenerate Fmax {}",
            report.fmax
        );
        println!(
            "  {name:<18} fmax {:>8.1}  mean flow {:>8.3}  {:>7.0} tasks/ms",
            report.fmax,
            report.mean_flow,
            N as f64 / elapsed.as_secs_f64() / 1e3,
        );
    }
    println!("smoke_scale: ok");
}
