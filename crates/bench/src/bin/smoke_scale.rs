//! Large-m smoke run for the indexed dispatch kernel (CI stage).
//!
//! Streams 200,000 tasks over 100,000 machines — the fig11 shape pushed
//! three orders of magnitude past the paper's m ≈ 10² — once per
//! structured family that the compact-set / segment-tree path serves
//! (wide intervals, inclusive prefixes, disjoint blocks, replication
//! rings). `DispatchKernel::Auto` selects the indexed kernel at this
//! scale; the run exists to prove the whole pipeline (generator →
//! compact `ProcSetRef` views → segment-tree dispatch → report fold)
//! completes in seconds and constant memory where the scalar scan would
//! need ~10¹⁰ machine visits. Prints one line per family and fails
//! loudly (panics) if any report comes back degenerate.
//!
//! `FLOWSCHED_SMOKE_M` / `FLOWSCHED_SMOKE_N` override the machine and
//! task counts — the ISSUE 10 CI stage runs the same binary at
//! m = 2²⁰ to smoke the SoA bank and branchless descent at the
//! hardware-limit scale.

use std::time::Instant;

use flowsched_algos::tiebreak::TieBreak;
use flowsched_obs::NoopRecorder;
use flowsched_sim::driver::simulate_stream;
use flowsched_sim::report::ReportConfig;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const M: usize = 100_000;
const N: usize = 200_000;

/// Reads a positive usize override from the environment, falling back
/// to `default`; rejects malformed values loudly rather than silently
/// smoking the wrong scale.
fn env_scale(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(s) => {
            let v: usize = s
                .parse()
                .unwrap_or_else(|_| panic!("{var} must be a positive integer, got `{s}`"));
            assert!(v > 0, "{var} must be positive");
            v
        }
        Err(_) => default,
    }
}

fn main() {
    let m = env_scale("FLOWSCHED_SMOKE_M", M);
    let n = env_scale("FLOWSCHED_SMOKE_N", N);
    let families = [
        ("interval_m/2", StructureKind::IntervalFixed(m / 2)),
        ("inclusive_prefix", StructureKind::InclusivePrefix),
        ("disjoint_blocks", StructureKind::DisjointBlocks(m / 100)),
        ("ring_k3", StructureKind::RingFixed(3)),
    ];
    println!("smoke_scale: m = {m}, n = {n} tasks per family");
    for (name, structure) in families {
        let cfg = PoissonStreamConfig {
            m,
            n,
            structure,
            lambda: m as f64 / 2.0,
            unit: true,
            ptime_steps: 4,
        };
        let start = Instant::now();
        let report = simulate_stream(
            PoissonStream::new(&cfg, 0x5CA1E),
            TieBreak::Min,
            &ReportConfig::default(),
            &mut NoopRecorder,
        );
        let elapsed = start.elapsed();
        assert_eq!(report.n_measured, n, "{name}: tasks went missing");
        assert!(
            report.fmax >= 1.0,
            "{name}: degenerate Fmax {}",
            report.fmax
        );
        println!(
            "  {name:<18} fmax {:>8.1}  mean flow {:>8.3}  {:>7.0} tasks/ms",
            report.fmax,
            report.mean_flow,
            n as f64 / elapsed.as_secs_f64() / 1e3,
        );
    }
    println!("smoke_scale: ok");
}
