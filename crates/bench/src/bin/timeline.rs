//! Telemetry timeline export: run one workload/algorithm combo with
//! full telemetry and write every export format.
//!
//! ```text
//! cargo run --release -p flowsched-bench --bin timeline -- \
//!     [--workload kv|poisson|adversary] [--policy min|max] \
//!     [--window <width>] [--timeline <dir>] [--paper] [--seed <u64>]
//! ```
//!
//! One streaming pass (`simulate_stream_telemetry`) produces the
//! `SimReport`, the aggregate recorder, and the tumbling-window time
//! series; the spans derived from the trace are then written as:
//!
//! - `trace.json` — Chrome trace-event JSON; open in
//!   <https://ui.perfetto.dev> (or `chrome://tracing`) to see per-machine
//!   busy spans and per-task service spans with wait/flow args.
//! - `metrics.prom` — Prometheus text exposition of the aggregates.
//! - `windows.csv` — the windowed time series (queue depth, rates,
//!   utilization, flow percentiles per window).
//! - `snapshot.json` — the ordinary observability snapshot.
//!
//! The trace ring is sized to the task count so the timeline is
//! lossless; if the ring still dropped events (it cannot at the sizes
//! this binary produces), the summary printed at the end says so.

use std::path::PathBuf;

use flowsched_algos::indexed::DispatchKernel;
use flowsched_algos::registry::PolicySpec;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::stream::InstanceStream;
use flowsched_kvstore::cluster::{ClusterConfig, KvCluster};
use flowsched_kvstore::replication::ReplicationStrategy;
use flowsched_obs::{
    chrome_trace, machine_spans, prometheus_text_with, render_summary, task_spans, windows_to_csv,
    ExtraGauge, PromOptions,
};
use flowsched_sim::report::ReportConfig;
use flowsched_sim::telemetry::{simulate_stream_telemetry, Telemetry, TelemetryConfig};
use flowsched_stats::zipf::BiasCase;
use flowsched_workloads::adversary::interval::interval_adversary_instance;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};
use rand::SeedableRng;

fn main() {
    // Peel off the bin-specific flags, forward the rest to the shared
    // harness parser.
    let mut workload = String::from("kv");
    let mut policy = TieBreak::Min;
    let mut width = 1.0f64;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                workload = it.next().expect("--workload requires kv|poisson|adversary");
            }
            "--policy" => {
                policy = match it.next().expect("--policy requires min|max").as_str() {
                    "min" => TieBreak::Min,
                    "max" => TieBreak::Max,
                    other => panic!("--policy takes min|max, got {other:?}"),
                };
            }
            "--window" => {
                let v = it.next().expect("--window requires a width");
                width = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--window takes a positive f64, got {v:?}"));
            }
            other => rest.push(other.to_string()),
        }
    }
    let args = flowsched_bench::parse_from(rest);
    let scale = args.scale;
    let dir = args
        .timeline
        .unwrap_or_else(|| PathBuf::from("target/timeline"));

    // Lossless trace: ~5 events per task (arrival, dispatch, projected
    // completion, amortized busy/idle) plus slack.
    let mut telemetry_cfg = TelemetryConfig::defaults(scale.m, width);
    telemetry_cfg.obs.trace_capacity = 6 * scale.tasks + 64;

    let report_cfg = ReportConfig::default();
    let telemetry: Telemetry = match workload.as_str() {
        "kv" => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed);
            let cluster = KvCluster::new(
                ClusterConfig {
                    m: scale.m,
                    k: scale.k,
                    strategy: ReplicationStrategy::Overlapping,
                    s: 1.0,
                    case: BiasCase::Shuffled,
                },
                &mut rng,
            );
            // 70% offered load: busy enough for visible queueing, stable
            // enough that the timeline has an end.
            let inst = cluster.requests(scale.tasks, 0.7 * scale.m as f64, &mut rng);
            simulate_stream_telemetry(
                InstanceStream::new(&inst),
                policy,
                &report_cfg,
                &telemetry_cfg,
            )
        }
        "poisson" => {
            let cfg = PoissonStreamConfig {
                m: scale.m,
                n: scale.tasks,
                structure: StructureKind::RingFixed(scale.k),
                lambda: 0.7 * scale.m as f64,
                unit: true,
                ptime_steps: 4,
            };
            simulate_stream_telemetry(
                PoissonStream::new(&cfg, scale.seed),
                policy,
                &report_cfg,
                &telemetry_cfg,
            )
        }
        "adversary" => {
            let inst = interval_adversary_instance(scale.m, scale.k, scale.m * scale.m);
            simulate_stream_telemetry(
                InstanceStream::new(&inst),
                policy,
                &report_cfg,
                &telemetry_cfg,
            )
        }
        other => panic!("unknown --workload {other:?}; supported: kv, poisson, adversary"),
    };

    let rec = &telemetry.recorder;
    let tasks = task_spans(rec.trace().iter());
    let machines = machine_spans(rec.trace().iter(), rec.makespan_seen());

    std::fs::create_dir_all(&dir).expect("create timeline output directory");
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write timeline export");
        println!("wrote {}", path.display());
    };
    // Label every Prometheus series with the registry form of the policy
    // this run dispatched under, and export the report-level weighted
    // objective next to the recorder aggregates.
    let policy_id = PolicySpec::eft(policy, DispatchKernel::Auto).to_string();
    let prom_opts = PromOptions {
        policy: Some(&policy_id),
        extra_gauges: vec![ExtraGauge {
            name: "weighted_fmax",
            help: "Maximum weighted flow time max w_i*F_i of the run",
            value: telemetry.report.weighted_fmax,
        }],
    };
    write("trace.json", chrome_trace(&tasks, &machines));
    write("metrics.prom", prometheus_text_with(rec, &prom_opts));
    write("windows.csv", windows_to_csv(&telemetry.windows));
    write("snapshot.json", rec.snapshot().to_json());

    let report = &telemetry.report;
    println!(
        "timeline: {workload}/{policy:?} — m={}, n={}, window width {width}, seed={:#x}",
        scale.m, scale.tasks, scale.seed
    );
    println!(
        "SimReport: fmax={:.4} mean_flow={:.4} p95={:.4} p99={:.4}",
        report.fmax, report.mean_flow, report.p95, report.p99
    );
    println!(
        "spans: {} task spans, {} machine busy spans over {} windows",
        tasks.len(),
        machines.len(),
        telemetry.windows.windows().len()
    );
    print!("{}", render_summary(rec));
}
