//! Sharded-engine smoke run (CI stage): dispatches a cluster-partitioned
//! Poisson trace through `run_immediate_sharded` and prints an FNV-1a
//! hash of the full schedule (sequence, machine, start per task).
//!
//! `ci_check.sh` runs this twice — `FLOWSCHED_THREADS=1` and `=4` — and
//! asserts the printed `schedule_hash` lines are identical, pinning the
//! engine's thread-count invariance end-to-end on a real workload (the
//! proptests in `tests/sharded_equivalence.rs` pin it on small shapes).
//! The hash folds every bit of every assignment, so any reordering,
//! dropped task, or perturbed start time changes the output.
//!
//! The dispatch policy is the registry string in `FLOWSCHED_POLICY`
//! (default `eft:min`), built through
//! [`flowsched_algos::registry::PolicySpec`] — so the smoke also covers
//! registry parsing and the one shared construction path end-to-end.

use flowsched_algos::engine::{run_policy_sharded, DispatchSink, ShardedConfig};
use flowsched_algos::registry::PolicySpec;
use flowsched_core::schedule::Assignment;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_obs::NoopRecorder;
use flowsched_workloads::random::{PoissonStream, PoissonStreamConfig, StructureKind};

const MACHINES: usize = 256;
const BLOCK: usize = 16;
const TASKS: usize = 500_000;

/// FNV-1a over the dispatch stream: order-sensitive, so the hash also
/// certifies that commits arrive in arrival order.
struct HashSink {
    hash: u64,
    count: u64,
}

impl HashSink {
    fn new() -> Self {
        HashSink {
            hash: 0xcbf2_9ce4_8422_2325,
            count: 0,
        }
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl DispatchSink for HashSink {
    fn accept(&mut self, seq: u64, task: Task, a: Assignment) {
        self.fold(&seq.to_le_bytes());
        self.fold(&task.release.to_bits().to_le_bytes());
        self.fold(&task.ptime.to_bits().to_le_bytes());
        self.fold(&(a.machine.index() as u64).to_le_bytes());
        self.fold(&a.start.to_bits().to_le_bytes());
        self.count += 1;
    }
}

fn main() {
    let cfg = PoissonStreamConfig::unit_tasks(
        MACHINES,
        TASKS,
        MACHINES as f64 / 2.0,
        StructureKind::DisjointBlocks(BLOCK),
    );
    let stream = PoissonStream::new(&cfg, 0x5AAD);
    let plan = stream.shard_plan(flowsched_core::shard::DEFAULT_MAX_SHARDS);
    let threads = flowsched_parallel::default_threads();
    let policy = std::env::var("FLOWSCHED_POLICY").unwrap_or_else(|_| "eft:min".into());
    let spec: PolicySpec = policy
        .parse()
        .unwrap_or_else(|e| panic!("FLOWSCHED_POLICY: {e}"));
    let mut sink = HashSink::new();
    run_policy_sharded(
        stream,
        &spec,
        &plan,
        &ShardedConfig::with_threads(threads),
        &mut NoopRecorder,
        &mut sink,
    );
    assert_eq!(sink.count, TASKS as u64, "tasks went missing");
    println!(
        "sharded_smoke: m = {MACHINES}, n = {TASKS}, shards = {}, threads = {threads}, policy = {spec}",
        plan.shards()
    );
    println!("schedule_hash=0x{:016x}", sink.hash);
}
