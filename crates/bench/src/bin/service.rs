//! Service-time sensitivity sweep (extension beyond the paper's unit
//! tasks).

use flowsched_experiments::service;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = service::run(&args.scale);
    print!("{}", service::render(&rows));
}
