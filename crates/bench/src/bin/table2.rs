//! Regenerates the paper's Table 2 (structured-processing-set bounds).

use flowsched_experiments::table2;

fn main() {
    let args = flowsched_bench::parse_args();
    let rows = table2::run(&args.scale);
    print!("{}", table2::render(&rows));
}
