//! Regenerates the paper's Figure 10a (LP max-load sweep).

use flowsched_experiments::fig10;

fn main() {
    let args = flowsched_bench::parse_args();
    let out = fig10::run(&args.scale);
    print!("{}", fig10::render_10a(&out, &args.scale));
}
