//! Regenerates the paper's Figure 3 — an EFT-Min schedule of the
//! Theorem 8 adversary (m = 6, k = 3) over the first steps, as an ASCII
//! Gantt chart, plus the resulting flow growth.

use flowsched_algos::eft::EftState;
use flowsched_algos::tiebreak::TieBreak;
use flowsched_core::gantt::{render, GanttOptions};
use flowsched_workloads::adversary::interval::run_interval_adversary;

fn main() {
    let (m, k) = (6, 3);
    let steps = 4; // the paper draws t = 0..3
    let mut algo = EftState::new(m, TieBreak::Min);
    let out = run_interval_adversary(&mut algo, k, steps);
    out.validate().expect("adversary schedule is valid");

    println!(
        "Figure 3 — EFT-Min on the Theorem 8 adversary, m = {m}, k = {k}, t = 0..{}",
        steps - 1
    );
    println!("(each step releases {m} unit tasks: staircase types then k type-1 tasks)\n");
    let art = render(
        &out.schedule,
        &out.instance,
        &GanttOptions {
            resolution: 1.0,
            until: None,
            numbered: true,
        },
    );
    println!("{art}");
    println!("Fmax after {steps} steps: {}", out.fmax());

    // Continue to convergence to show the m−k+1 flow.
    let mut algo = EftState::new(m, TieBreak::Min);
    let out = run_interval_adversary(&mut algo, k, m * m);
    println!(
        "Fmax after {} steps: {} (theorem target m−k+1 = {})",
        m * m,
        out.fmax(),
        m - k + 1
    );
}
