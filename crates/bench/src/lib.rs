//! # flowsched-bench
//!
//! Regeneration harness for every table and figure of the paper, plus
//! Criterion micro-benchmarks of the substrates.
//!
//! Each `src/bin/*` binary prints one table/figure:
//!
//! ```text
//! cargo run --release -p flowsched-bench --bin table1
//! cargo run --release -p flowsched-bench --bin table2
//! cargo run --release -p flowsched-bench --bin fig01   # structure reduction graph
//! cargo run --release -p flowsched-bench --bin fig03   # EFT-Min adversary Gantt
//! cargo run --release -p flowsched-bench --bin fig04   # profile convergence
//! cargo run --release -p flowsched-bench --bin fig07   # Th. 10 padding
//! cargo run --release -p flowsched-bench --bin fig08   # load distributions
//! cargo run --release -p flowsched-bench --bin fig09   # replication strategies
//! cargo run --release -p flowsched-bench --bin fig10a  # LP max-load sweep
//! cargo run --release -p flowsched-bench --bin fig10b  # overlapping/disjoint ratio
//! cargo run --release -p flowsched-bench --bin fig11   # Fmax vs load
//! cargo run --release -p flowsched-bench --bin ablation
//! ```
//!
//! Every binary accepts `--paper` for the paper's full parameters
//! (m = 15, 100 permutations, 10 repetitions, 10 000 tasks) and defaults
//! to a quick scale that finishes in seconds. `--seed <u64>` overrides
//! the root seed; `--csv` switches tabular output to CSV where supported.

use flowsched_experiments::Scale;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Emit CSV instead of aligned tables (where supported).
    pub csv: bool,
    /// Directory to write telemetry exports into (`--timeline <dir>`):
    /// the `timeline` binary requires it, and instrumented experiment
    /// binaries write their time-series CSV there when present.
    pub timeline: Option<std::path::PathBuf>,
}

/// Parses `std::env::args()`: `--paper`, `--seed <u64>`, `--csv`,
/// `--timeline <dir>`.
///
/// # Panics
/// Panics with a usage message on unknown flags, which is the desired
/// behaviour for a CLI harness.
pub fn parse_args() -> HarnessArgs {
    parse_from(std::env::args().skip(1))
}

/// Testable parser.
pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> HarnessArgs {
    let mut scale = Scale::quick();
    let mut csv = false;
    let mut timeline = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper" => scale = Scale::paper(),
            "--csv" => csv = true,
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--seed requires a value"));
                scale.seed = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--seed takes a u64, got {v:?}"));
            }
            "--timeline" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| panic!("--timeline requires a directory"));
                timeline = Some(std::path::PathBuf::from(v));
            }
            other => panic!(
                "unknown flag {other:?}; supported: --paper, --seed <u64>, --csv, \
                 --timeline <dir>"
            ),
        }
    }
    HarnessArgs {
        scale,
        csv,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quick() {
        let a = parse_from(Vec::<String>::new());
        assert_eq!(a.scale.permutations, Scale::quick().permutations);
        assert!(!a.csv);
    }

    #[test]
    fn paper_flag_switches_scale() {
        let a = parse_from(vec!["--paper".to_string()]);
        assert_eq!(a.scale.permutations, 100);
        assert_eq!(a.scale.tasks, 10_000);
    }

    #[test]
    fn seed_and_csv() {
        let a = parse_from(vec!["--seed".into(), "42".into(), "--csv".into()]);
        assert_eq!(a.scale.seed, 42);
        assert!(a.csv);
    }

    #[test]
    fn timeline_takes_a_directory() {
        let a = parse_from(vec!["--timeline".into(), "out/tl".into()]);
        assert_eq!(a.timeline.as_deref(), Some(std::path::Path::new("out/tl")));
        assert!(parse_from(Vec::<String>::new()).timeline.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse_from(vec!["--wat".to_string()]);
    }
}
