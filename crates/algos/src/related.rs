//! Related machines (`Q` environment): machines with speeds.
//!
//! The paper's Table 1 includes the related-machines results of Bansal &
//! Cloostermans (Slow-Fit ≥ Ω(m), Greedy ≥ Ω(log m), Double-Fit 13.5).
//! This module provides the *model* — machine speeds, speed-aware EFT
//! (their "Greedy"), and a Slow-Fit-style rule — so those algorithms can
//! be exercised; we do not re-prove their bounds (the constructions live
//! in the cited paper), but the tests demonstrate the qualitative
//! behaviours: Greedy prefers fast machines, Slow-Fit saturates slow ones
//! first, and both reduce to plain EFT when all speeds are equal.
//!
//! A task of size `p` runs on machine `j` for `p / speed[j]` time units.

use flowsched_core::instance::Instance;
use flowsched_core::machine::MachineId;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::Task;
use flowsched_core::time::Time;

/// Speed-aware immediate-dispatch rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelatedRule {
    /// Greedy / speed-aware EFT: dispatch to the machine finishing the
    /// task earliest (`max(r, C_j) + p/s_j`), lowest index on ties.
    Greedy,
    /// Slow-Fit flavour: among machines that could finish within
    /// `max(r, C_j) + p/s_j ≤ r + budget`, pick the *slowest* (saving
    /// fast machines for urgent work); falls back to Greedy when no
    /// machine meets the budget.
    SlowFit {
        /// Flow budget `T` the rule tries to respect.
        budget: Time,
    },
}

/// Incremental scheduler state over related machines.
#[derive(Debug, Clone)]
pub struct RelatedState {
    speeds: Vec<f64>,
    completions: Vec<Time>,
    rule: RelatedRule,
}

impl RelatedState {
    /// Fresh state; `speeds[j] > 0` is machine `j`'s speed.
    ///
    /// # Panics
    /// Panics on empty or non-positive speeds.
    pub fn new(speeds: Vec<f64>, rule: RelatedRule) -> Self {
        assert!(!speeds.is_empty(), "need at least one machine");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        let m = speeds.len();
        RelatedState {
            speeds,
            completions: vec![0.0; m],
            rule,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.speeds.len()
    }

    /// Current machine completion times.
    pub fn completions(&self) -> &[Time] {
        &self.completions
    }

    /// Finish time of `task` if dispatched to machine `j` now.
    fn finish_on(&self, task: Task, j: usize) -> Time {
        task.release.max(self.completions[j]) + task.ptime / self.speeds[j]
    }

    /// Dispatches one task under the configured rule; returns the
    /// assignment (start time is in wall-clock units; the task occupies
    /// the machine for `p / speed` units).
    ///
    /// # Panics
    /// Panics on an empty processing set.
    pub fn dispatch(&mut self, task: Task, set: &ProcSet) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        let pick = match self.rule {
            RelatedRule::Greedy => self.pick_greedy(task, set),
            RelatedRule::SlowFit { budget } => {
                let deadline = task.release + budget;
                set.as_slice()
                    .iter()
                    .copied()
                    .filter(|&j| self.finish_on(task, j) <= deadline + 1e-12)
                    .min_by(|&a, &b| {
                        self.speeds[a]
                            .partial_cmp(&self.speeds[b])
                            .unwrap()
                            .then(a.cmp(&b))
                    })
                    .unwrap_or_else(|| self.pick_greedy(task, set))
            }
        };
        let start = task.release.max(self.completions[pick]);
        self.completions[pick] = start + task.ptime / self.speeds[pick];
        Assignment::new(MachineId(pick), start)
    }

    fn pick_greedy(&self, task: Task, set: &ProcSet) -> usize {
        *set.as_slice()
            .iter()
            .min_by(|&&a, &&b| {
                self.finish_on(task, a)
                    .partial_cmp(&self.finish_on(task, b))
                    .unwrap()
                    .then(a.cmp(&b))
            })
            .expect("non-empty set")
    }
}

/// Runs a speed-aware rule over a whole instance. Note the returned
/// schedule's *durations* differ from the instance's processing times
/// (`p / s_j`), so validate flows with [`related_flow_times`] instead of
/// `Schedule::flow_time`.
pub fn related_dispatch(inst: &Instance, speeds: Vec<f64>, rule: RelatedRule) -> Schedule {
    assert_eq!(speeds.len(), inst.machines(), "one speed per machine");
    let mut state = RelatedState::new(speeds, rule);
    Schedule::new(inst.iter().map(|(_, t, s)| state.dispatch(t, s)).collect())
}

/// Per-task flow times under machine speeds (completion uses `p / s_j`).
pub fn related_flow_times(schedule: &Schedule, inst: &Instance, speeds: &[f64]) -> Vec<Time> {
    inst.iter()
        .map(|(id, task, _)| {
            let a = schedule.assignment(id);
            a.start + task.ptime / speeds[a.machine.index()] - task.release
        })
        .collect()
}

/// Maximum flow time under speeds.
pub fn related_fmax(schedule: &Schedule, inst: &Instance, speeds: &[f64]) -> Time {
    related_flow_times(schedule, inst, speeds)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::eft;
    use crate::tiebreak::TieBreak;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::task::TaskId;

    fn burst(m: usize, n: usize) -> Instance {
        let mut b = InstanceBuilder::new(m);
        for _ in 0..n {
            b.push_unit(0.0, ProcSet::full(m));
        }
        b.build().unwrap()
    }

    #[test]
    fn equal_speeds_reduce_to_eft_min() {
        let inst = burst(3, 9);
        let related = related_dispatch(&inst, vec![1.0; 3], RelatedRule::Greedy);
        let plain = eft(&inst, TieBreak::Min);
        assert_eq!(related, plain);
        assert_eq!(related_fmax(&related, &inst, &[1.0; 3]), plain.fmax(&inst));
    }

    #[test]
    fn greedy_prefers_the_fast_machine() {
        // Speeds 4 vs 1: a single task must go to the fast machine.
        let inst = burst(2, 1);
        let s = related_dispatch(&inst, vec![1.0, 4.0], RelatedRule::Greedy);
        assert_eq!(s.machine(TaskId(0)).index(), 1);
        let flows = related_flow_times(&s, &inst, &[1.0, 4.0]);
        assert!((flows[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn greedy_balances_by_finish_time_not_count() {
        // Speeds (2, 1): the fast machine should absorb about twice the
        // tasks of the slow one on a long burst.
        let inst = burst(2, 30);
        let speeds = vec![2.0, 1.0];
        let s = related_dispatch(&inst, speeds.clone(), RelatedRule::Greedy);
        let counts = [0, 1].map(|j| {
            (0..inst.len())
                .filter(|&i| s.machine(TaskId(i)).index() == j)
                .count()
        });
        assert!(
            counts[0] > counts[1],
            "fast machine got {c0} vs slow {c1}",
            c0 = counts[0],
            c1 = counts[1]
        );
        // Max flow ≈ n / (s1 + s2) = 10 at the fluid limit.
        let fmax = related_fmax(&s, &inst, &speeds);
        assert!((fmax - 10.0).abs() <= 1.0, "fmax {fmax}");
    }

    #[test]
    fn slow_fit_parks_work_on_slow_machines() {
        // Budget generous: Slow-Fit sends everything to the slowest
        // machine that still meets the budget.
        let inst = burst(2, 2);
        let speeds = vec![4.0, 1.0];
        let s = related_dispatch(&inst, speeds.clone(), RelatedRule::SlowFit { budget: 10.0 });
        assert_eq!(
            s.machine(TaskId(0)).index(),
            1,
            "first task on the slow machine"
        );
        // Tight budget: it must fall back toward fast machines.
        let tight = related_dispatch(&inst, speeds.clone(), RelatedRule::SlowFit { budget: 0.3 });
        assert_eq!(tight.machine(TaskId(0)).index(), 0);
    }

    #[test]
    fn slow_fit_respects_processing_sets() {
        let mut b = InstanceBuilder::new(3);
        for _ in 0..6 {
            b.push_unit(0.0, ProcSet::interval(1, 2));
        }
        let inst = b.build().unwrap();
        let s = related_dispatch(
            &inst,
            vec![10.0, 1.0, 2.0],
            RelatedRule::SlowFit { budget: 5.0 },
        );
        for i in 0..inst.len() {
            assert!(s.machine(TaskId(i)).index() >= 1);
        }
    }

    #[test]
    fn flows_account_for_speed() {
        // p = 3 on a speed-2 machine: flow 1.5.
        let mut b = InstanceBuilder::new(1);
        b.push(Task::new(0.0, 3.0), ProcSet::full(1));
        let inst = b.build().unwrap();
        let s = related_dispatch(&inst, vec![2.0], RelatedRule::Greedy);
        assert_eq!(related_fmax(&s, &inst, &[2.0]), 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let _ = RelatedState::new(vec![1.0, 0.0], RelatedRule::Greedy);
    }
}
