//! Offline reference values for competitive-ratio measurements.
//!
//! - [`optimal_unit_fmax`]: exact offline optimum for unit-task instances
//!   with integer releases — `P | rᵢ, pᵢ=1, Mᵢ | Fmax` is polynomial
//!   (Section 6 of the paper, via Brucker et al.); we binary-search the
//!   flow budget `F` and decide feasibility by maximum bipartite matching
//!   between tasks and `(machine, time slot)` pairs.
//! - [`brute_force_fmax`]: exhaustive optimum for tiny general instances
//!   (any processing times/sets), used to validate bounds in tests. Relies
//!   on the exchange argument that, per machine, processing assigned tasks
//!   in release order minimizes their maximum flow.
//! - [`fmax_lower_bound`]: polynomial lower bounds on `F*max` — the
//!   paper's bounds (3) `F* ≥ p_max` and (4) `F* ≥ W/m` generalized to
//!   release windows and to machine subsets induced by processing sets.

use flowsched_core::instance::Instance;
use flowsched_core::procset::ProcSet;
use flowsched_core::time::Time;
use flowsched_solver::matching::{BipartiteMatcher, IncrementalMatcher};

/// Exact offline `F*max` for a unit-task instance with integer release
/// times, via a warm-started incremental search on the integer flow
/// budget with a Hopcroft–Karp feasibility oracle.
///
/// Feasibility of budget `F`: every task `Tᵢ` must occupy one
/// `(machine ∈ Mᵢ, slot t)` with `rᵢ ≤ t ≤ rᵢ + F − 1`, each slot holding
/// at most one task — a bipartite matching of size `n`.
///
/// Raising the budget from `F` to `F+1` only *adds* edges (each task
/// gains the slot `rᵢ + F` on its machines), so the search walks the
/// budget upward carrying one [`IncrementalMatcher`]: the matching found
/// at `F` persists and only unmatched tasks seek augmenting paths at
/// `F+1`. Over the whole search at most `n` augmenting paths are ever
/// found — versus the seed binary search, which re-ran a from-scratch
/// Hopcroft–Karp per probe (validated equivalent by the cross-check
/// property tests).
///
/// ```
/// use flowsched_algos::offline::optimal_unit_fmax;
/// use flowsched_core::prelude::*;
///
/// // Three simultaneous unit tasks, all pinned to one machine of two.
/// let mut b = InstanceBuilder::new(2);
/// for _ in 0..3 { b.push_unit(0.0, ProcSet::singleton(0)); }
/// let inst = b.build().unwrap();
/// assert_eq!(optimal_unit_fmax(&inst), 3.0);
/// ```
///
/// # Panics
/// Panics if the instance is not unit-task or a release is not an
/// integer.
pub fn optimal_unit_fmax(inst: &Instance) -> Time {
    assert!(inst.is_unit(), "optimal_unit_fmax requires unit tasks");
    assert!(
        inst.tasks().iter().all(|t| t.release.fract() == 0.0),
        "optimal_unit_fmax requires integer release times"
    );
    if inst.is_empty() {
        return 0.0;
    }
    let n = inst.len();
    let m = inst.machines();
    let min_r = inst.tasks().first().map(|t| t.release as i64).unwrap_or(0);
    let max_r = inst.tasks().last().map(|t| t.release as i64).unwrap_or(0);
    // A list schedule completes every unit task within n of its release,
    // so F* ≤ n; keep the seed's slack as an oracle-bug tripwire.
    let budget_cap = 2 * n + 2;
    // Fix the slot space at the largest budget up front so slot ids are
    // stable while the budget grows.
    let horizon = (max_r - min_r) as usize + budget_cap;
    let slot_id = |machine: usize, t: i64| -> usize { machine * horizon + (t - min_r) as usize };

    let mut matcher = IncrementalMatcher::new(n, m * horizon);
    let mut budget = 0usize;
    loop {
        budget += 1;
        assert!(
            budget <= budget_cap,
            "budget search exceeded the n-task upper bound — oracle bug"
        );
        // Budget F adds exactly the slot rᵢ + F − 1 for every task; all
        // earlier slots (and the matching built on them) carry over.
        for (id, task, set) in inst.iter() {
            let t = task.release as i64 + budget as i64 - 1;
            for &j in set.as_slice() {
                matcher.add_edge(id.0, slot_id(j, t));
            }
        }
        if matcher.solve() == n {
            return budget as Time;
        }
    }
}

/// Exact offline optimum of the **weighted** max flow time
/// `max wᵢ·Fᵢ` for a unit-task instance with integer releases — the
/// reference the Azar–Touitou-style weighted dispatchers are measured
/// against.
///
/// Feasibility of a weighted budget `F`: task `Tᵢ` may occupy slot `t`
/// iff `wᵢ·(t + 1 − rᵢ) ≤ F`, i.e. its allowance is
/// `dᵢ = ⌊F/wᵢ⌋` slots from `rᵢ` — so raising `F` only *adds* edges and
/// one [`IncrementalMatcher`] carries the matching across probes,
/// exactly as [`optimal_unit_fmax`] walks the unweighted budget. The
/// optimum is attained at some `F = wᵢ·d` (an integral per-task
/// slot-flow scaled by its weight), so the search walks the sorted
/// distinct candidates `{wᵢ·d : d ≤ cap}` upward and returns the first
/// feasible one. With all weights 1 the candidate ladder is `1, 2, …`
/// and this reduces to [`optimal_unit_fmax`] (pinned in tests).
///
/// # Panics
/// Panics if the instance is not unit-task, a release is not an
/// integer, or any weight is non-positive.
pub fn optimal_unit_weighted_fmax(inst: &Instance) -> Time {
    assert!(
        inst.is_unit(),
        "optimal_unit_weighted_fmax requires unit tasks"
    );
    assert!(
        inst.tasks().iter().all(|t| t.release.fract() == 0.0),
        "optimal_unit_weighted_fmax requires integer release times"
    );
    assert!(
        inst.tasks().iter().all(|t| t.weight > 0.0),
        "optimal_unit_weighted_fmax requires positive weights"
    );
    if inst.is_empty() {
        return 0.0;
    }
    let n = inst.len();
    let m = inst.machines();
    let min_r = inst.tasks().first().map(|t| t.release as i64).unwrap_or(0);
    let max_r = inst.tasks().last().map(|t| t.release as i64).unwrap_or(0);
    // Any list schedule completes each unit task within n slots of its
    // release, so every per-task slot-flow in the optimum is ≤ n; keep
    // the unweighted oracle's slack as a tripwire.
    let budget_cap = 2 * n + 2;
    let horizon = (max_r - min_r) as usize + budget_cap;
    let slot_id = |machine: usize, t: i64| -> usize { machine * horizon + (t - min_r) as usize };

    let mut weights: Vec<Time> = inst.tasks().iter().map(|t| t.weight).collect();
    weights.sort_by(|a, b| flowsched_core::time::time_cmp(*a, *b));
    weights.dedup();
    let mut candidates: Vec<Time> = weights
        .iter()
        .flat_map(|&w| (1..=budget_cap).map(move |d| w * d as Time))
        .collect();
    candidates.sort_by(|a, b| flowsched_core::time::time_cmp(*a, *b));
    candidates.dedup();

    let mut matcher = IncrementalMatcher::new(n, m * horizon);
    // Slots granted to each task so far — allowances only ever grow.
    let mut allowance = vec![0usize; n];
    for f in candidates {
        for (id, task, set) in inst.iter() {
            let d = ((f / task.weight + 1e-9).floor() as usize).min(budget_cap);
            while allowance[id.0] < d {
                let t = task.release as i64 + allowance[id.0] as i64;
                for &j in set.as_slice() {
                    matcher.add_edge(id.0, slot_id(j, t));
                }
                allowance[id.0] += 1;
            }
        }
        if matcher.solve() == n {
            return f;
        }
    }
    panic!("weighted budget search exceeded the n-task upper bound — oracle bug");
}

/// Exhaustive weighted optimum (`max wᵢ·Fᵢ`) for small general
/// instances — the weighted twin of [`brute_force_fmax`], used to
/// validate [`optimal_unit_weighted_fmax`] in tests.
///
/// Unlike the unweighted brute force, release order per machine is
/// *not* WLOG optimal here (a heavy late arrival may need to jump a
/// light queue), so this search branches over the processing *order*
/// as well as the machine assignment — `n! · mⁿ` leaves, hence the
/// tighter [`WEIGHTED_BRUTE_FORCE_LIMIT`]. Greedy starts remain WLOG:
/// for a fixed assignment and per-machine order, delaying a task only
/// raises its own flow.
///
/// # Panics
/// Panics when the instance has more than
/// [`WEIGHTED_BRUTE_FORCE_LIMIT`] tasks.
pub fn brute_force_weighted_fmax(inst: &Instance) -> Time {
    assert!(
        inst.len() <= WEIGHTED_BRUTE_FORCE_LIMIT,
        "weighted brute force limited to {WEIGHTED_BRUTE_FORCE_LIMIT} tasks"
    );
    if inst.is_empty() {
        return 0.0;
    }
    let mut busy = vec![0.0_f64; inst.machines()];
    let mut done = vec![false; inst.len()];
    let mut best = f64::INFINITY;
    search_weighted(inst, 0, &mut done, &mut busy, 0.0, &mut best);
    best
}

/// Task-count ceiling for [`brute_force_weighted_fmax`] — lower than
/// [`BRUTE_FORCE_LIMIT`] because the weighted search also permutes the
/// processing order.
pub const WEIGHTED_BRUTE_FORCE_LIMIT: usize = 8;

fn search_weighted(
    inst: &Instance,
    scheduled: usize,
    done: &mut [bool],
    busy: &mut [f64],
    so_far: f64,
    best: &mut f64,
) {
    if so_far >= *best {
        return; // prune
    }
    if scheduled == inst.len() {
        *best = so_far;
        return;
    }
    for i in 0..inst.len() {
        if done[i] {
            continue;
        }
        let task = inst.tasks()[i];
        let set = &inst.sets()[i];
        done[i] = true;
        for &j in set.as_slice() {
            let start = task.release.max(busy[j]);
            let completion = start + task.ptime;
            let saved = busy[j];
            busy[j] = completion;
            search_weighted(
                inst,
                scheduled + 1,
                done,
                busy,
                so_far.max(task.weight * (completion - task.release)),
                best,
            );
            busy[j] = saved;
        }
        done[i] = false;
    }
}

/// Matching oracle: can all unit tasks complete with flow ≤ `budget`?
pub fn unit_budget_feasible(inst: &Instance, budget: usize) -> bool {
    if budget == 0 {
        return inst.is_empty();
    }
    let n = inst.len();
    let m = inst.machines();
    let min_r = inst.tasks().first().map(|t| t.release as i64).unwrap_or(0);
    let max_r = inst.tasks().last().map(|t| t.release as i64).unwrap_or(0);
    let horizon = (max_r - min_r) as usize + budget; // slots per machine
    let slot_id = |machine: usize, t: i64| -> usize { machine * horizon + (t - min_r) as usize };
    let mut g = BipartiteMatcher::new(n, m * horizon);
    for (id, task, set) in inst.iter() {
        let r = task.release as i64;
        for &j in set.as_slice() {
            for t in r..r + budget as i64 {
                g.add_edge(id.0, slot_id(j, t));
            }
        }
    }
    g.solve().size == n
}

/// Exhaustive offline optimum for small instances (any processing times
/// and sets). Exponential in the task count — intended for `n ≲ 10` in
/// tests. Within one machine, tasks run contiguously in release order,
/// which is optimal for `Fmax` by a pairwise exchange argument.
///
/// # Panics
/// Panics when the instance has more than [`BRUTE_FORCE_LIMIT`] tasks.
pub fn brute_force_fmax(inst: &Instance) -> Time {
    assert!(
        inst.len() <= BRUTE_FORCE_LIMIT,
        "brute force limited to {BRUTE_FORCE_LIMIT} tasks"
    );
    let mut busy = vec![0.0_f64; inst.machines()];
    let mut best = f64::INFINITY;
    search(inst, 0, &mut busy, 0.0, &mut best);
    best
}

/// Task-count cap for [`brute_force_fmax`].
pub const BRUTE_FORCE_LIMIT: usize = 12;

fn search(inst: &Instance, i: usize, busy: &mut [f64], fmax_so_far: f64, best: &mut f64) {
    if fmax_so_far >= *best {
        return; // prune
    }
    if i == inst.len() {
        *best = fmax_so_far;
        return;
    }
    let task = inst.tasks()[i];
    let set = &inst.sets()[i];
    for &j in set.as_slice() {
        let start = task.release.max(busy[j]);
        let completion = start + task.ptime;
        let saved = busy[j];
        busy[j] = completion;
        search(
            inst,
            i + 1,
            busy,
            fmax_so_far.max(completion - task.release),
            best,
        );
        busy[j] = saved;
    }
}

/// Polynomial lower bound on the offline optimum `F*max`.
///
/// Combines:
/// 1. `F* ≥ max pᵢ` (paper's bound (3));
/// 2. for every machine subset `S` appearing as a processing set (plus the
///    full set), and every release window `[r_a, r_b]`: the tasks released
///    in the window whose processing set is contained in `S` must all
///    finish by `r_b + F*` using only `|S|` machines, so
///    `F* ≥ W/|S| − (r_b − r_a)`. The best window per subset is found with
///    a Kadane-style sweep in `O(n)` after sorting.
pub fn fmax_lower_bound(inst: &Instance) -> Time {
    if inst.is_empty() {
        return 0.0;
    }
    let mut bound = inst.pmax();

    // Candidate subsets: distinct processing sets + the full machine set.
    let mut subsets: Vec<ProcSet> = vec![ProcSet::full(inst.machines())];
    for s in inst.sets() {
        if !subsets.contains(s) {
            subsets.push(s.clone());
        }
    }

    for subset in &subsets {
        let cap = subset.len() as f64;
        // Tasks that *must* run inside `subset`.
        let tasks: Vec<(Time, Time)> = inst
            .iter()
            .filter(|(_, _, set)| set.is_subset_of(subset))
            .map(|(_, t, _)| (t.release, t.ptime))
            .collect();
        if tasks.is_empty() {
            continue;
        }
        // Kadane sweep over windows [r_a, r_b]:
        //   LB = max_{a ≤ b}  (Σ_{i=a..b} pᵢ)/cap + r_a − r_b
        // Maintain best_a = max over a of (r_a − prefix(a−1)/cap).
        let mut prefix = 0.0_f64;
        let mut best_a = f64::NEG_INFINITY;
        for &(r, p) in &tasks {
            // Candidate start: window beginning at this task.
            best_a = best_a.max(r - prefix / cap);
            prefix += p;
            bound = bound.max(prefix / cap - r + best_a);
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::eft;
    use crate::tiebreak::TieBreak;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::task::Task;

    #[test]
    fn unit_opt_simple_cases() {
        // 3 simultaneous unit tasks, 3 machines → F* = 1.
        let mut b = InstanceBuilder::new(3);
        for _ in 0..3 {
            b.push_unit(0.0, ProcSet::full(3));
        }
        let inst = b.build().unwrap();
        assert_eq!(optimal_unit_fmax(&inst), 1.0);

        // 3 simultaneous unit tasks, 1 machine → F* = 3.
        let mut b = InstanceBuilder::new(1);
        for _ in 0..3 {
            b.push_unit(0.0, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        assert_eq!(optimal_unit_fmax(&inst), 3.0);
    }

    #[test]
    fn weighted_opt_reduces_to_unweighted_at_unit_weight() {
        for seed in 0..6u64 {
            let mut b = InstanceBuilder::new(3);
            for i in 0..14u64 {
                let x = flowsched_stats::rng::splitmix64(i + 100 * seed);
                let release = (x % 6) as f64;
                let machine = ((x >> 16) % 3) as usize;
                let set = if x & 1 == 0 {
                    ProcSet::full(3)
                } else {
                    ProcSet::singleton(machine)
                };
                b.push_unit(release, set);
            }
            let inst = b.build().unwrap();
            assert_eq!(
                optimal_unit_weighted_fmax(&inst),
                optimal_unit_fmax(&inst),
                "weighted oracle diverged at weight 1 (seed {seed})"
            );
        }
    }

    #[test]
    fn weighted_opt_hand_computed_case() {
        // One machine, two simultaneous unit tasks: one must wait (F=2).
        // With weights (4, 1) the heavy task goes first: max(4·1, 1·2) = 4.
        // Serving the light one first would cost max(1·1, 4·2) = 8.
        let mut b = InstanceBuilder::new(1);
        b.push(Task::unit(0.0).with_weight(4.0), ProcSet::full(1));
        b.push(Task::unit(0.0), ProcSet::full(1));
        let inst = b.build().unwrap();
        assert_eq!(optimal_unit_weighted_fmax(&inst), 4.0);
        assert_eq!(brute_force_weighted_fmax(&inst), 4.0);
    }

    #[test]
    fn weighted_opt_matches_brute_force_on_small_instances() {
        for seed in 0..8u64 {
            let mut b = InstanceBuilder::new(2);
            for i in 0..7u64 {
                let x = flowsched_stats::rng::splitmix64(7 * i + 31 * seed + 1);
                let release = (x % 4) as f64;
                let weight = 1.0 + ((x >> 8) % 4) as f64;
                let machine = ((x >> 24) % 2) as usize;
                let set = if x & 2 == 0 {
                    ProcSet::full(2)
                } else {
                    ProcSet::singleton(machine)
                };
                b.push(Task::unit(release).with_weight(weight), set);
            }
            let inst = b.build().unwrap();
            assert_eq!(
                optimal_unit_weighted_fmax(&inst),
                brute_force_weighted_fmax(&inst),
                "weighted oracle diverged from brute force (seed {seed})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive weights")]
    fn weighted_opt_rejects_non_positive_weights() {
        let mut b = InstanceBuilder::new(1);
        b.push(Task::unit(0.0).with_weight(0.0), ProcSet::full(1));
        let inst = b.build().unwrap();
        let _ = optimal_unit_weighted_fmax(&inst);
    }

    #[test]
    fn unit_opt_with_restrictions() {
        // Two tasks restricted to M1, one task restricted to M2.
        let mut b = InstanceBuilder::new(2);
        b.push_unit(0.0, ProcSet::singleton(0));
        b.push_unit(0.0, ProcSet::singleton(0));
        b.push_unit(0.0, ProcSet::singleton(1));
        let inst = b.build().unwrap();
        assert_eq!(optimal_unit_fmax(&inst), 2.0);
    }

    #[test]
    fn unit_opt_uses_staggered_releases() {
        // Unit tasks arriving one per step on one machine: F* = 1.
        let mut b = InstanceBuilder::new(1);
        for t in 0..5 {
            b.push_unit(t as f64, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        assert_eq!(optimal_unit_fmax(&inst), 1.0);
    }

    #[test]
    fn unit_opt_matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..60 {
            let m = rng.random_range(1..=3);
            let n = rng.random_range(1..=7);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..n {
                let r = rng.random_range(0..4) as f64;
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                b.push_unit(r, ProcSet::interval(lo, hi));
            }
            let inst = b.build().unwrap();
            let exact = brute_force_fmax(&inst);
            let matched = optimal_unit_fmax(&inst);
            assert!(
                (exact - matched).abs() < 1e-9,
                "trial {trial}: brute {exact} vs matching {matched}"
            );
        }
    }

    #[test]
    fn brute_force_handles_processing_sets() {
        // Long task must go to its only machine; short ones elsewhere.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 4.0), ProcSet::singleton(0));
        b.push(Task::new(0.0, 1.0), ProcSet::full(2));
        b.push(Task::new(0.0, 1.0), ProcSet::full(2));
        let inst = b.build().unwrap();
        assert_eq!(brute_force_fmax(&inst), 4.0);
    }

    #[test]
    fn lower_bound_is_sound_and_useful() {
        // The bound must never exceed the optimum; on a saturated burst it
        // should be tight-ish.
        let mut b = InstanceBuilder::new(2);
        for _ in 0..6 {
            b.push_unit(0.0, ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let lb = fmax_lower_bound(&inst);
        let opt = brute_force_fmax(&inst);
        assert!(lb <= opt + 1e-9);
        // 6 unit tasks / 2 machines, simultaneous: W/m = 3 = OPT.
        assert_eq!(lb, 3.0);
        assert_eq!(opt, 3.0);
    }

    #[test]
    fn lower_bound_uses_subset_capacity() {
        // 4 unit tasks at t=0 all restricted to machine M1 of a 4-machine
        // cluster: the full-set bound gives 1, the subset bound gives 4.
        let mut b = InstanceBuilder::new(4);
        for _ in 0..4 {
            b.push_unit(0.0, ProcSet::singleton(0));
        }
        let inst = b.build().unwrap();
        assert_eq!(fmax_lower_bound(&inst), 4.0);
    }

    #[test]
    fn lower_bound_window_beats_naive_total() {
        // A quiet prefix then a burst: windowed bound sees the burst.
        let mut b = InstanceBuilder::new(1);
        b.push_unit(0.0, ProcSet::full(1));
        for _ in 0..5 {
            b.push_unit(100.0, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        // Burst window [100,100]: W=5 on 1 machine → F* ≥ 5.
        assert_eq!(fmax_lower_bound(&inst), 5.0);
    }

    #[test]
    fn lower_bound_never_exceeds_eft_result() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..40 {
            let m = rng.random_range(1..=4);
            let n = rng.random_range(1..=30);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..n {
                let r = rng.random_range(0..10) as f64;
                let p = 0.25 * rng.random_range(1..=8) as f64;
                b.push_unrestricted(Task::new(r, p));
            }
            let inst = b.build().unwrap();
            let lb = fmax_lower_bound(&inst);
            let achieved = eft(&inst, TieBreak::Min).fmax(&inst);
            assert!(lb <= achieved + 1e-9, "lb {lb} > EFT {achieved}");
        }
    }

    #[test]
    fn empty_instance_bounds() {
        let inst = Instance::unrestricted(2, vec![]).unwrap();
        assert_eq!(fmax_lower_bound(&inst), 0.0);
        assert_eq!(optimal_unit_fmax(&inst), 0.0);
        assert_eq!(brute_force_fmax(&inst), 0.0);
    }

    #[test]
    #[should_panic(expected = "unit tasks")]
    fn unit_opt_rejects_general_tasks() {
        let inst = Instance::unrestricted(1, vec![Task::new(0.0, 2.0)]).unwrap();
        let _ = optimal_unit_fmax(&inst);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn brute_force_rejects_large_instances() {
        let mut b = InstanceBuilder::new(2);
        for _ in 0..20 {
            b.push_unit(0.0, ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let _ = brute_force_fmax(&inst);
    }
}
