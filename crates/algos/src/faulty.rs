//! Availability-aware EFT dispatch and the faulty engine entry points.
//!
//! The fault layer is two halves. `flowsched_core::fault` owns the
//! *stream* half: [`FaultyStream`] shifts releases by the dispatch
//! latency, stretches processing times by the slowest alive member's
//! speed factor, restricts each arrival's set to the machines alive at
//! its release, and re-queues stranded tasks in arrival order. This
//! module owns the *dispatch* half: [`FaultyEftState`] answers the
//! paper's Equation (2) against machine availability — the candidate
//! start on machine `j` is the earliest instant `≥ max(rᵢ, C_j)` whose
//! whole service window `[s, s + pᵢ)` avoids `j`'s outages
//! ([`FaultPlan::earliest_fit`]) — so no task ever starts on, or runs
//! across, a dead machine (the checkpoint-free model: the dispatcher
//! knows the fault trace and schedules around it, the way a cluster
//! manager drains a machine ahead of planned maintenance).
//!
//! **Fault-free equivalence.** With no outages `earliest_fit(j, t, p) =
//! t`, so the candidate start is `max(rᵢ, C_j)` and the argmin tie set
//! collapses to exactly the set `eft::scan_ties` computes: when every
//! `C_j > rᵢ` the candidates are the `C_j` themselves (argmin-C mode),
//! and once any `C_j ≤ rᵢ` the minimum is `rᵢ` and the ties are all
//! `{j : C_j ≤ rᵢ}` in ascending order (release mode). One
//! [`Breaker::pick`](crate::tiebreak::Breaker) call per dispatch keeps
//! RNG draw counts identical too, which is why a fault-free
//! [`FaultPlan`] reproduces the plain engine *bitwise* — schedule and
//! recorder trace — as `tests/fault_injection.rs` pins.
//!
//! [`run_immediate_faulty`] composes the halves and first replays the
//! plan's crash/recover transitions into the recorder
//! ([`Recorder::machine_crash`]/[`machine_recover`]), so outage spans
//! reach exported traces; [`run_immediate_faulty_sharded`] is the
//! cluster-parallel form, handing each shard the [`FaultPlan::slice`]
//! of its machine block and committing through the engine's shared
//! `CommitTracker` so sequential and sharded runs stay bitwise-equal
//! for deterministic tie-breaks.
//!
//! [`machine_recover`]: Recorder::machine_recover

use flowsched_core::compact::ProcSetRef;
use flowsched_core::fault::{FaultEventKind, FaultPlan, FaultyStream};
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::shard::ShardPlan;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_core::time::Time;
use flowsched_obs::Recorder;
use flowsched_parallel::sharded::run_sharded;

use crate::eft::ImmediateDispatcher;
use crate::engine::{run_immediate, CommitTracker, DispatchSink, ShardedConfig};
use crate::registry::{PolicyId, PolicySpec};
use crate::soa::CompletionBank;
use crate::tiebreak::{Breaker, TieBreak};

/// Replays the plan's crash/recover transitions into the recorder, so
/// outage spans appear in exported traces. The trace is record-ordered,
/// not time-ordered (the same convention projected completions already
/// use), so emitting the whole fault timeline up front is sound.
fn record_lifecycle<R: Recorder>(plan: &FaultPlan, rec: &mut R) {
    if R::ENABLED {
        for ev in plan.events() {
            match ev.kind {
                FaultEventKind::Crash => rec.machine_crash(ev.machine as u32, ev.at),
                FaultEventKind::Recover => rec.machine_recover(ev.machine as u32, ev.at),
            }
        }
    }
}

/// Incremental EFT state that schedules around a [`FaultPlan`]'s
/// outages (see the module docs for the model and the fault-free
/// equivalence argument). Owns its plan so per-shard instances can move
/// onto worker threads.
#[derive(Debug)]
pub struct FaultyEftState {
    plan: FaultPlan,
    completions: CompletionBank,
    breaker: Breaker,
    /// Scratch buffer for the tie set, reused across dispatches.
    ties: Vec<usize>,
}

impl FaultyEftState {
    /// Fresh state for the machines of `plan`, all idle at time 0.
    ///
    /// # Panics
    /// Panics when the plan covers zero machines.
    pub fn new(plan: FaultPlan, policy: TieBreak) -> Self {
        let m = plan.machines();
        assert!(m > 0, "need at least one machine");
        FaultyEftState {
            plan,
            completions: CompletionBank::new(m),
            breaker: policy.breaker(),
            ties: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.completions.len()
    }

    /// Current completion time of each machine under the commitments
    /// made so far.
    pub fn completions(&self) -> &[Time] {
        self.completions.values()
    }

    /// Dispatches one task: for each member `j` the candidate start is
    /// `earliest_fit(j, max(release, C_j), ptime)`; the argmin tie set
    /// (ascending machine order) goes to the tie-break, exactly one RNG
    /// draw for `Rand`.
    ///
    /// # Panics
    /// Panics on an empty set or a member outside the plan.
    pub fn dispatch(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "processing sets are non-empty");
        self.ties.clear();
        let mut best = Time::INFINITY;
        let completions = self.completions.values();
        for j in set.iter() {
            let ready = if task.release > completions[j] {
                task.release
            } else {
                completions[j]
            };
            let s = self.plan.earliest_fit(j, ready, task.ptime);
            if s < best {
                best = s;
                self.ties.clear();
                self.ties.push(j);
            } else if s == best {
                self.ties.push(j);
            }
        }
        let u = self.breaker.pick(&self.ties);
        self.completions.set(u, best + task.ptime);
        Assignment::new(MachineId(u), best)
    }
}

impl ImmediateDispatcher for FaultyEftState {
    fn machine_count(&self) -> usize {
        self.machines()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }
}

/// Drives availability-aware EFT over `stream` under `plan`: replays
/// the plan's lifecycle events into the recorder, wraps the stream in a
/// [`FaultyStream`], and runs the standard immediate engine with a
/// [`FaultyEftState`]. With a fault-free plan this is bitwise-identical
/// to `run_immediate` over the bare stream with a plain
/// [`EftState`](crate::eft::EftState).
///
/// # Panics
/// Panics when the stream and plan disagree on the machine count, plus
/// everything [`run_immediate`] panics on.
pub fn run_immediate_faulty<S, R, K>(
    stream: S,
    plan: &FaultPlan,
    policy: TieBreak,
    rec: &mut R,
    sink: &mut K,
) where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    assert_eq!(
        stream.machines(),
        plan.machines(),
        "stream and fault plan disagree on machine count"
    );
    record_lifecycle(plan, rec);
    let mut disp = PolicySpec::new(PolicyId::Eft { tie: policy }).build_faulty(plan.clone());
    run_immediate(FaultyStream::new(stream, plan), &mut disp, rec, sink);
}

/// [`run_immediate_faulty`] collecting the full [`Schedule`].
pub fn faulty_schedule<S, R>(stream: S, plan: &FaultPlan, policy: TieBreak, rec: &mut R) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_immediate_faulty(stream, plan, policy, rec, &mut assignments);
    Schedule::new(assignments)
}

/// The cluster-parallel form of [`run_immediate_faulty`]: the faulty
/// stream runs on the calling thread (restriction and re-queueing are
/// part of routing), each shard's worker owns a [`FaultyEftState`] over
/// the [`FaultPlan::slice`] of its machine block, and commits replay in
/// global arrival order through the engine's shared commit path —
/// bitwise-identical to the sequential faulty run for `Min`/`Max`
/// tie-breaks at every thread count ([`TieBreak::for_shard`] gives
/// multi-shard `Rand` runs per-shard streams, deterministic and
/// thread-count invariant but distinct from the sequential draw order).
///
/// # Panics
/// Panics when the stream and plan disagree on the machine count, if an
/// arrival's restricted set straddles a shard boundary, or if a worker
/// dies.
pub fn run_immediate_faulty_sharded<S, R, K>(
    stream: S,
    plan: &FaultPlan,
    policy: TieBreak,
    shard_plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
    sink: &mut K,
) where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    assert_eq!(
        stream.machines(),
        plan.machines(),
        "stream and fault plan disagree on machine count"
    );
    record_lifecycle(plan, rec);
    let mut tracker = CommitTracker::new(R::ENABLED, stream.machines());
    run_sharded(
        FaultyStream::new(stream, plan),
        shard_plan,
        cfg,
        |s| {
            let local = plan.slice(shard_plan.start_of(s), shard_plan.len_of(s));
            let mut state = PolicySpec::new(PolicyId::Eft { tie: policy })
                .for_shard(s)
                .build_faulty(local);
            move |task: Task, set: ProcSetRef<'_>| state.dispatch_task(task, set)
        },
        |seq, task, a| tracker.commit(seq, task, a, rec, sink),
    );
}

/// [`run_immediate_faulty_sharded`] collecting the full [`Schedule`].
pub fn faulty_schedule_sharded<S, R>(
    stream: S,
    plan: &FaultPlan,
    policy: TieBreak,
    shard_plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_immediate_faulty_sharded(stream, plan, policy, shard_plan, cfg, rec, &mut assignments);
    Schedule::new(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::EftState;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::stream::InstanceStream;
    use flowsched_obs::{MemoryRecorder, NoopRecorder};

    fn small_instance() -> flowsched_core::Instance {
        let mut b = InstanceBuilder::new(3);
        for i in 0..24 {
            let lo = i % 3;
            b.push_unit(i as f64 * 0.4, ProcSet::interval(lo, (lo + 1).min(2)));
        }
        b.build().unwrap()
    }

    #[test]
    fn fault_free_plan_matches_plain_eft_bitwise() {
        let inst = small_instance();
        let plan = FaultPlan::none(3);
        for policy in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 7 }] {
            let mut rec_a = MemoryRecorder::with_defaults(3);
            let faulty = faulty_schedule(InstanceStream::new(&inst), &plan, policy, &mut rec_a);
            let mut rec_b = MemoryRecorder::with_defaults(3);
            let mut state = EftState::new(3, policy);
            let plain = crate::engine::immediate_schedule(
                InstanceStream::new(&inst),
                &mut state,
                &mut rec_b,
            );
            assert_eq!(faulty, plain);
            assert_eq!(rec_a.trace().to_vec(), rec_b.trace().to_vec());
        }
    }

    #[test]
    fn dispatch_never_starts_inside_an_outage() {
        let inst = small_instance();
        let plan = FaultPlan::none(3)
            .with_outage(0, 1.0, 4.0)
            .with_outage(1, 2.0, 3.0)
            .with_outage(2, 0.5, 6.0);
        let sched = faulty_schedule(
            InstanceStream::new(&inst),
            &plan,
            TieBreak::Min,
            &mut NoopRecorder,
        );
        for (t, a) in inst.tasks().iter().zip(sched.assignments()) {
            let j = a.machine.index();
            assert!(
                plan.earliest_fit(j, a.start, t.ptime) == a.start,
                "task on machine {j} starts at {} inside an outage",
                a.start
            );
        }
    }

    #[test]
    fn stranded_work_waits_for_recovery() {
        // One machine, down [0, 5): the t=0 task must start at 5.
        let mut b = InstanceBuilder::new(1);
        b.push_unit(0.0, ProcSet::full(1));
        let inst = b.build().unwrap();
        let plan = FaultPlan::none(1).with_outage(0, 0.0, 5.0);
        let sched = faulty_schedule(
            InstanceStream::new(&inst),
            &plan,
            TieBreak::Min,
            &mut NoopRecorder,
        );
        assert_eq!(sched.assignments()[0].start, 5.0);
    }
}
