//! Structure-of-arrays machine state for the hot dispatch path.
//!
//! The per-arrival argmin of the paper's Equation (2) is a pure sweep
//! over machine completion times, and its throughput is bounded by how
//! fast those times stream out of the cache. This module owns the
//! layout that feeds the sweep:
//!
//! - [`CompletionBank`]: the per-machine completion times in a
//!   cache-line-aligned, `+∞`-padded lane array. Each [`LANE`]-wide
//!   block occupies exactly one 64-byte cache line, the flat view is a
//!   plain `&[f64]` whose length is a multiple of [`LANE`], and the
//!   padding is `+∞` — neutral under `min` — so vectorized reductions
//!   never need a tail guard when they run over whole lanes.
//! - The 8-wide scan kernels ([`min_in`], [`collect_le`],
//!   [`gather_min`], [`gather_collect_le`]) and the fused
//!   [`scan_ties_simd`] built from them. These are *portable* SIMD:
//!   explicit 8-element chunks with independent accumulators that LLVM
//!   autovectorizes to `vminpd`-class code on stable Rust — no nightly
//!   `std::simd`, no intrinsics, no target-feature gates. The scalar
//!   one-pass scan (`eft::scan_ties`) stays behind as the proptest
//!   oracle; [`ScanImpl`] is the seam that selects between them.
//! - [`SoaMinHeap`]: the cluster-heap of the indexed kernel with its
//!   keys split into a dense `f64` array — sift comparisons touch the
//!   key lane only, instead of dragging `(f64, usize)` pairs through
//!   the cache.
//!
//! **Tie-order equivalence** (why the two-pass vectorized scan is
//! bitwise-identical to the one-pass scalar scan): Equation (2)'s tie
//! set is `U'ᵢ = {j ∈ Mᵢ : C_j ≤ t'min}` with
//! `t'min = max(rᵢ, min_j C_j)`. The scalar scan folds the minimum and
//! the collection into one pass with a "released-mode" switch; but in
//! *either* mode its final contents are exactly the members with
//! `C_j ≤ t'min`, in ascending member order (argmin mode: `t'min` is
//! the running minimum; release mode: `t'min = rᵢ`). So computing
//! `min_j C_j` first (vectorized, order-free — `min` is associative and
//! commutative over non-NaN floats, and `+∞` padding is neutral) and
//! then collecting `C_j ≤ max(rᵢ, min)` in member order reproduces the
//! identical tie vector, hence identical `Breaker::pick` behavior and
//! RNG draw counts. `tests/simd_scan.rs` pins this property.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::time::Time;

/// Lane width of the SoA layout: 8 × `f64` = one 64-byte cache line.
pub const LANE: usize = 8;

/// Which tie-scan implementation [`EftState`](crate::eft::EftState) and
/// the indexed kernel's fallback path run. Both produce bitwise-identical
/// tie sets (see the module docs); the choice is purely a performance
/// seam, kept so the scalar oracle stays reachable from benches and
/// property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanImpl {
    /// The 8-wide two-pass scan over the padded lane array.
    #[default]
    Simd,
    /// The one-pass scalar member scan (`eft::scan_ties`) — the oracle.
    Scalar,
}

/// One cache line of completion times. `repr(C)` over `[f64; LANE]`
/// (no padding: 8 × 8 bytes fills the 64-byte alignment exactly), so a
/// slice of lanes reinterprets as a flat `f64` slice.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct Lane([Time; LANE]);

/// Machine completion times `C_j` in structure-of-arrays form: a
/// cache-line-aligned `f64` array padded to a multiple of [`LANE`] with
/// `+∞` (neutral under `min`). The first [`len`](CompletionBank::len)
/// entries are the live machines.
#[derive(Debug, Clone)]
pub struct CompletionBank {
    lanes: Vec<Lane>,
    len: usize,
}

impl CompletionBank {
    /// Bank for `m` idle machines (all completions 0), padding `+∞`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "need at least one machine");
        let lanes = m.div_ceil(LANE);
        let mut bank = CompletionBank {
            lanes: vec![Lane([f64::INFINITY; LANE]); lanes],
            len: m,
        };
        for v in &mut bank.padded_mut()[..m] {
            *v = 0.0;
        }
        bank
    }

    /// Bank seeded from an existing completion slice (used by tests and
    /// benches to drive the scan kernels on arbitrary data).
    pub fn from_completions(vals: &[Time]) -> Self {
        let mut bank = CompletionBank::new(vals.len());
        bank.padded_mut()[..vals.len()].copy_from_slice(vals);
        bank
    }

    /// Number of live machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bank covers zero machines (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live completion times — first `len` entries of the flat view.
    #[inline]
    pub fn values(&self) -> &[Time] {
        &self.padded()[..self.len]
    }

    /// The full padded flat view: length a multiple of [`LANE`], tail
    /// filled with `+∞`, start 64-byte aligned.
    #[inline]
    pub fn padded(&self) -> &[Time] {
        // SAFETY: `Lane` is `repr(C)` over `[Time; LANE]` with size
        // LANE * 8 = 64 bytes (the alignment raises only the start
        // address, not the stride), so `self.lanes` is layout-compatible
        // with `lanes.len() * LANE` contiguous `Time`s.
        unsafe {
            std::slice::from_raw_parts(self.lanes.as_ptr().cast::<Time>(), self.lanes.len() * LANE)
        }
    }

    /// Mutable counterpart of [`padded`](CompletionBank::padded).
    #[inline]
    fn padded_mut(&mut self) -> &mut [Time] {
        // SAFETY: as in `padded`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.lanes.as_mut_ptr().cast::<Time>(),
                self.lanes.len() * LANE,
            )
        }
    }

    /// Completion time of machine `j`.
    ///
    /// # Panics
    /// Panics if `j >= len`.
    #[inline]
    pub fn get(&self, j: usize) -> Time {
        self.values()[j]
    }

    /// Sets machine `j`'s completion time.
    ///
    /// # Panics
    /// Panics if `j >= len`.
    #[inline]
    pub fn set(&mut self, j: usize, v: Time) {
        let len = self.len;
        assert!(j < len, "machine index {j} out of range for {len} machines");
        self.padded_mut()[j] = v;
    }
}

/// `min` over a completion slice, 8-wide: independent per-position
/// accumulators over exact chunks (LLVM lowers the inner loop to packed
/// `min`), scalar tail. `+∞` on an empty slice.
#[inline]
pub fn min_in(vals: &[Time]) -> Time {
    let mut acc = [f64::INFINITY; LANE];
    let mut chunks = vals.chunks_exact(LANE);
    for c in &mut chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a = a.min(v);
        }
    }
    let mut best = chunks
        .remainder()
        .iter()
        .fold(f64::INFINITY, |b, &v| b.min(v));
    for a in acc {
        best = best.min(a);
    }
    best
}

/// Appends `base + offset` for every `vals[offset] ≤ bound`, in
/// ascending order — the collection half of the two-pass tie scan.
///
/// Branchless compaction: every candidate index is stored
/// unconditionally and the write cursor advances by the predicate, so
/// the loop carries no data-dependent branch (the `C_j ≤ bound` hit
/// pattern is effectively random in tie-heavy workloads, and a
/// mispredicting `push` loop costs more than the stores it saves).
#[inline]
pub fn collect_le(vals: &[Time], base: usize, bound: Time, out: &mut Vec<usize>) {
    let start = out.len();
    out.reserve(vals.len());
    // SAFETY: `reserve` guarantees capacity for `start + vals.len()`
    // entries; the cursor `k` never exceeds `start + offset + 1`, every
    // slot below `k` is initialized by the unconditional store before
    // the cursor can move past it, and `set_len(k)` only exposes those
    // initialized slots.
    unsafe {
        let ptr = out.as_mut_ptr();
        let mut k = start;
        for (offset, &v) in vals.iter().enumerate() {
            *ptr.add(k) = base + offset;
            k += (v <= bound) as usize;
        }
        out.set_len(k);
    }
}

/// `min` over the gathered completions of an explicit member slice,
/// 8-wide unrolled so the loads pipeline.
#[inline]
pub fn gather_min(vals: &[Time], members: &[usize]) -> Time {
    let mut acc = [f64::INFINITY; LANE];
    let mut chunks = members.chunks_exact(LANE);
    for c in &mut chunks {
        for (a, &j) in acc.iter_mut().zip(c) {
            *a = a.min(vals[j]);
        }
    }
    let mut best = chunks
        .remainder()
        .iter()
        .fold(f64::INFINITY, |b, &j| b.min(vals[j]));
    for a in acc {
        best = best.min(a);
    }
    best
}

/// Appends every member `j` with `vals[j] ≤ bound`, in slice (=
/// ascending) order. Branchless compaction as in [`collect_le`].
#[inline]
pub fn gather_collect_le(vals: &[Time], members: &[usize], bound: Time, out: &mut Vec<usize>) {
    let start = out.len();
    out.reserve(members.len());
    // SAFETY: as in `collect_le` — capacity reserved up front, the
    // cursor trails the unconditional stores, `set_len` exposes only
    // initialized slots.
    unsafe {
        let ptr = out.as_mut_ptr();
        let mut k = start;
        for &j in members {
            *ptr.add(k) = j;
            k += (vals[j] <= bound) as usize;
        }
        out.set_len(k);
    }
}

/// The vectorized tie scan: Equation (2) as two passes over the padded
/// lane array — an 8-wide min reduction, then an ascending collection
/// of `{j ∈ Mᵢ : C_j ≤ max(release, min)}`. Bitwise-identical to the
/// scalar `eft::scan_ties` (module docs sketch the proof; the proptest
/// in `tests/simd_scan.rs` pins it).
///
/// `padded` is the bank's [`CompletionBank::padded`] view; members of
/// `set` must lie below the bank's live length.
pub fn scan_ties_simd(padded: &[Time], set: ProcSetRef<'_>, release: Time, ties: &mut Vec<usize>) {
    ties.clear();
    match set {
        ProcSetRef::Interval { lo, hi } => {
            let vals = &padded[lo..=hi];
            let bound = release.max(min_in(vals));
            collect_le(vals, lo, bound, ties);
        }
        ProcSetRef::Prefix { len } => {
            let vals = &padded[..len];
            let bound = release.max(min_in(vals));
            collect_le(vals, 0, bound, ties);
        }
        ProcSetRef::Ring { start, len, m } => {
            // Ascending members: the wrapped low run [0, start+len−m−1],
            // then the high run [start, m−1].
            let low = &padded[..start + len - m];
            let high = &padded[start..m];
            let bound = release.max(min_in(low).min(min_in(high)));
            collect_le(low, 0, bound, ties);
            collect_le(high, start, bound, ties);
        }
        ProcSetRef::Explicit(members) => {
            let bound = release.max(gather_min(padded, members));
            gather_collect_le(padded, members, bound, ties);
        }
    }
}

/// A binary min-heap of `(completion, machine)` entries in
/// structure-of-arrays form: the `f64` keys in one dense array (what
/// every sift comparison reads), the machine ids in a parallel `u32`
/// array. Strict total order `(key, machine)` — machine ids are unique
/// within a heap — so the sequence of peeks and pops is
/// layout-independent, which is what lets this replace the AoS
/// `BinaryHeap<Reverse<Entry>>` without disturbing the indexed kernel's
/// bitwise equivalence.
#[derive(Debug, Clone, Default)]
pub struct SoaMinHeap {
    keys: Vec<Time>,
    machines: Vec<u32>,
}

impl SoaMinHeap {
    /// Empty heap.
    pub fn new() -> Self {
        SoaMinHeap::default()
    }

    /// Heap over `(key, machine)` pairs, heapified in O(n).
    pub fn from_entries(entries: impl IntoIterator<Item = (Time, usize)>) -> Self {
        let mut heap = SoaMinHeap::new();
        for (k, j) in entries {
            heap.keys.push(k);
            heap.machines.push(j as u32);
        }
        let n = heap.keys.len();
        for i in (0..n / 2).rev() {
            heap.sift_down(i);
        }
        heap
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The minimum `(key, machine)` entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<(Time, usize)> {
        (!self.keys.is_empty()).then(|| (self.keys[0], self.machines[0] as usize))
    }

    /// Inserts an entry.
    pub fn push(&mut self, key: Time, machine: usize) {
        self.keys.push(key);
        self.machines.push(machine as u32);
        self.sift_up(self.keys.len() - 1);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(Time, usize)> {
        let top = self.peek()?;
        let last = self.keys.len() - 1;
        self.keys.swap(0, last);
        self.machines.swap(0, last);
        self.keys.pop();
        self.machines.pop();
        if !self.keys.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    /// Replaces the top entry's key (the machine stays) and restores
    /// heap order — the one-sift form of pop-then-push that the indexed
    /// kernel's self-healing protocol uses to re-key a stale top.
    ///
    /// # Panics
    /// Panics on an empty heap.
    pub fn rekey_top(&mut self, key: Time) {
        assert!(!self.keys.is_empty(), "rekey_top on an empty heap");
        self.keys[0] = key;
        self.sift_down(0);
    }

    /// Strict `(key, machine)` order.
    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, kb) = (self.keys[a], self.keys[b]);
        ka < kb || (ka == kb && self.machines[a] < self.machines[b])
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.keys.swap(a, b);
        self.machines.swap(a, b);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !self.less(i, parent) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.keys.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.less(l, smallest) {
                smallest = l;
            }
            if r < n && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bank_is_lane_aligned_and_padded_with_infinity() {
        for m in [1usize, 7, 8, 9, 63, 64, 100] {
            let bank = CompletionBank::new(m);
            assert_eq!(bank.len(), m);
            assert_eq!(bank.padded().len() % LANE, 0);
            assert_eq!(bank.padded().as_ptr() as usize % 64, 0, "m={m}");
            assert!(bank.values().iter().all(|&v| v == 0.0));
            assert!(bank.padded()[m..].iter().all(|&v| v == f64::INFINITY));
        }
    }

    #[test]
    fn bank_get_set_round_trip() {
        let mut bank = CompletionBank::new(5);
        bank.set(3, 2.5);
        assert_eq!(bank.get(3), 2.5);
        assert_eq!(bank.values(), &[0.0, 0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_set_rejects_out_of_range() {
        CompletionBank::new(3).set(3, 1.0);
    }

    #[test]
    fn lane_min_matches_scalar_fold_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for n in [0usize, 1, 7, 8, 9, 64, 100, 1000] {
            let vals: Vec<Time> = (0..n)
                .map(|_| rng.random_range(0..40) as f64 * 0.5)
                .collect();
            let expect = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(min_in(&vals), expect, "n={n}");
        }
    }

    #[test]
    fn gather_min_matches_scalar_fold_on_random_subsets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let vals: Vec<Time> = (0..200).map(|_| rng.random_range(0..30) as f64).collect();
        for k in [1usize, 3, 8, 17, 100] {
            let members: Vec<usize> = (0..k).map(|i| i * 200 / k).collect();
            let expect = members
                .iter()
                .map(|&j| vals[j])
                .fold(f64::INFINITY, f64::min);
            assert_eq!(gather_min(&vals, &members), expect, "k={k}");
        }
    }

    #[test]
    fn soa_heap_pops_in_total_order() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let entries: Vec<(Time, usize)> = (0..64)
            .map(|j| (rng.random_range(0..6) as f64, j))
            .collect();
        let mut heap = SoaMinHeap::from_entries(entries.iter().copied());
        let mut expect = entries.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut got = Vec::new();
        while let Some(e) = heap.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn soa_heap_rekey_top_matches_pop_push() {
        // The heaps' observable behavior (pop order) must agree whether
        // the top is re-keyed in place or popped and re-pushed.
        let entries = [(1.0, 4), (2.0, 1), (2.0, 7), (3.0, 2)];
        let mut a = SoaMinHeap::from_entries(entries);
        let mut b = SoaMinHeap::from_entries(entries);
        a.rekey_top(2.5);
        let (_, j) = b.pop().unwrap();
        b.push(2.5, j);
        let drain = |mut h: SoaMinHeap| {
            let mut out = Vec::new();
            while let Some(e) = h.pop() {
                out.push(e);
            }
            out
        };
        assert_eq!(drain(a), drain(b));
    }

    #[test]
    fn simd_scan_matches_scalar_oracle_on_every_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let m = 50;
        for _ in 0..200 {
            let vals: Vec<Time> = (0..m).map(|_| rng.random_range(0..5) as f64).collect();
            let bank = CompletionBank::from_completions(&vals);
            let release = rng.random_range(0..5) as f64 - 0.5;
            let members: Vec<usize> = (0..m).filter(|_| rng.random_bool(0.4)).collect();
            let sets = [
                ProcSetRef::interval(10, 39),
                ProcSetRef::prefix(17),
                ProcSetRef::ring(40, 20, m),
                ProcSetRef::Explicit(&members),
            ];
            for set in sets {
                if set.is_empty() {
                    continue;
                }
                let mut simd = Vec::new();
                scan_ties_simd(bank.padded(), set, release, &mut simd);
                let mut scalar = Vec::new();
                crate::eft::scan_ties(&vals, set.iter(), release, &mut scalar);
                assert_eq!(simd, scalar, "set {set:?} release {release}");
            }
        }
    }
}
