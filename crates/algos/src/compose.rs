//! Theorem 6: composing schedulers over disjoint processing sets.
//!
//! With a *disjoint* family (any two sets equal or disjoint), the
//! instance splits into independent subinstances — one per distinct set —
//! and any `f(m)`-competitive algorithm for `P | online-rᵢ | Fmax`
//! applied per subcluster yields a `max f(|Mᵤ|)`-competitive algorithm
//! for the whole problem. Corollary 1 instantiates this with FIFO/EFT
//! (`f(m) = 3 − 2/m`).
//!
//! [`compose_disjoint`] implements the construction generically: it
//! splits, delegates each subinstance to a caller-provided scheduler
//! (which sees a *dense* subcluster, machines renumbered `0..|Mᵤ|`), and
//! stitches the schedules back together.

use flowsched_core::error::CoreError;
use flowsched_core::instance::{Instance, InstanceBuilder};
use flowsched_core::machine::MachineId;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::structure::is_disjoint_family;

/// Splits a disjoint-family instance, schedules each group with
/// `scheduler`, and merges. The scheduler receives each subinstance over
/// a dense machine range `0..|Mᵤ|` (unrestricted: every subinstance set
/// is its full subcluster).
///
/// # Errors
/// Returns an error if the family is not disjoint.
///
/// # Panics
/// Panics if `scheduler` returns a schedule of the wrong length or with
/// machines outside the subcluster.
pub fn compose_disjoint<F>(inst: &Instance, mut scheduler: F) -> Result<Schedule, CoreError>
where
    F: FnMut(&Instance) -> Schedule,
{
    if !is_disjoint_family(inst.sets()) {
        // Reuse the closest existing error kind: the family constraint is
        // an input-domain violation, reported on the first offending task.
        for (i, s) in inst.sets().iter().enumerate() {
            for s2 in inst.sets().iter().skip(i + 1) {
                if s != s2 && !s.is_disjoint_from(s2) {
                    return Err(CoreError::OutsideProcessingSet {
                        task: flowsched_core::TaskId(i),
                        machine: MachineId(s.intersection(s2).min().unwrap_or(0)),
                    });
                }
            }
        }
        unreachable!("non-disjoint family must contain an overlapping pair");
    }

    // Group tasks by distinct set, preserving release order.
    let mut groups: Vec<(ProcSet, Vec<usize>)> = Vec::new();
    for (id, _, set) in inst.iter() {
        match groups.iter_mut().find(|(g, _)| g == set) {
            Some((_, tasks)) => tasks.push(id.0),
            None => groups.push((set.clone(), vec![id.0])),
        }
    }

    let mut assignments: Vec<Option<Assignment>> = vec![None; inst.len()];
    for (set, task_ids) in &groups {
        // Dense subinstance on |set| machines.
        let sub_m = set.len();
        let mut b = InstanceBuilder::new(sub_m);
        for &i in task_ids {
            b.push_unrestricted(inst.tasks()[i]);
        }
        let sub = b.build().expect("subinstance inherits validity");
        let sub_schedule = scheduler(&sub);
        assert_eq!(
            sub_schedule.len(),
            task_ids.len(),
            "scheduler must schedule every subinstance task"
        );
        // Map dense machine indices back to the real ones. The builder's
        // stable sort preserves our release-ordered push order 1:1.
        let machines = set.as_slice();
        for (slot, &i) in task_ids.iter().enumerate() {
            let a = sub_schedule.assignment(flowsched_core::TaskId(slot));
            assert!(
                a.machine.index() < sub_m,
                "scheduler used a machine outside the subcluster"
            );
            assignments[i] = Some(Assignment::new(
                MachineId(machines[a.machine.index()]),
                a.start,
            ));
        }
    }

    Ok(Schedule::new(
        assignments
            .into_iter()
            .map(|a| a.expect("every task belongs to exactly one group"))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::eft;
    use crate::fifo::fifo;
    use crate::tiebreak::TieBreak;
    use flowsched_core::task::Task;

    fn disjoint_instance() -> Instance {
        // Blocks {M1,M2} and {M3,M4,M5}; interleaved releases.
        let a = ProcSet::interval(0, 1);
        let b = ProcSet::interval(2, 4);
        let mut builder = InstanceBuilder::new(5);
        for t in 0..6 {
            builder.push(Task::new(t as f64 * 0.5, 1.0), a.clone());
            builder.push(Task::new(t as f64 * 0.5, 0.5), b.clone());
            builder.push(Task::new(t as f64 * 0.5, 0.75), b.clone());
        }
        builder.build().unwrap()
    }

    #[test]
    fn composition_is_feasible_and_matches_eft() {
        // Composing EFT per block equals running restricted EFT directly:
        // EFT's decisions never look outside a task's processing set.
        let inst = disjoint_instance();
        let composed = compose_disjoint(&inst, |sub| eft(sub, TieBreak::Min)).unwrap();
        composed.validate(&inst).unwrap();
        let direct = eft(&inst, TieBreak::Min);
        assert_eq!(composed, direct);
    }

    #[test]
    fn composition_with_fifo_is_corollary_1() {
        // FIFO per block — the literal construction of Theorem 6 — and by
        // Proposition 1 it again equals restricted EFT.
        let inst = disjoint_instance();
        let composed = compose_disjoint(&inst, |sub| fifo(sub, TieBreak::Min)).unwrap();
        composed.validate(&inst).unwrap();
        assert_eq!(composed, eft(&inst, TieBreak::Min));
    }

    #[test]
    fn ratio_bounded_by_max_block_guarantee() {
        // Corollary 1 quantitatively: composed FIFO is (3 − 2/max|Mu|)-
        // competitive; check on instances small enough for brute force.
        use crate::offline::brute_force_fmax;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        for _ in 0..20 {
            let mut b = InstanceBuilder::new(4);
            let blocks = [ProcSet::interval(0, 1), ProcSet::interval(2, 3)];
            for _ in 0..8 {
                let r = rng.random_range(0..3) as f64;
                let p = 0.5 * rng.random_range(1..=4) as f64;
                let blk = blocks[rng.random_range(0..2)].clone();
                b.push(Task::new(r, p), blk);
            }
            let inst = b.build().unwrap();
            let composed = compose_disjoint(&inst, |sub| fifo(sub, TieBreak::Min)).unwrap();
            let opt = brute_force_fmax(&inst);
            let bound = 3.0 - 2.0 / 2.0; // max block size 2
            assert!(
                composed.fmax(&inst) <= bound * opt + 1e-9,
                "composed {c} vs {bound} × OPT {opt}",
                c = composed.fmax(&inst)
            );
        }
    }

    #[test]
    fn repeated_sets_share_a_group() {
        let mut b = InstanceBuilder::new(2);
        for _ in 0..4 {
            b.push_unit(0.0, ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let mut calls = 0usize;
        let s = compose_disjoint(&inst, |sub| {
            calls += 1;
            eft(sub, TieBreak::Min)
        })
        .unwrap();
        s.validate(&inst).unwrap();
        assert_eq!(calls, 1, "identical sets form one group");
    }

    #[test]
    fn non_disjoint_family_rejected() {
        let mut b = InstanceBuilder::new(3);
        b.push_unit(0.0, ProcSet::interval(0, 1));
        b.push_unit(0.0, ProcSet::interval(1, 2));
        let inst = b.build().unwrap();
        assert!(compose_disjoint(&inst, |sub| eft(sub, TieBreak::Min)).is_err());
    }

    #[test]
    fn empty_instance_composes_trivially() {
        let inst = Instance::unrestricted(2, vec![]).unwrap();
        let s = compose_disjoint(&inst, |sub| eft(sub, TieBreak::Min)).unwrap();
        assert!(s.is_empty());
    }
}
