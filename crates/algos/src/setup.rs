//! Setup-aware dispatch for batch-by-key serving (Mäcker et al.,
//! arXiv:1709.05896).
//!
//! In the KV-serving model every request targets a key whose replica
//! set *is* its processing set — requests for the same key carry the
//! same member list, and `flowsched-kvstore` streams emit exactly that.
//! Mäcker et al. study machines that pay a **setup time** whenever they
//! switch between job classes (here: key clusters); a machine that keeps
//! serving one cluster amortizes the setup away, while a machine that
//! thrashes between clusters pays it on every switch.
//!
//! [`SetupEftState`] keeps a per-machine *current cluster* fingerprint
//! and charges a configurable setup cost `c` on every switch (including
//! the machine's very first task — a cold cache is a real setup). The
//! machine occupies `[free, free + setup)` with the switch and serves
//! the task in `[start, start + p)` with `start = free + setup`; the
//! reported [`Assignment::start`] is the *service* start, so flow times
//! include the setup the task induced and per-machine service intervals
//! stay disjoint for the validator.
//!
//! Two variants share the state:
//!
//! - **aware** (`setup@c`): candidate completion on machine `j` is
//!   `max(rᵢ, C_j) + setup_j + pᵢ` with `setup_j ∈ {0, c}` depending on
//!   whether `j` is already on the task's cluster; argmin with the
//!   usual ascending tie set and one [`Breaker::pick`]. The dispatcher
//!   *sees* the setup and learns to dedicate machines to clusters.
//! - **oblivious** (`setup-obl@c`): machine choice is plain EFT
//!   ([`scan_ties`] on completions, ignoring setups) but the chosen
//!   machine still pays the switch. This is the thrashing baseline the
//!   adversarial stream in `flowsched-workloads` punishes.
//!
//! With `c = 0` both variants reduce to the scalar EFT kernel
//! **bitwise** (same tie sets, same single RNG draw per task) — pinned
//! by `tests/policy_registry.rs`.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::Assignment;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::eft::{scan_ties, ImmediateDispatcher};
use crate::tiebreak::{Breaker, TieBreak};

/// "No cluster yet" sentinel for [`SetupEftState`]'s per-machine state.
const NO_CLUSTER: u64 = u64::MAX;

/// Fingerprint identifying a task's key cluster: FNV-1a over the
/// processing-set members. Two tasks share a cluster exactly when they
/// share a replica set, which is how the kvstore streams encode keys.
/// (The sentinel value is remapped so a fingerprint never collides with
/// "no cluster yet".)
pub fn cluster_fingerprint(set: ProcSetRef<'_>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for j in set.iter() {
        let mut x = j as u64;
        for _ in 0..8 {
            h ^= x & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            x >>= 8;
        }
    }
    if h == NO_CLUSTER {
        0
    } else {
        h
    }
}

/// Incremental setup-aware EFT state (see the module docs for the
/// model and both variants).
#[derive(Debug)]
pub struct SetupEftState {
    completions: Vec<Time>,
    /// Cluster fingerprint each machine is currently configured for.
    last_cluster: Vec<u64>,
    /// Setup cost `c ≥ 0` charged on every cluster switch.
    cost: Time,
    /// `true` = setup-aware machine choice, `false` = EFT-oblivious
    /// choice that still pays the switch.
    aware: bool,
    breaker: Breaker,
    /// Scratch buffer for the tie set, reused across dispatches.
    ties: Vec<usize>,
}

impl SetupEftState {
    /// Fresh state for `m` idle machines, none configured for any
    /// cluster yet.
    ///
    /// # Panics
    /// Panics when `m == 0` or `cost < 0`.
    pub fn new(m: usize, policy: TieBreak, cost: Time, aware: bool) -> Self {
        assert!(m > 0, "need at least one machine");
        assert!(cost >= 0.0, "setup cost must be non-negative");
        SetupEftState {
            completions: vec![0.0; m],
            last_cluster: vec![NO_CLUSTER; m],
            cost,
            aware,
            breaker: policy.breaker(),
            ties: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.completions.len()
    }

    /// Current completion time of each machine.
    pub fn completions(&self) -> &[Time] {
        &self.completions
    }

    /// The setup machine `j` would pay to serve cluster `fp` next.
    #[inline]
    fn setup_for(&self, j: usize, fp: u64) -> Time {
        if self.last_cluster[j] == fp {
            0.0
        } else {
            self.cost
        }
    }

    /// Dispatches one task; see the module docs for the two variants.
    ///
    /// # Panics
    /// Panics on an empty processing set.
    pub fn dispatch(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        let fp = cluster_fingerprint(set);
        let u = if self.aware {
            // Argmin over candidate completions including the switch.
            let mut best = f64::INFINITY;
            self.ties.clear();
            for j in set.iter() {
                let c = task.release.max(self.completions[j]) + self.setup_for(j, fp) + task.ptime;
                if c < best {
                    best = c;
                    self.ties.clear();
                    self.ties.push(j);
                } else if c == best {
                    self.ties.push(j);
                }
            }
            self.breaker.pick(&self.ties)
        } else {
            // Oblivious: choose as plain EFT, pay the switch anyway.
            scan_ties(&self.completions, set.iter(), task.release, &mut self.ties);
            self.breaker.pick(&self.ties)
        };
        let start = task.release.max(self.completions[u]) + self.setup_for(u, fp);
        self.completions[u] = start + task.ptime;
        self.last_cluster[u] = fp;
        Assignment::new(MachineId(u), start)
    }
}

impl ImmediateDispatcher for SetupEftState {
    fn machine_count(&self) -> usize {
        self.machines()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::EftState;
    use flowsched_core::procset::ProcSet;

    #[test]
    fn zero_cost_matches_plain_eft_bitwise() {
        for aware in [true, false] {
            for policy in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 3 }] {
                let m = 5;
                let mut eft = EftState::new(m, policy);
                let mut setup = SetupEftState::new(m, policy, 0.0, aware);
                for i in 0..300 {
                    let lo = i % m;
                    let set = ProcSet::interval(lo, (lo + 2).min(m - 1));
                    let task = Task::new((i / 3) as f64 * 0.25, 0.5 + (i % 4) as f64 * 0.5);
                    assert_eq!(
                        eft.dispatch_ref(task, set.view()),
                        setup.dispatch(task, set.view()),
                        "aware={aware} {policy:?} dispatch {i} diverged"
                    );
                }
                assert_eq!(eft.completions(), setup.completions());
            }
        }
    }

    #[test]
    fn staying_on_a_cluster_skips_the_setup() {
        let mut st = SetupEftState::new(1, TieBreak::Min, 2.0, true);
        let set = ProcSet::full(1);
        // First task: cold machine pays the setup.
        let a = st.dispatch(Task::unit(0.0), set.view());
        assert_eq!(a.start, 2.0);
        // Same cluster again: no setup, contiguous service.
        let b = st.dispatch(Task::unit(0.0), set.view());
        assert_eq!(b.start, 3.0);
    }

    #[test]
    fn switching_clusters_pays_again() {
        let mut st = SetupEftState::new(2, TieBreak::Min, 1.0, true);
        let a_only = ProcSet::singleton(0);
        let b_only = ProcSet::singleton(1);
        let ab = ProcSet::interval(0, 1);
        // Park M2 on its own cluster for a long time.
        st.dispatch(Task::new(0.0, 10.0), b_only.view());
        // M1 configures for {M1}: setup 1, service [1,2).
        assert_eq!(st.dispatch(Task::unit(0.0), a_only.view()).start, 1.0);
        // Cluster {M1,M2}: M1 switching (2+1+1=4) still beats the busy
        // M2 (11+1+1=13), so M1 leaves its cluster.
        let b = st.dispatch(Task::unit(0.0), ab.view());
        assert_eq!(b.machine.index(), 0);
        assert_eq!(b.start, 3.0);
        // Back to {M1}: M1 must reconfigure, paying the cost again.
        let c = st.dispatch(Task::unit(0.0), a_only.view());
        assert_eq!(c.start, 5.0); // free at 4, setup 1
    }

    #[test]
    fn aware_choice_prefers_the_configured_machine() {
        // Warm M1 on the cluster (cold machines tie, Min picks M1;
        // service [2,3) under cost 2). At r=2.5, M1 is still busy but
        // warm: 3+1=4 beats the cold idle M2 at 2.5+2+1=5.5 — the
        // aware rule waits for the configured machine, while oblivious
        // EFT grabs the idle one and pays the switch.
        let cluster = ProcSet::interval(0, 1);
        let mut aware = SetupEftState::new(2, TieBreak::Min, 2.0, true);
        aware.dispatch(Task::new(0.0, 1.0), cluster.view());
        let pick = aware.dispatch(Task::unit(2.5), cluster.view());
        assert_eq!(pick.machine.index(), 0);

        let mut obl = SetupEftState::new(2, TieBreak::Min, 2.0, false);
        obl.dispatch(Task::new(0.0, 1.0), cluster.view());
        let pick = obl.dispatch(Task::unit(2.5), cluster.view());
        assert_eq!(
            pick.machine.index(),
            1,
            "oblivious EFT takes the cold idle machine"
        );
    }

    #[test]
    fn fingerprints_distinguish_distinct_sets_and_shapes_agree() {
        let a = ProcSet::interval(0, 3);
        let b = ProcSet::interval(4, 7);
        assert_ne!(cluster_fingerprint(a.view()), cluster_fingerprint(b.view()));
        // The same member list through different representations must
        // fingerprint identically (interval vs explicit).
        let explicit: Vec<usize> = vec![0, 1, 2, 3];
        assert_eq!(
            cluster_fingerprint(a.view()),
            cluster_fingerprint(ProcSetRef::Explicit(&explicit))
        );
    }
}
