//! Live kernel re-resolution for [`DispatchKernel::Auto`].
//!
//! When a stream carries a
//! [`structure_hint`](flowsched_core::stream::ArrivalStream::structure_hint),
//! `Auto` resolves once, up front. Hint-less streams used to fall back
//! to a blind machine-count rule; [`AdaptiveEftState`] replaces that
//! guess with measurement: an incremental
//! [`StructureClassifier`] folds every observed
//! [`ProcSetRef`] into a running classification, and after a warmup
//! window ([`ADAPTIVE_WARMUP_ARRIVALS`]) — and again on every later
//! classification change — the kernel is re-resolved through
//! [`DispatchKernel::for_structure`], switching the live core between
//! the scalar and the indexed kernel mid-stream.
//!
//! **Why mid-stream switches are bitwise-transparent.** Both cores
//! implement the identical dispatch function: for any completion state
//! and arrival they produce the same assignment and consume the same
//! number of RNG draws (pinned by `tests/kernel_equivalence.rs` and the
//! mixed-shape oracle tests). A switch moves the completion bank and
//! the [`Breaker`] — *including its RNG state* — into the other core
//! and rebuilds only derived index structures, so the dispatch sequence
//! after a switch is indistinguishable from never having switched.
//! `tests/simd_scan.rs` pins this end to end across families and
//! tie-breaks.
//!
//! Settling: flags in the classifier only ever fall, so once the family
//! is unstructured (every pairwise and shape predicate false) the
//! resolution can never leave `Scalar` again — the wrapper stops
//! observing entirely and runs at raw scalar-kernel cost. The same
//! applies from the start when `m < AUTO_INDEXED_MIN_MACHINES`, where
//! `for_structure` returns `Scalar` regardless of structure. A
//! *structured* verdict is deliberately not absorbing: `fixed_size` can
//! move `Some(k) → None` when a second width appears, flipping a
//! too-narrow-for-the-tree verdict back to `Indexed`, so upgrades after
//! warmup stay possible.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::schedule::Assignment;
use flowsched_core::structure::StructureClassifier;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::eft::{EftState, ImmediateDispatcher};
use crate::indexed::{DispatchKernel, IndexedEftState, KernelStats, AUTO_INDEXED_MIN_MACHINES};
use crate::soa::ScanImpl;
use crate::tiebreak::TieBreak;

/// Arrivals observed before the first structure-based re-resolution.
/// Long enough for the classifier to see the family's palette of sets,
/// short enough that a 1M-task stream spends <0.01% of its arrivals on
/// the pre-verdict kernel.
pub const ADAPTIVE_WARMUP_ARRIVALS: u64 = 64;

/// The live dispatch core — a two-variant mirror of the non-adaptive
/// [`EftKernelState`](crate::indexed::EftKernelState) arms.
#[derive(Debug)]
enum Core {
    Scalar(EftState),
    Indexed(IndexedEftState),
}

/// An EFT dispatcher that re-resolves its kernel from live structure
/// classification — what [`DispatchKernel::Auto`] builds when no stream
/// hint settled the choice up front.
#[derive(Debug)]
pub struct AdaptiveEftState {
    m: usize,
    core: Core,
    classifier: StructureClassifier,
    /// Classifier revision at the last re-resolution.
    last_revision: u64,
    /// True once the resolution can provably never change again.
    settled: bool,
    scan: ScanImpl,
    /// Mid-stream kernel switches performed so far.
    switches: u32,
    /// Tasks dispatched (carried into rebuilt scalar cores as `seq`).
    dispatched: u64,
    /// Counters inherited from retired indexed cores.
    retired_stats: KernelStats,
}

impl AdaptiveEftState {
    /// Fresh adaptive state for `m` idle machines, on the default
    /// (SIMD) tie scan.
    pub fn new(m: usize, policy: TieBreak) -> Self {
        AdaptiveEftState::with_scan(m, policy, ScanImpl::default())
    }

    /// Fresh adaptive state with the tie-scan implementation forced.
    pub fn with_scan(m: usize, policy: TieBreak, scan: ScanImpl) -> Self {
        // The initial core follows the machine-count rule; below the
        // auto threshold the verdict is Scalar for every structure, so
        // the wrapper settles immediately and never pays for observing.
        let small = m < AUTO_INDEXED_MIN_MACHINES;
        let core = if small {
            Core::Scalar(EftState::with_scan(m, policy, scan))
        } else {
            Core::Indexed(IndexedEftState::with_scan(m, policy, scan))
        };
        AdaptiveEftState {
            m,
            core,
            classifier: StructureClassifier::new(m),
            last_revision: 0,
            settled: small,
            scan,
            switches: 0,
            dispatched: 0,
            retired_stats: KernelStats::default(),
        }
    }

    /// The kernel the live core currently runs.
    pub fn current_kernel(&self) -> DispatchKernel {
        match self.core {
            Core::Scalar(_) => DispatchKernel::Scalar,
            Core::Indexed(_) => DispatchKernel::Indexed,
        }
    }

    /// Mid-stream kernel switches performed so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Current completion time of each machine.
    pub fn completions(&self) -> &[Time] {
        match &self.core {
            Core::Scalar(s) => s.completions(),
            Core::Indexed(s) => s.completions(),
        }
    }

    /// Dispatches one task, folding its set into the classifier and
    /// re-resolving the kernel at warmup and on classification changes.
    pub fn dispatch_ref(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        if !self.settled {
            self.classifier.observe(set);
            let n = self.classifier.arrivals();
            let due = n == ADAPTIVE_WARMUP_ARRIVALS
                || (n > ADAPTIVE_WARMUP_ARRIVALS
                    && self.classifier.revision() != self.last_revision);
            if due {
                self.re_resolve();
            }
        }
        self.dispatched += 1;
        match &mut self.core {
            Core::Scalar(s) => s.dispatch_ref(task, set),
            Core::Indexed(s) => s.dispatch_ref(task, set),
        }
    }

    /// Decision counters: retired cores' stats plus the live core's.
    /// `None` only when no indexed core was ever involved.
    pub fn kernel_stats(&self) -> Option<KernelStats> {
        let mut stats = self.retired_stats;
        match &self.core {
            Core::Indexed(s) => {
                stats.merge(s.kernel_stats());
                Some(stats)
            }
            Core::Scalar(_) => (stats != KernelStats::default()).then_some(stats),
        }
    }

    /// Re-resolves the kernel from the current classification and
    /// switches the core when the verdict changed.
    fn re_resolve(&mut self) {
        let report = self.classifier.report();
        let desired = DispatchKernel::for_structure(&report, self.m);
        self.last_revision = self.classifier.revision();
        // Unstructured is absorbing (flags only fall), so a Scalar
        // verdict with no surviving structure can never flip back —
        // stop observing. A structured-but-narrow Scalar verdict stays
        // live: fixed_size may widen to None and re-enable the index.
        let structured = report.interval
            || report.ring_interval
            || report.inclusive
            || report.nested
            || report.disjoint;
        if !structured {
            self.settled = true;
        }
        if desired != self.current_kernel() {
            self.switch_to(desired);
        }
    }

    /// Moves the machine state (completion bank + breaker, with RNG
    /// state) into a fresh core of the other kernel. Index structures
    /// are derived state and rebuild from the bank; dispatch behavior
    /// is bitwise-unchanged (see module docs).
    fn switch_to(&mut self, desired: DispatchKernel) {
        self.switches += 1;
        let old = std::mem::replace(
            &mut self.core,
            Core::Scalar(EftState::new(1, TieBreak::Min)),
        );
        self.core = match (old, desired) {
            (Core::Scalar(s), DispatchKernel::Indexed) => {
                let (bank, breaker, _seq) = s.into_parts();
                Core::Indexed(IndexedEftState::from_parts(bank, breaker, self.scan))
            }
            (Core::Indexed(s), DispatchKernel::Scalar) => {
                let (bank, breaker, stats) = s.into_parts();
                self.retired_stats.merge(stats);
                Core::Scalar(EftState::from_parts(
                    bank,
                    breaker,
                    self.scan,
                    self.dispatched,
                ))
            }
            // `switch_to` is only called when the verdict differs from
            // the current core, so same-kernel pairs are unreachable.
            (core, _) => {
                self.switches -= 1;
                core
            }
        };
    }
}

impl ImmediateDispatcher for AdaptiveEftState {
    fn machine_count(&self) -> usize {
        self.m
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch_ref(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        self.kernel_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interval prefix (classifier sees structure), then scattered
    /// two-member sets that break every predicate.
    fn mixed_stream_sets(m: usize, n: usize) -> Vec<(Task, Vec<usize>)> {
        let mut out = Vec::new();
        for i in 0..n {
            let release = i as f64 * 0.125;
            let task = Task::new(release, 0.5 + (i % 3) as f64 * 0.25);
            let set: Vec<usize> = if i < n / 2 {
                let lo = (i * 7) % (m / 2);
                (lo..lo + m / 4).collect()
            } else {
                let a = (i * 13) % m;
                let b = (a + m / 3) % m;
                let mut s = vec![a.min(b), a.max(b)];
                s.dedup();
                s
            };
            out.push((task, set));
        }
        out
    }

    #[test]
    fn adaptive_matches_forced_kernels_and_actually_switches() {
        let m = 128;
        let sets = mixed_stream_sets(m, 400);
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 77 }] {
            let mut adaptive = AdaptiveEftState::new(m, tb);
            let mut scalar = EftState::new(m, tb);
            let mut indexed = IndexedEftState::new(m, tb);
            for (i, (task, set)) in sets.iter().enumerate() {
                let view = ProcSetRef::Explicit(set);
                let a = adaptive.dispatch_ref(*task, view);
                assert_eq!(a, scalar.dispatch_ref(*task, view), "{tb:?} scalar @{i}");
                assert_eq!(a, indexed.dispatch_ref(*task, view), "{tb:?} indexed @{i}");
            }
            // The structured prefix keeps the index through warmup; the
            // scattered tail must have forced a downgrade to Scalar.
            assert!(adaptive.switches() > 0, "{tb:?}: no mid-stream switch");
            assert_eq!(adaptive.current_kernel(), DispatchKernel::Scalar, "{tb:?}");
        }
    }

    #[test]
    fn small_machine_counts_settle_to_scalar_immediately() {
        let mut s = AdaptiveEftState::new(4, TieBreak::Min);
        assert_eq!(s.current_kernel(), DispatchKernel::Scalar);
        for i in 0..200 {
            s.dispatch_ref(Task::unit(i as f64 * 0.1), ProcSetRef::prefix(4));
        }
        assert_eq!(s.switches(), 0);
        assert_eq!(s.classifier.arrivals(), 0, "settled state must not observe");
    }

    #[test]
    fn structured_streams_keep_the_index_and_report_stats() {
        let m = 256;
        let mut s = AdaptiveEftState::new(m, TieBreak::Min);
        for i in 0..300 {
            let lo = (i * 11) % (m / 2);
            s.dispatch_ref(
                Task::unit(i as f64 * 0.05),
                ProcSetRef::interval(lo, lo + m / 2 - 1),
            );
        }
        assert_eq!(s.current_kernel(), DispatchKernel::Indexed);
        assert_eq!(s.switches(), 0);
        let stats = s.kernel_stats().expect("indexed core reports stats");
        assert_eq!(stats.indexed_descents, 300);
    }
}
