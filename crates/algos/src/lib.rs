//! # flowsched-algos
//!
//! The paper's scheduling algorithms and the reference solvers used to
//! measure them:
//!
//! - [`tiebreak`]: the tie-break policies distinguishing EFT-Min
//!   (Algorithm 3), EFT-Max, and EFT-Rand (Algorithm 4).
//! - [`eft`](mod@eft): Earliest Finish Time — the immediate-dispatch scheduler of
//!   Algorithm 2, with processing-set support (Equation (2)), both as a
//!   whole-instance driver and as an incremental [`eft::EftState`] for
//!   discrete-event simulation.
//! - [`fifo`](mod@fifo): the centralized-queue FIFO scheduler of Algorithm 1,
//!   implemented as a genuine event simulation so that Proposition 1
//!   (FIFO ≡ EFT on `P | online-rᵢ | Fmax`) is *tested*, not assumed.
//! - [`offline`]: reference values — the exact offline optimum for
//!   unit-task instances (binary search on the flow budget with a
//!   Hopcroft–Karp feasibility oracle), an exhaustive optimum for tiny
//!   general instances, and polynomial lower bounds on `F*max` used to
//!   report competitive ratios when the exact optimum is out of reach.

pub mod compose;
pub mod eft;
pub mod exact;
pub mod fifo;
pub mod localsearch;
pub mod offline;
pub mod policies;
pub mod preemptive;
pub mod related;
pub mod tiebreak;

pub use compose::compose_disjoint;
pub use eft::{EftState, ImmediateDispatcher, eft, eft_recorded};
pub use exact::{ExactResult, approx_fmax, exact_fmax};
pub use localsearch::{eft_plus_local_search, improve};
pub use fifo::{fifo, fifo_recorded};
pub use offline::{brute_force_fmax, fmax_lower_bound, optimal_unit_fmax};
pub use policies::{DispatchRule, Dispatcher};
pub use preemptive::optimal_preemptive_fmax;
pub use related::{RelatedRule, RelatedState, related_dispatch, related_fmax};
pub use tiebreak::TieBreak;

/// Most used items for downstream crates.
pub mod prelude {
    pub use crate::eft::{EftState, ImmediateDispatcher, eft};
    pub use crate::exact::{ExactResult, exact_fmax};
    pub use crate::fifo::fifo;
    pub use crate::offline::{brute_force_fmax, fmax_lower_bound, optimal_unit_fmax};
    pub use crate::policies::{DispatchRule, Dispatcher};
    pub use crate::preemptive::optimal_preemptive_fmax;
    pub use crate::tiebreak::TieBreak;
}
