//! # flowsched-algos
//!
//! The paper's scheduling algorithms and the reference solvers used to
//! measure them:
//!
//! - [`engine`]: the streaming scheduler core — one generic
//!   discrete-event engine per algorithm family (immediate dispatch and
//!   central-queue FIFO), driving any
//!   [`ArrivalStream`](flowsched_core::ArrivalStream) under any
//!   [`Recorder`](flowsched_obs::Recorder) into any
//!   [`DispatchSink`](engine::DispatchSink). Includes the sharded
//!   engine ([`engine::run_immediate_sharded`]): when the stream's
//!   processing sets partition the machines into clusters, each cluster
//!   dispatches on its own worker thread and the decisions merge back
//!   in arrival order, bitwise-identical to the sequential run.
//! - [`tiebreak`]: the tie-break policies distinguishing EFT-Min
//!   (Algorithm 3), EFT-Max, and EFT-Rand (Algorithm 4).
//! - [`eft`](mod@eft): Earliest Finish Time — the immediate-dispatch scheduler of
//!   Algorithm 2, with processing-set support (Equation (2)), both as a
//!   whole-instance driver and as an incremental [`eft::EftState`] for
//!   discrete-event simulation.
//! - [`indexed`]: the structure-aware dispatch kernels — a
//!   leftmost-argmin segment tree plus cluster heaps answering
//!   Equation (2) in O(log m) per task over compact
//!   [`ProcSetRef`](flowsched_core::ProcSetRef) views, bitwise-identical
//!   to the scalar path.
//! - [`faulty`]: availability-aware EFT over a
//!   [`FaultPlan`](flowsched_core::FaultPlan) — candidate starts skip
//!   outage windows, stranded tasks re-queue on recovery, and a
//!   fault-free plan reproduces the plain engine bitwise
//!   ([`run_immediate_faulty`], [`run_immediate_faulty_sharded`]).
//! - [`fifo`](mod@fifo): the centralized-queue FIFO scheduler of Algorithm 1,
//!   implemented as a genuine event simulation so that Proposition 1
//!   (FIFO ≡ EFT on `P | online-rᵢ | Fmax`) is *tested*, not assumed.
//! - [`offline`]: reference values — the exact offline optimum for
//!   unit-task instances (binary search on the flow budget with a
//!   Hopcroft–Karp feasibility oracle), an exhaustive optimum for tiny
//!   general instances, and polynomial lower bounds on `F*max` used to
//!   report competitive ratios when the exact optimum is out of reach.

pub mod compose;
pub mod eft;
pub mod engine;
pub mod exact;
pub mod faulty;
pub mod fifo;
pub mod indexed;
pub mod localsearch;
pub mod offline;
pub mod policies;
pub mod preemptive;
pub mod related;
pub mod tiebreak;

pub use compose::compose_disjoint;
#[allow(deprecated)]
pub use eft::eft_recorded;
pub use eft::{eft, eft_stream, eft_stream_with_kernel, EftState, ImmediateDispatcher};
pub use engine::{
    fifo_schedule, immediate_schedule, immediate_schedule_sharded, run_fifo, run_immediate,
    run_immediate_sharded, DispatchSink, NullSink, ShardedConfig,
};
pub use exact::{approx_fmax, exact_fmax, ExactResult};
pub use faulty::{
    faulty_schedule, faulty_schedule_sharded, run_immediate_faulty, run_immediate_faulty_sharded,
    FaultyEftState,
};
#[allow(deprecated)]
pub use fifo::fifo_recorded;
pub use fifo::{fifo, fifo_stream};
pub use indexed::{
    indexed_min_width, DispatchKernel, EftKernelState, IndexedEftState, AUTO_INDEXED_MIN_MACHINES,
};
pub use localsearch::{eft_plus_local_search, improve};
pub use offline::{brute_force_fmax, fmax_lower_bound, optimal_unit_fmax};
pub use policies::{dispatch_stream, dispatch_stream_with_kernel, DispatchRule, Dispatcher};
pub use preemptive::optimal_preemptive_fmax;
pub use related::{related_dispatch, related_fmax, RelatedRule, RelatedState};
pub use tiebreak::TieBreak;

/// Most used items for downstream crates.
pub mod prelude {
    pub use crate::eft::{eft, eft_stream, eft_stream_with_kernel, EftState, ImmediateDispatcher};
    pub use crate::engine::{run_fifo, run_immediate, run_immediate_sharded, ShardedConfig};
    pub use crate::exact::{exact_fmax, ExactResult};
    pub use crate::faulty::{faulty_schedule, run_immediate_faulty, FaultyEftState};
    pub use crate::fifo::{fifo, fifo_stream};
    pub use crate::indexed::{DispatchKernel, EftKernelState, IndexedEftState};
    pub use crate::offline::{brute_force_fmax, fmax_lower_bound, optimal_unit_fmax};
    pub use crate::policies::{DispatchRule, Dispatcher};
    pub use crate::preemptive::optimal_preemptive_fmax;
    pub use crate::tiebreak::TieBreak;
}
