//! # flowsched-algos
//!
//! The paper's scheduling algorithms and the reference solvers used to
//! measure them:
//!
//! - [`engine`]: the streaming scheduler core — one generic
//!   discrete-event engine per algorithm family (immediate dispatch and
//!   central-queue FIFO), driving any
//!   [`ArrivalStream`](flowsched_core::ArrivalStream) under any
//!   [`Recorder`](flowsched_obs::Recorder) into any
//!   [`DispatchSink`](engine::DispatchSink). Includes the sharded
//!   engine ([`engine::run_immediate_sharded`]): when the stream's
//!   processing sets partition the machines into clusters, each cluster
//!   dispatches on its own worker thread and the decisions merge back
//!   in arrival order, bitwise-identical to the sequential run.
//! - [`tiebreak`]: the tie-break policies distinguishing EFT-Min
//!   (Algorithm 3), EFT-Max, and EFT-Rand (Algorithm 4).
//! - [`eft`](mod@eft): Earliest Finish Time — the immediate-dispatch scheduler of
//!   Algorithm 2, with processing-set support (Equation (2)), both as a
//!   whole-instance driver and as an incremental [`eft::EftState`] for
//!   discrete-event simulation.
//! - [`indexed`]: the structure-aware dispatch kernels — a
//!   leftmost-argmin segment tree plus cluster heaps answering
//!   Equation (2) in O(log m) per task over compact
//!   [`ProcSetRef`](flowsched_core::ProcSetRef) views, bitwise-identical
//!   to the scalar path.
//! - [`faulty`]: availability-aware EFT over a
//!   [`FaultPlan`](flowsched_core::FaultPlan) — candidate starts skip
//!   outage windows, stranded tasks re-queue on recovery, and a
//!   fault-free plan reproduces the plain engine bitwise
//!   ([`run_immediate_faulty`], [`run_immediate_faulty_sharded`]).
//! - [`registry`]: the name-addressable policy registry — a
//!   [`PolicySpec`](registry::PolicySpec) parseable from strings like
//!   `eft:min:indexed`, resolving kernels and shard-local seeds through
//!   one construction path that every engine entry point, sim driver,
//!   and bench bin shares.
//! - [`weighted`]: weighted-EFT packing for the weighted max flow time
//!   objective `max wᵢ·Fᵢ` (Azar–Touitou), with `weft@0` reproducing
//!   plain EFT bitwise.
//! - [`setup`]: setup-aware dispatch for batch-by-key serving (Mäcker
//!   et al.) — per-machine key-cluster state, a setup cost charged on
//!   switches, and a setup-oblivious baseline; `setup@0` reproduces
//!   plain EFT bitwise.
//! - [`fifo`](mod@fifo): the centralized-queue FIFO scheduler of Algorithm 1,
//!   implemented as a genuine event simulation so that Proposition 1
//!   (FIFO ≡ EFT on `P | online-rᵢ | Fmax`) is *tested*, not assumed.
//! - [`offline`]: reference values — the exact offline optimum for
//!   unit-task instances (binary search on the flow budget with a
//!   Hopcroft–Karp feasibility oracle), an exhaustive optimum for tiny
//!   general instances, and polynomial lower bounds on `F*max` used to
//!   report competitive ratios when the exact optimum is out of reach.

pub mod adaptive;
pub mod compose;
pub mod eft;
pub mod engine;
pub mod exact;
pub mod faulty;
pub mod fifo;
pub mod indexed;
pub mod localsearch;
pub mod offline;
pub mod policies;
pub mod preemptive;
pub mod registry;
pub mod related;
pub mod setup;
pub mod soa;
pub mod tiebreak;
pub mod weighted;

pub use adaptive::{AdaptiveEftState, ADAPTIVE_WARMUP_ARRIVALS};

pub use compose::compose_disjoint;
pub use eft::{eft, eft_stream, eft_stream_with_kernel, EftState, ImmediateDispatcher};
pub use engine::{
    fifo_schedule, immediate_schedule, immediate_schedule_sharded, policy_schedule,
    policy_schedule_sharded, run_fifo, run_immediate, run_immediate_sharded, run_policy,
    run_policy_sharded, run_policy_sharded_probed, DispatchSink, NullSink, ShardedConfig,
};
pub use exact::{approx_fmax, exact_fmax, ExactResult};
pub use faulty::{
    faulty_schedule, faulty_schedule_sharded, run_immediate_faulty, run_immediate_faulty_sharded,
    FaultyEftState,
};
pub use fifo::{fifo, fifo_stream};
pub use indexed::{
    indexed_min_width, DispatchKernel, EftKernelState, IndexedEftState, KernelStats,
    AUTO_INDEXED_MIN_MACHINES,
};
pub use localsearch::{eft_plus_local_search, improve};
pub use offline::{
    brute_force_fmax, fmax_lower_bound, optimal_unit_fmax, optimal_unit_weighted_fmax,
};
pub use policies::{dispatch_stream, dispatch_stream_with_kernel, DispatchRule, Dispatcher};
pub use preemptive::optimal_preemptive_fmax;
pub use registry::{ParsePolicyError, PolicyId, PolicySpec, PolicyState};
pub use related::{related_dispatch, related_fmax, RelatedRule, RelatedState};
pub use setup::{cluster_fingerprint, SetupEftState};
pub use soa::{CompletionBank, ScanImpl, SoaMinHeap};
pub use tiebreak::TieBreak;
pub use weighted::WeightedEftState;

/// Most used items for downstream crates.
pub mod prelude {
    pub use crate::eft::{eft, eft_stream, eft_stream_with_kernel, EftState, ImmediateDispatcher};
    pub use crate::engine::{
        run_fifo, run_immediate, run_immediate_sharded, run_policy, run_policy_sharded,
        ShardedConfig,
    };
    pub use crate::exact::{exact_fmax, ExactResult};
    pub use crate::faulty::{faulty_schedule, run_immediate_faulty, FaultyEftState};
    pub use crate::fifo::{fifo, fifo_stream};
    pub use crate::indexed::{DispatchKernel, EftKernelState, IndexedEftState};
    pub use crate::offline::{
        brute_force_fmax, fmax_lower_bound, optimal_unit_fmax, optimal_unit_weighted_fmax,
    };
    pub use crate::policies::{DispatchRule, Dispatcher};
    pub use crate::preemptive::optimal_preemptive_fmax;
    pub use crate::registry::{PolicyId, PolicySpec, PolicyState};
    pub use crate::setup::SetupEftState;
    pub use crate::soa::{CompletionBank, ScanImpl};
    pub use crate::tiebreak::TieBreak;
    pub use crate::weighted::WeightedEftState;
}
