//! Tie-break policies for EFT and FIFO.
//!
//! When several machines can finish a task at the same earliest time
//! (the tie set `Uᵢ` of the paper's Equation (1)/(2)), a policy picks one.
//! The choice matters enormously under interval restrictions: the paper's
//! Theorem 8 lower bound (`m − k + 1`) is driven by EFT-Min's preference
//! for low indices, Theorem 9 extends it to any randomized policy that
//! never systematically discards a candidate, and Figure 11 shows
//! EFT-Max beating EFT-Min under worst-case popularity bias.

use flowsched_stats::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// A tie-break policy (declarative form, used in public APIs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Choose the candidate with the smallest index (EFT-Min,
    /// Algorithm 3).
    Min,
    /// Choose the candidate with the largest index (EFT-Max).
    Max,
    /// Choose uniformly at random among candidates (EFT-Rand,
    /// Algorithm 4), seeded for reproducibility.
    Rand {
        /// Seed of the policy's private random stream.
        seed: u64,
    },
}

impl TieBreak {
    /// Instantiates the stateful breaker.
    pub fn breaker(self) -> Breaker {
        match self {
            TieBreak::Min => Breaker::Min,
            TieBreak::Max => Breaker::Max,
            TieBreak::Rand { seed } => Breaker::Rand(Box::new(derive_rng(seed, 0xBEEF))),
        }
    }

    /// The policy a sharded engine's shard `s` dispatcher runs.
    ///
    /// `Min`/`Max` are stateless and pass through. `Rand` keeps its seed
    /// on shard 0 — so a single-shard sharded run consumes the *same*
    /// random stream as a sequential run and reproduces it exactly — and
    /// mixes the shard index into the seed elsewhere, giving every shard
    /// an independent stream that depends only on `(seed, s)`, never on
    /// thread count. (A multi-shard `Rand` run therefore differs from
    /// the sequential schedule — the sequential engine draws one global
    /// stream across shards — but is itself fully deterministic and
    /// thread-count invariant.)
    pub fn for_shard(self, shard: usize) -> TieBreak {
        match self {
            TieBreak::Rand { seed } if shard > 0 => TieBreak::Rand {
                // SplitMix64's golden-ratio increment decorrelates
                // consecutive shard indices.
                seed: seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            },
            other => other,
        }
    }
}

impl std::fmt::Display for TieBreak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieBreak::Min => write!(f, "EFT-Min"),
            TieBreak::Max => write!(f, "EFT-Max"),
            TieBreak::Rand { .. } => write!(f, "EFT-Rand"),
        }
    }
}

/// Stateful tie breaker. `Rand` owns its RNG so repeated runs with the
/// same seed reproduce exactly.
#[derive(Debug)]
pub enum Breaker {
    /// Smallest index.
    Min,
    /// Largest index.
    Max,
    /// Uniform among candidates.
    Rand(Box<StdRng>),
}

impl Breaker {
    /// Picks one machine among the (non-empty, strictly increasing)
    /// candidate indices.
    ///
    /// # Panics
    /// Panics on an empty candidate set.
    pub fn pick(&mut self, candidates: &[usize]) -> usize {
        assert!(
            !candidates.is_empty(),
            "tie-break requires at least one candidate"
        );
        match self {
            Breaker::Min => candidates[0],
            Breaker::Max => *candidates.last().unwrap(),
            Breaker::Rand(rng) => candidates[rng.random_range(0..candidates.len())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_picks_first() {
        let mut b = TieBreak::Min.breaker();
        assert_eq!(b.pick(&[2, 5, 9]), 2);
    }

    #[test]
    fn max_picks_last() {
        let mut b = TieBreak::Max.breaker();
        assert_eq!(b.pick(&[2, 5, 9]), 9);
    }

    #[test]
    fn rand_is_reproducible() {
        let mut a = TieBreak::Rand { seed: 7 }.breaker();
        let mut b = TieBreak::Rand { seed: 7 }.breaker();
        for _ in 0..50 {
            assert_eq!(a.pick(&[0, 1, 2, 3]), b.pick(&[0, 1, 2, 3]));
        }
    }

    #[test]
    fn rand_covers_all_candidates() {
        // Theorem 9's hypothesis: no candidate is systematically
        // discarded — every machine must be picked with positive
        // probability.
        let mut b = TieBreak::Rand { seed: 3 }.breaker();
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[b.pick(&[0, 1, 2, 3])] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some candidate never chosen: {seen:?}"
        );
    }

    #[test]
    fn singleton_candidate_is_forced() {
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 1 }] {
            assert_eq!(tb.breaker().pick(&[4]), 4);
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        TieBreak::Min.breaker().pick(&[]);
    }

    #[test]
    fn for_shard_keeps_shard_zero_and_decorrelates_the_rest() {
        assert_eq!(TieBreak::Min.for_shard(3), TieBreak::Min);
        assert_eq!(TieBreak::Max.for_shard(1), TieBreak::Max);
        let base = TieBreak::Rand { seed: 42 };
        assert_eq!(base.for_shard(0), base);
        let one = base.for_shard(1);
        let two = base.for_shard(2);
        assert_ne!(one, base);
        assert_ne!(one, two);
        // Deterministic: same (seed, shard) → same derived policy.
        assert_eq!(base.for_shard(1), one);
    }

    #[test]
    fn display_names() {
        assert_eq!(TieBreak::Min.to_string(), "EFT-Min");
        assert_eq!(TieBreak::Max.to_string(), "EFT-Max");
        assert_eq!(TieBreak::Rand { seed: 0 }.to_string(), "EFT-Rand");
    }
}
