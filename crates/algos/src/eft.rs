//! EFT — Earliest Finish Time scheduling (paper Algorithm 2).
//!
//! EFT is an *immediate dispatch* algorithm: each task is irrevocably
//! assigned to a machine the instant it is released. The chosen machine
//! is one that can finish the task the earliest; among machines tied for
//! the earliest start (`U'ᵢ` of Equation (2)), a [`TieBreak`] policy
//! decides. With identical machines and no restrictions this is
//! equivalent to FIFO (Proposition 1) and therefore `(3 − 2/m)`-
//! competitive; with size-`k` disjoint processing sets it is
//! `(3 − 2/k)`-competitive (Corollary 1); with size-`k` overlapping
//! intervals its competitive ratio degrades to at least `m − k + 1`
//! (Theorems 8–10).

use flowsched_core::compact::ProcSetRef;
use flowsched_core::instance::Instance;
use flowsched_core::machine::MachineId;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::stream::{ArrivalStream, InstanceStream};
use flowsched_core::task::Task;
use flowsched_core::time::Time;
use flowsched_obs::{NoopRecorder, Recorder};

use crate::engine;
use crate::indexed::DispatchKernel;
use crate::registry::PolicySpec;
use crate::soa::{scan_ties_simd, CompletionBank, ScanImpl};
use crate::tiebreak::{Breaker, TieBreak};

/// Equation (2) in one pass: computes the tie set
/// `U'ᵢ = {j ∈ Mᵢ : C_j ≤ t'min}` with `t'min = max(rᵢ, min_j C_j)` while
/// folding the minimum, instead of a min-fold followed by a collection
/// scan. The pass starts in argmin mode (all completions seen so far
/// exceed the release, so the tie set is the running argmin set) and
/// switches permanently to release mode the first time some
/// `C_j ≤ rᵢ` — from then on `t'min = rᵢ` and every machine with
/// `C_j ≤ rᵢ` qualifies. Members must arrive in increasing machine
/// order; `ties` comes back in that same order, as `Breaker::pick`
/// requires.
///
/// This is the scalar oracle behind [`ScanImpl::Scalar`]; the default
/// [`ScanImpl::Simd`] path runs the two-pass vectorized
/// [`scan_ties_simd`](crate::soa::scan_ties_simd) over the padded SoA
/// bank, which produces the bitwise-identical tie set (proof sketch in
/// the [`soa`](crate::soa) module docs, pinned by `tests/simd_scan.rs`).
pub fn scan_ties(
    completions: &[Time],
    members: impl Iterator<Item = usize>,
    release: Time,
    ties: &mut Vec<usize>,
) {
    ties.clear();
    let mut released = false;
    let mut min_c = f64::INFINITY;
    for j in members {
        let c = completions[j];
        if released {
            if c <= release {
                ties.push(j);
            }
        } else if c <= release {
            released = true;
            ties.clear();
            ties.push(j);
        } else if c < min_c {
            min_c = c;
            ties.clear();
            ties.push(j);
        } else if c == min_c {
            ties.push(j);
        }
    }
}

/// Incremental EFT state: per-machine completion times plus the tie-break
/// policy. Dispatch tasks in release order; the state is what a real
/// immediate-dispatch load balancer would keep.
#[derive(Debug)]
pub struct EftState {
    completions: CompletionBank,
    breaker: Breaker,
    /// Which tie-scan implementation runs (bitwise-equivalent choices).
    scan: ScanImpl,
    /// Scratch buffer for the tie set, reused across dispatches.
    ties: Vec<usize>,
    /// Tasks dispatched so far (the trace sequence number; equals the
    /// instance `TaskId` when tasks are fed in release order).
    seq: u64,
}

impl EftState {
    /// Fresh state for `m` idle machines, on the default (SIMD) scan.
    pub fn new(m: usize, policy: TieBreak) -> Self {
        EftState::with_scan(m, policy, ScanImpl::default())
    }

    /// Fresh state with the tie-scan implementation forced — `Scalar`
    /// keeps the one-pass member scan reachable as the oracle.
    pub fn with_scan(m: usize, policy: TieBreak, scan: ScanImpl) -> Self {
        assert!(m > 0, "need at least one machine");
        EftState {
            completions: CompletionBank::new(m),
            breaker: policy.breaker(),
            scan,
            ties: Vec::new(),
            seq: 0,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.completions.len()
    }

    /// Current completion time `C_{j,i−1}` of each machine.
    pub fn completions(&self) -> &[Time] {
        self.completions.values()
    }

    /// Decomposes the state into the parts a mid-stream kernel switch
    /// must carry over: the completion bank, the breaker (with its RNG
    /// state — rebuilt breakers would replay draws and break bitwise
    /// transparency), and the trace sequence number.
    pub(crate) fn into_parts(self) -> (CompletionBank, Breaker, u64) {
        (self.completions, self.breaker, self.seq)
    }

    /// Rebuilds a state from carried-over parts (inverse of
    /// [`into_parts`](Self::into_parts)).
    pub(crate) fn from_parts(
        completions: CompletionBank,
        breaker: Breaker,
        scan: ScanImpl,
        seq: u64,
    ) -> Self {
        EftState {
            completions,
            breaker,
            scan,
            ties: Vec::new(),
            seq,
        }
    }

    /// Dispatches one task (Equation (2)): computes
    /// `t'min = max(rᵢ, min_{j∈Mᵢ} C_j)`, collects the tie set
    /// `U'ᵢ = {j ∈ Mᵢ : C_j ≤ t'min}`, picks a machine, and commits.
    ///
    /// Tasks must be dispatched in non-decreasing release order for the
    /// schedule to be meaningful (this mirrors the online arrival order).
    ///
    /// # Panics
    /// Panics if the processing set is empty or references a machine out
    /// of range.
    pub fn dispatch(&mut self, task: Task, set: &ProcSet) -> Assignment {
        self.dispatch_recorded(task, set, &mut NoopRecorder)
    }

    /// [`dispatch`](Self::dispatch) over a compact [`ProcSetRef`] view —
    /// what the streaming engine feeds. Identical semantics; the view's
    /// ascending member iterator replaces the slice walk.
    pub fn dispatch_ref(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch_ref_recorded(task, set, &mut NoopRecorder)
    }

    /// [`dispatch`](Self::dispatch) with instrumentation hooks: emits the
    /// task arrival, the dispatch (with its projected completion), and
    /// the machine's idle/busy transitions into `rec`. With
    /// [`NoopRecorder`] this monomorphizes to exactly the uninstrumented
    /// dispatch — the hooks and their argument computation compile away
    /// behind `R::ENABLED`, and recording never influences tie-breaking.
    ///
    /// Transition convention (pinned by `tests/obs_invariants.rs`): per
    /// machine, busy/idle events strictly alternate starting with busy;
    /// the idle transition at a machine's previous completion is emitted
    /// lazily, once the idle gap's end is known, and the trailing idle
    /// after the final completion is never emitted.
    ///
    /// # Panics
    /// Panics if the processing set is empty or references a machine out
    /// of range.
    pub fn dispatch_recorded<R: Recorder>(
        &mut self,
        task: Task,
        set: &ProcSet,
        rec: &mut R,
    ) -> Assignment {
        self.dispatch_ref_recorded(task, set.view(), rec)
    }

    /// [`dispatch_ref`](Self::dispatch_ref) with instrumentation hooks —
    /// the recorded core both plain entry points delegate to.
    ///
    /// # Panics
    /// Panics if the processing set is empty or references a machine out
    /// of range.
    pub fn dispatch_ref_recorded<R: Recorder>(
        &mut self,
        task: Task,
        set: ProcSetRef<'_>,
        rec: &mut R,
    ) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        // The padded bank holds +∞ past the live machines, which would
        // silently swallow out-of-range members under min — reject them
        // up front instead (matching the indexed kernel's guard).
        assert!(
            set.max().is_some_and(|j| j < self.completions.len()),
            "processing set references a machine out of range"
        );
        match self.scan {
            ScanImpl::Simd => {
                scan_ties_simd(self.completions.padded(), set, task.release, &mut self.ties)
            }
            ScanImpl::Scalar => scan_ties(
                self.completions.values(),
                set.iter(),
                task.release,
                &mut self.ties,
            ),
        }
        let u = self.breaker.pick(&self.ties);
        let prev = self.completions.get(u);
        let start = task.release.max(prev);
        if R::ENABLED {
            rec.task_arrival(self.seq, task.release);
            if start > prev {
                // The gap [prev, start) was idle; a machine that never
                // ran (prev == 0) is idle implicitly, not via an event.
                if prev > 0.0 {
                    rec.machine_idle(u as u32, prev);
                }
                rec.machine_busy(u as u32, start);
            } else if prev == 0.0 {
                // First task of the machine, starting at t = 0.
                rec.machine_busy(u as u32, start);
            }
            rec.task_dispatch(self.seq, u as u32, task.release, start, task.ptime);
        }
        self.seq += 1;
        self.completions.set(u, start + task.ptime);
        Assignment::new(MachineId(u), start)
    }

    /// The machines' waiting work at time `t` (`w_t` when sampled just
    /// before the next batch): `max(0, C_j − t)` per machine.
    pub fn backlog_at(&self, t: Time) -> Vec<Time> {
        let mut out = Vec::with_capacity(self.completions.len());
        self.backlog_into(t, &mut out);
        out
    }

    /// [`backlog_at`](Self::backlog_at) into a caller-provided buffer
    /// (cleared first). Trace loops that sample the backlog repeatedly
    /// keep one buffer instead of allocating a fresh `Vec` per sample.
    pub fn backlog_into(&self, t: Time, out: &mut Vec<Time>) {
        out.clear();
        out.extend(self.completions.values().iter().map(|&c| (c - t).max(0.0)));
    }

    /// Signed slack `t − C_j` per machine into a caller-provided buffer
    /// (cleared first): positive means the machine has been idle since
    /// `C_j`, negative means `−slack` units of backlog remain. The
    /// allocation-free companion of [`backlog_into`](Self::backlog_into)
    /// for trace loops that need the idle side too.
    pub fn slack_into(&self, t: Time, out: &mut Vec<Time>) {
        out.clear();
        out.extend(self.completions.values().iter().map(|&c| t - c));
    }
}

/// Abstraction over immediate-dispatch online schedulers: a task arrives,
/// an assignment is irrevocably returned. The paper's adaptive adversaries
/// (Theorems 3–5, 7, 10) are written against this trait so they can drive
/// any immediate-dispatch algorithm, not just EFT.
pub trait ImmediateDispatcher {
    /// Number of machines.
    fn machine_count(&self) -> usize;
    /// Irrevocably dispatches one released task.
    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment;
    /// Current completion time of each machine under the commitments made
    /// so far (what an adaptive adversary may observe).
    fn machine_completions(&self) -> &[Time];
    /// Decision counters for index-backed kernels
    /// ([`KernelStats`](crate::indexed::KernelStats)); `None` for
    /// dispatchers with no index. The engine flushes `Some` stats into
    /// the recorder's kernel counters at the end of sequential runs.
    #[inline(always)]
    fn kernel_stats(&self) -> Option<crate::indexed::KernelStats> {
        None
    }
}

impl ImmediateDispatcher for EftState {
    fn machine_count(&self) -> usize {
        self.machines()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch_ref(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }
}

/// Runs EFT over a complete instance, returning the schedule.
///
/// ```
/// use flowsched_algos::{TieBreak, eft};
/// use flowsched_core::prelude::*;
///
/// let mut b = InstanceBuilder::new(2);
/// b.push_unit(0.0, ProcSet::full(2));
/// b.push_unit(0.0, ProcSet::full(2));
/// b.push_unit(0.0, ProcSet::singleton(0)); // must queue behind a task on M1
/// let inst = b.build().unwrap();
///
/// let schedule = eft(&inst, TieBreak::Min);
/// schedule.validate(&inst).unwrap();
/// assert_eq!(schedule.fmax(&inst), 2.0);
/// ```
pub fn eft(inst: &Instance, policy: TieBreak) -> Schedule {
    eft_stream(InstanceStream::new(inst), policy, &mut NoopRecorder)
}

/// Runs EFT over an arbitrary [`ArrivalStream`] — the canonical entry
/// point. The shared engine ([`engine::run_immediate`]) pulls arrivals
/// lazily, so memory stays O(machines) regardless of stream length, and
/// `rec` sees arrivals, dispatches, and machine transitions for the
/// whole run (with [`NoopRecorder`] the hooks compile away). Feeding an
/// [`InstanceStream`] reproduces the batch [`eft`] schedule exactly.
pub fn eft_stream<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    rec: &mut R,
) -> Schedule {
    eft_stream_with_kernel(stream, policy, DispatchKernel::Auto, rec)
}

/// [`eft_stream`] with the dispatch kernel forced: `Scalar` is the
/// member-scan oracle, `Indexed` the segment-tree/cluster-heap kernel,
/// `Auto` (what [`eft_stream`] uses) selects from the stream's
/// structure hint — set width as well as machine count, per the
/// crossover model of
/// [`indexed_min_width`](crate::indexed::indexed_min_width). All
/// three produce bitwise-identical schedules and recorder traces
/// (pinned by `tests/kernel_equivalence.rs`).
pub fn eft_stream_with_kernel<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    kernel: DispatchKernel,
    rec: &mut R,
) -> Schedule {
    engine::policy_schedule(stream, &PolicySpec::eft(policy, kernel), rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::task::TaskId;

    #[test]
    fn unrestricted_tasks_balance_across_machines() {
        // 4 simultaneous unit tasks on 4 machines: one each, Fmax = 1.
        let mut b = InstanceBuilder::new(4);
        for _ in 0..4 {
            b.push_unit(0.0, ProcSet::full(4));
        }
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        s.validate(&inst).unwrap();
        assert_eq!(s.fmax(&inst), 1.0);
        let mut machines: Vec<usize> = (0..4).map(|i| s.machine(TaskId(i)).index()).collect();
        machines.sort_unstable();
        assert_eq!(machines, vec![0, 1, 2, 3]);
    }

    #[test]
    fn min_and_max_pick_opposite_ends() {
        let mut b = InstanceBuilder::new(3);
        b.push_unit(0.0, ProcSet::full(3));
        let inst = b.build().unwrap();
        let smin = eft(&inst, TieBreak::Min);
        let smax = eft(&inst, TieBreak::Max);
        assert_eq!(smin.machine(TaskId(0)), MachineId(0));
        assert_eq!(smax.machine(TaskId(0)), MachineId(2));
    }

    #[test]
    fn respects_processing_sets() {
        // Machine 0 is heavily loaded but the restricted task may only use
        // machine 0, so it must wait there.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 5.0), ProcSet::singleton(0));
        b.push(Task::new(0.0, 1.0), ProcSet::singleton(0));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        s.validate(&inst).unwrap();
        assert_eq!(s.machine(TaskId(1)), MachineId(0));
        assert_eq!(s.start(TaskId(1)), 5.0);
        assert_eq!(s.fmax(&inst), 6.0);
    }

    #[test]
    fn eft_prefers_earliest_finishing_machine() {
        // M1 busy until 3, M2 until 1; new task goes to M2.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 3.0), ProcSet::singleton(0));
        b.push(Task::new(0.0, 1.0), ProcSet::singleton(1));
        b.push(Task::new(0.5, 1.0), ProcSet::full(2));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        assert_eq!(s.machine(TaskId(2)), MachineId(1));
        assert_eq!(s.start(TaskId(2)), 1.0);
    }

    #[test]
    fn tie_set_requires_c_le_tmin() {
        // M1 free at 2, M2 free at 0; task released at 2: both are in the
        // tie set (C_j ≤ 2) → Min picks M1.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 2.0), ProcSet::singleton(0));
        b.push(Task::new(2.0, 1.0), ProcSet::full(2));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        assert_eq!(s.machine(TaskId(1)), MachineId(0));
        assert_eq!(s.start(TaskId(1)), 2.0);
    }

    #[test]
    fn immediate_dispatch_starts_at_release_when_idle() {
        let mut b = InstanceBuilder::new(3);
        b.push(Task::new(1.5, 2.0), ProcSet::full(3));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Max);
        assert_eq!(s.start(TaskId(0)), 1.5);
    }

    #[test]
    fn backlog_into_reuses_buffer_and_matches_backlog_at() {
        let mut st = EftState::new(3, TieBreak::Min);
        st.dispatch(Task::new(0.0, 2.0), &ProcSet::full(3));
        st.dispatch(Task::new(0.0, 1.0), &ProcSet::full(3));
        let mut buf = vec![99.0; 7]; // stale contents must be cleared
        for t in [0.0, 0.5, 1.5, 10.0] {
            st.backlog_into(t, &mut buf);
            assert_eq!(buf, st.backlog_at(t), "t = {t}");
        }
    }

    #[test]
    fn slack_into_reports_signed_idle_and_backlog() {
        let mut st = EftState::new(2, TieBreak::Min);
        st.dispatch(Task::new(0.0, 3.0), &ProcSet::full(2));
        st.dispatch(Task::new(0.0, 1.0), &ProcSet::full(2));
        let mut buf = vec![42.0; 5]; // stale contents must be cleared
        st.slack_into(2.0, &mut buf);
        assert_eq!(buf, vec![-1.0, 1.0]);
        st.slack_into(0.0, &mut buf);
        assert_eq!(buf, vec![-3.0, -1.0]);
    }

    #[test]
    fn scalar_scan_matches_default_simd_scan() {
        let mut b = InstanceBuilder::new(6);
        for i in 0..60 {
            b.push_unit(i as f64 * 0.3, ProcSet::interval(i % 4, (i % 4) + 2));
        }
        let inst = b.build().unwrap();
        for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 5 }] {
            let mut simd = EftState::with_scan(6, tb, ScanImpl::Simd);
            let mut scalar = EftState::with_scan(6, tb, ScanImpl::Scalar);
            for (_, task, set) in inst.iter() {
                assert_eq!(
                    simd.dispatch(task, set),
                    scalar.dispatch(task, set),
                    "tb {tb:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dispatch_rejects_out_of_range_sets() {
        let mut st = EftState::new(2, TieBreak::Min);
        st.dispatch_ref(Task::new(0.0, 1.0), ProcSetRef::interval(1, 2));
    }

    #[test]
    fn state_backlog_reports_waiting_work() {
        let mut st = EftState::new(2, TieBreak::Min);
        st.dispatch(Task::new(0.0, 3.0), &ProcSet::full(2));
        st.dispatch(Task::new(0.0, 1.0), &ProcSet::full(2));
        assert_eq!(st.backlog_at(0.5), vec![2.5, 0.5]);
        assert_eq!(st.backlog_at(10.0), vec![0.0, 0.0]);
    }

    #[test]
    fn rand_policy_produces_valid_schedules() {
        let mut b = InstanceBuilder::new(4);
        for i in 0..40 {
            b.push_unit(i as f64 * 0.25, ProcSet::interval(i % 3, (i % 3) + 1));
        }
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Rand { seed: 11 });
        s.validate(&inst).unwrap();
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut b = InstanceBuilder::new(5);
        for i in 0..30 {
            b.push_unit((i / 5) as f64, ProcSet::full(5));
        }
        let inst = b.build().unwrap();
        let a = eft(&inst, TieBreak::Rand { seed: 4 });
        let c = eft(&inst, TieBreak::Rand { seed: 4 });
        assert_eq!(a, c);
    }

    #[test]
    fn recorded_dispatch_matches_plain_dispatch_and_traces_transitions() {
        use flowsched_obs::{Counter, Event, MemoryRecorder};
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 2.0), ProcSet::singleton(0)); // M1 busy [0,2)
        b.push(Task::new(3.0, 1.0), ProcSet::singleton(0)); // idle gap [2,3)
        b.push(Task::new(4.0, 1.0), ProcSet::singleton(0)); // contiguous at 4
        let inst = b.build().unwrap();
        let mut rec = MemoryRecorder::with_defaults(2);
        let recorded = eft_stream(InstanceStream::new(&inst), TieBreak::Min, &mut rec);
        assert_eq!(
            recorded,
            eft(&inst, TieBreak::Min),
            "recording must not alter schedules"
        );
        assert_eq!(rec.counters().get(Counter::TasksDispatched), 3);
        // M1: busy@0, idle@2, busy@3 — then 4.0 == completion, contiguous.
        let transitions: Vec<Event> = rec
            .trace()
            .iter()
            .filter(|e| matches!(e, Event::MachineBusy { .. } | Event::MachineIdle { .. }))
            .copied()
            .collect();
        assert_eq!(
            transitions,
            vec![
                Event::MachineBusy {
                    machine: 0,
                    at: 0.0
                },
                Event::MachineIdle {
                    machine: 0,
                    at: 2.0
                },
                Event::MachineBusy {
                    machine: 0,
                    at: 3.0
                },
            ]
        );
        assert_eq!(rec.busy_time(), &[4.0, 0.0]);
        assert_eq!(rec.makespan_seen(), 5.0);
    }

    #[test]
    fn recording_does_not_perturb_the_rand_policy() {
        use flowsched_obs::MemoryRecorder;
        let mut b = InstanceBuilder::new(5);
        for i in 0..40 {
            b.push_unit((i / 5) as f64, ProcSet::full(5));
        }
        let inst = b.build().unwrap();
        let tb = TieBreak::Rand { seed: 9 };
        let mut rec = MemoryRecorder::with_defaults(5);
        assert_eq!(
            eft_stream(InstanceStream::new(&inst), tb, &mut rec),
            eft(&inst, tb)
        );
    }

    #[test]
    fn work_conserving_on_single_machine() {
        // On one machine EFT is FIFO and leaves no unforced idle.
        let mut b = InstanceBuilder::new(1);
        b.push(Task::new(0.0, 1.0), ProcSet::full(1));
        b.push(Task::new(0.5, 1.0), ProcSet::full(1));
        b.push(Task::new(3.0, 1.0), ProcSet::full(1));
        let inst = b.build().unwrap();
        let s = eft(&inst, TieBreak::Min);
        assert_eq!(s.start(TaskId(0)), 0.0);
        assert_eq!(s.start(TaskId(1)), 1.0);
        assert_eq!(s.start(TaskId(2)), 3.0); // idle 2→3 is forced
    }
}
