//! Exact *preemptive* offline optimum for `P | rᵢ, pmtn, Mᵢ | Fmax`.
//!
//! The paper's Table 1 cites Legrand et al.'s optimal offline preemptive
//! algorithm (via linear programming on unrelated machines). For
//! identical machines with processing set restrictions the feasibility
//! question reduces to a max-flow computation, which this module builds
//! on the workspace's Dinic solver:
//!
//! Binary-search the flow budget `F`. For a candidate `F`, every task
//! must fit in its window `[rᵢ, rᵢ + F]`. Cut the time axis at all
//! releases and deadlines into intervals `I₁ … I_q` and route work
//! through the network
//!
//! ```text
//! source ─p_i→ task_i ─|I|→ (task_i, I) ─∞→ (I, machine j ∈ Mᵢ) ─|I|→ sink
//! ```
//!
//! The `(task, I)` node caps a task's work inside `I` at `|I|` (a task
//! runs on one machine at a time); the `(I, j)` node caps machine `j`'s
//! capacity in `I`. By the open-shop theorem of Gonzalez & Sahni, any
//! flow satisfying both cap families is realizable as an actual
//! preemptive schedule inside each interval, so budget `F` is feasible
//! iff the max flow equals `Σ pᵢ`.
//!
//! The preemptive optimum is a valid lower bound on the non-preemptive
//! `F*max`, usually far tighter than the combinatorial bounds of
//! [`crate::offline::fmax_lower_bound`].

use flowsched_core::instance::Instance;
use flowsched_core::time::Time;
use flowsched_solver::maxflow::FlowNetwork;

/// Decides whether every task can preemptively complete within flow
/// budget `f` (see module docs for the network).
pub fn preemptive_budget_feasible(inst: &Instance, f: Time) -> bool {
    if inst.is_empty() {
        return true;
    }
    if f < inst.pmax() {
        return false; // a task cannot finish faster than its length
    }
    let n = inst.len();
    let m = inst.machines();

    // Interval boundaries: releases and deadlines.
    let mut cuts: Vec<Time> = inst
        .tasks()
        .iter()
        .flat_map(|t| [t.release, t.release + f])
        .collect();
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cuts.dedup();
    let intervals: Vec<(Time, Time)> = cuts
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|(a, b)| b > a)
        .collect();
    let q = intervals.len();

    // Node layout.
    let source = 0usize;
    let task_node = |i: usize| 1 + i;
    let ti_node = |i: usize, v: usize| 1 + n + i * q + v;
    let iv_machine_node = |v: usize, j: usize| 1 + n + n * q + v * m + j;
    let sink = 1 + n + n * q + q * m;
    let mut g = FlowNetwork::new(sink + 1);

    let mut total_work = 0.0;
    for (id, task, set) in inst.iter() {
        let i = id.0;
        total_work += task.ptime;
        g.add_edge(source, task_node(i), task.ptime);
        let deadline = task.release + f;
        for (v, &(lo, hi)) in intervals.iter().enumerate() {
            // The interval must lie inside the task's window.
            if lo >= task.release - 1e-12 && hi <= deadline + 1e-12 {
                let len = hi - lo;
                g.add_edge(task_node(i), ti_node(i, v), len);
                for &j in set.as_slice() {
                    g.add_edge(ti_node(i, v), iv_machine_node(v, j), f64::MAX / 4.0);
                }
            }
        }
    }
    for (v, &(lo, hi)) in intervals.iter().enumerate() {
        let len = hi - lo;
        for j in 0..m {
            g.add_edge(iv_machine_node(v, j), sink, len);
        }
    }

    let flow = g.max_flow(source, sink);
    flow >= total_work - 1e-7 * (1.0 + total_work)
}

/// Computes the optimal preemptive `Fmax` by binary search to absolute
/// tolerance `tol`.
///
/// ```
/// use flowsched_algos::preemptive::optimal_preemptive_fmax;
/// use flowsched_core::prelude::*;
///
/// // Three length-2 tasks on 2 machines at t = 0: preemption achieves
/// // the W/m bound of 3 (McNaughton wrap-around); without preemption
/// // some machine runs two whole tasks → 4.
/// let mut b = InstanceBuilder::new(2);
/// for _ in 0..3 { b.push(Task::new(0.0, 2.0), ProcSet::full(2)); }
/// let inst = b.build().unwrap();
/// assert!((optimal_preemptive_fmax(&inst, 1e-6) - 3.0).abs() < 1e-4);
/// ```
///
/// # Panics
/// Panics if `tol ≤ 0`.
pub fn optimal_preemptive_fmax(inst: &Instance, tol: Time) -> Time {
    assert!(tol > 0.0, "tolerance must be positive");
    if inst.is_empty() {
        return 0.0;
    }
    // Bracket: pmax is a universal lower bound; the bound of the paper's
    // Equation (4)-style argument gives W/|S| + span as a crude feasible
    // upper bound — grow geometrically from pmax until feasible instead.
    let mut lo = inst.pmax();
    if preemptive_budget_feasible(inst, lo) {
        return lo;
    }
    let mut hi = lo.max(1e-9) * 2.0 + inst.total_work();
    let mut guard = 0;
    while !preemptive_budget_feasible(inst, hi) {
        hi *= 2.0;
        guard += 1;
        assert!(guard < 64, "no feasible budget found — oracle bug");
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if preemptive_budget_feasible(inst, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{brute_force_fmax, fmax_lower_bound, optimal_unit_fmax};
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::task::Task;

    const TOL: f64 = 1e-6;

    #[test]
    fn single_task_is_its_length() {
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(1.0, 2.5), ProcSet::full(2));
        let inst = b.build().unwrap();
        let f = optimal_preemptive_fmax(&inst, TOL);
        assert!((f - 2.5).abs() < 1e-5, "{f}");
    }

    #[test]
    fn simultaneous_burst_on_one_machine() {
        // 4 unit tasks at t=0 on one machine: some task completes at 4.
        let mut b = InstanceBuilder::new(1);
        for _ in 0..4 {
            b.push_unit(0.0, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        let f = optimal_preemptive_fmax(&inst, TOL);
        assert!((f - 4.0).abs() < 1e-5, "{f}");
    }

    #[test]
    fn preemption_splits_work_across_machines() {
        // 3 tasks of length 2 at t=0 on 2 machines: W/m = 3 is achievable
        // preemptively (e.g. McNaughton wrap-around), not worse.
        let mut b = InstanceBuilder::new(2);
        for _ in 0..3 {
            b.push(Task::new(0.0, 2.0), ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let f = optimal_preemptive_fmax(&inst, TOL);
        assert!((f - 3.0).abs() < 1e-5, "{f}");
        // Non-preemptively 4 is forced (two length-2 tasks in sequence).
        assert_eq!(brute_force_fmax(&inst), 4.0);
    }

    #[test]
    fn respects_processing_sets() {
        // Two length-2 tasks pinned to M1 while M2 idles: F* = 4 even
        // preemptively.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 2.0), ProcSet::singleton(0));
        b.push(Task::new(0.0, 2.0), ProcSet::singleton(0));
        let inst = b.build().unwrap();
        let f = optimal_preemptive_fmax(&inst, TOL);
        assert!((f - 4.0).abs() < 1e-5, "{f}");
    }

    #[test]
    fn never_exceeds_nonpreemptive_optimum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for trial in 0..30 {
            let m = rng.random_range(1..=3);
            let n = rng.random_range(1..=6);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..n {
                let r = rng.random_range(0..4) as f64;
                let p = 0.5 * rng.random_range(1..=6) as f64;
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                b.push(Task::new(r, p), ProcSet::interval(lo, hi));
            }
            let inst = b.build().unwrap();
            let pre = optimal_preemptive_fmax(&inst, TOL);
            let non = brute_force_fmax(&inst);
            assert!(
                pre <= non + 1e-4,
                "trial {trial}: preemptive {pre} > non-preemptive {non}"
            );
        }
    }

    #[test]
    fn dominates_combinatorial_lower_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        for _ in 0..20 {
            let m = rng.random_range(1..=3);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..rng.random_range(1..=8) {
                let r = rng.random_range(0..5) as f64;
                let p = 0.25 * rng.random_range(1..=8) as f64;
                b.push(Task::new(r, p), ProcSet::full(m));
            }
            let inst = b.build().unwrap();
            let pre = optimal_preemptive_fmax(&inst, TOL);
            let lb = fmax_lower_bound(&inst);
            assert!(pre >= lb - 1e-4, "preemptive {pre} < combinatorial LB {lb}");
        }
    }

    #[test]
    fn matches_unit_optimum_when_preemption_cannot_help() {
        // Unit tasks at integer releases: preemption gains nothing when
        // windows are laminar unit slots; on these instances the two
        // optima coincide.
        let mut b = InstanceBuilder::new(2);
        for t in 0..4 {
            b.push_unit(t as f64, ProcSet::full(2));
            b.push_unit(t as f64, ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        let unit = optimal_unit_fmax(&inst);
        let pre = optimal_preemptive_fmax(&inst, TOL);
        assert!((unit - pre).abs() < 1e-4, "unit {unit} vs preemptive {pre}");
    }

    #[test]
    fn staggered_releases_pipeline() {
        // One unit task per step on one machine: flow 1 preemptively too.
        let mut b = InstanceBuilder::new(1);
        for t in 0..6 {
            b.push_unit(t as f64, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        let f = optimal_preemptive_fmax(&inst, TOL);
        assert!((f - 1.0).abs() < 1e-5, "{f}");
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::unrestricted(3, vec![]).unwrap();
        assert_eq!(optimal_preemptive_fmax(&inst, TOL), 0.0);
    }

    #[test]
    fn feasibility_is_monotone_in_budget() {
        let mut b = InstanceBuilder::new(2);
        for _ in 0..5 {
            b.push(Task::new(0.0, 2.0), ProcSet::full(2));
        }
        let inst = b.build().unwrap();
        // W/m = 5 is the optimum here.
        assert!(!preemptive_budget_feasible(&inst, 4.9));
        assert!(preemptive_budget_feasible(&inst, 5.0 + 1e-9));
        assert!(preemptive_budget_feasible(&inst, 8.0));
    }
}
