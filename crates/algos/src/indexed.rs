//! Indexed EFT dispatch: O(log m) machine selection over compact
//! processing sets.
//!
//! The scalar [`EftState`] evaluates Equation (2) by scanning every
//! member of `Mᵢ` — O(|Mᵢ|) per task, which on the paper's structured
//! families (interval, inclusive, disjoint; Th. 3–10) is exactly the
//! cost the structure makes avoidable. [`IndexedEftState`] exploits the
//! compact [`ProcSetRef`] shapes arrival streams now lend:
//!
//! - **Interval / prefix / ring sets** are one or two index ranges, so a
//!   *leftmost-argmin segment tree* ([`MinTree`]) over the machine
//!   completion times answers `min_{j∈Mᵢ} C_j` with a range-min query
//!   and finds the picked machine by bound-pruned descent — O(log m)
//!   per task for `Min`/`Max` tie-breaks, O(|U'ᵢ| log m) for `Rand`
//!   (which must enumerate the whole tie set to reproduce the
//!   `Breaker::pick` RNG contract: one `random_range(0..|U'ᵢ|)` draw).
//! - **Explicit sets** go through a cluster index: the first time a
//!   member slice is seen, its machines are claimed and a per-cluster
//!   binary min-heap of completions is built (the disjoint-family case,
//!   Cor. 1 workloads); later tasks on the same set run in
//!   O(|U'ᵢ| log k). Sets that overlap a claimed cluster fall back to
//!   the fused scalar scan — correctness never depends on detection.
//!
//! Every path computes the exact tie set `U'ᵢ` in ascending machine
//! order and feeds it through the same [`Breaker`], so schedules (and,
//! via the engine's recorder convention, event traces) are
//! bitwise-identical to the scalar kernel — pinned by
//! `tests/kernel_equivalence.rs`.
//!
//! Staleness discipline: machine completions only ever *increase*, so a
//! heap entry is allowed to understate its machine's completion. Both
//! lazy structures rely on this — the segment tree is updated eagerly
//! on every commit, while cluster heap entries self-heal on peek
//! (a stale top is re-keyed and re-sifted; an accurate top is the true
//! minimum because every other entry understates or equals its own,
//! later, completion).

use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::Assignment;
use flowsched_core::structure::StructureReport;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::adaptive::AdaptiveEftState;
use crate::eft::{scan_ties, EftState, ImmediateDispatcher};
use crate::soa::{scan_ties_simd, CompletionBank, ScanImpl, SoaMinHeap};
use crate::tiebreak::{Breaker, TieBreak};

/// Decision counters of the indexed kernel — which path served each
/// dispatch and how often the lazy structures had to repair themselves.
///
/// Monotone over a run; the engine flushes them into the recorder's
/// `IndexedDescents` / `ScalarFallbackScans` / `HeapSelfHeals` counters
/// after sequential runs (sharded workers consume their dispatchers on
/// other threads, so their stats stay thread-local). A high
/// `scalar_fallback_scans` share means the workload's explicit sets
/// overlap and defeat the cluster index; a high `heap_self_heals` rate
/// means interval and explicit traffic interleave on the same machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Dispatches answered by the segment tree or a cluster heap.
    pub indexed_descents: u64,
    /// Explicit-set dispatches that fell back to the scalar tie scan.
    pub scalar_fallback_scans: u64,
    /// Stale cluster-heap entries re-keyed and re-sifted on peek.
    pub heap_self_heals: u64,
}

impl KernelStats {
    /// Accumulates another counter snapshot into this one — how the
    /// engine merges per-shard stats and how the adaptive kernel carries
    /// counters across mid-stream kernel switches.
    pub fn merge(&mut self, other: KernelStats) {
        self.indexed_descents += other.indexed_descents;
        self.scalar_fallback_scans += other.scalar_fallback_scans;
        self.heap_self_heals += other.heap_self_heals;
    }
}

/// Machine count at which [`DispatchKernel::Auto`] switches to the
/// indexed kernel. Below it the scalar scan's cache-friendly sweep wins;
/// above it the O(log m) tree pays off even for moderate set widths.
pub const AUTO_INDEXED_MIN_MACHINES: usize = 64;

/// Which EFT dispatch kernel to run. All choices produce
/// bitwise-identical schedules; the choice is purely a performance
/// decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchKernel {
    /// Adapt live: start from the machine-count rule
    /// ([`AUTO_INDEXED_MIN_MACHINES`]), classify the arriving sets
    /// incrementally, and re-resolve through
    /// [`for_structure`](DispatchKernel::for_structure) after a warmup
    /// window and on classification changes
    /// ([`AdaptiveEftState`](crate::adaptive::AdaptiveEftState)).
    /// When the stream offers a
    /// [`structure_hint`](flowsched_core::stream::ArrivalStream::structure_hint),
    /// [`resolve_for_stream`](DispatchKernel::resolve_for_stream)
    /// settles the choice up front instead.
    #[default]
    Auto,
    /// Force the member-scan oracle ([`EftState`]).
    Scalar,
    /// Force the segment-tree / cluster-heap kernel
    /// ([`IndexedEftState`]).
    Indexed,
}

impl DispatchKernel {
    /// Resolves `Auto` for `m` machines.
    pub fn resolve(self, m: usize) -> DispatchKernel {
        match self {
            DispatchKernel::Auto => {
                if m >= AUTO_INDEXED_MIN_MACHINES {
                    DispatchKernel::Indexed
                } else {
                    DispatchKernel::Scalar
                }
            }
            other => other,
        }
    }

    /// Kernel suggested by a family classification
    /// ([`flowsched_core::structure::classify`]): structured families
    /// (interval, ring, inclusive, nested, disjoint) benefit from the
    /// index once `m` crosses the auto threshold **and** the sets are
    /// wide enough for O(log m) descents to beat the scalar sweep.
    ///
    /// The width test is what fixes the BENCH_PR5 small-set regression:
    /// on `disjoint` blocks of width `m/16` the indexed kernel *lost*
    /// below the crossover (m = 64: 614 µs indexed vs 348 µs scalar for
    /// k = 4; m = 256: 761 µs vs 575 µs for k = 16) and won above it
    /// (m = 1024: 1.11 ms vs 1.45 ms for k = 64) — scanning a handful
    /// of members is cheaper than a tree descent, however large `m` is.
    /// [`indexed_min_width`] places the cut between those measured
    /// points; families with no fixed width (mixed or unknown set
    /// sizes, `fixed_size == None`) keep the index, matching the
    /// measured interval/inclusive sweeps where it wins at every `m`.
    pub fn for_structure(report: &StructureReport, m: usize) -> DispatchKernel {
        let structured = report.interval
            || report.ring_interval
            || report.inclusive
            || report.nested
            || report.disjoint;
        if !structured || m < AUTO_INDEXED_MIN_MACHINES {
            return DispatchKernel::Scalar;
        }
        match report.fixed_size {
            Some(k) if k < indexed_min_width(m) => DispatchKernel::Scalar,
            _ => DispatchKernel::Indexed,
        }
    }

    /// Resolves this kernel choice for a concrete stream: `Auto`
    /// consults the stream's
    /// [`structure_hint`](flowsched_core::stream::ArrivalStream::structure_hint)
    /// through [`for_structure`](DispatchKernel::for_structure) when one
    /// is available (the hint covers the whole stream, so the choice is
    /// settled up front), and stays `Auto` — the live-reclassifying
    /// adaptive kernel — when the source promises nothing. Explicit
    /// choices pass through untouched.
    pub fn resolve_for_stream<S>(self, stream: &S) -> DispatchKernel
    where
        S: flowsched_core::stream::ArrivalStream + ?Sized,
    {
        match self {
            DispatchKernel::Auto => match stream.structure_hint() {
                Some(report) => DispatchKernel::for_structure(&report, stream.machines()),
                None => DispatchKernel::Auto,
            },
            other => other,
        }
    }
}

/// Minimum fixed set width for which the indexed kernel is expected to
/// beat the scalar scan on `m` machines: `2·⌈log₂ m⌉`-ish (two tree
/// descents' worth of nodes). A scalar dispatch touches `k` completion
/// slots sequentially; an indexed one touches O(log m) scattered tree
/// nodes for the query plus log m for the commit — so narrow sets on
/// huge machine counts still favor the sweep. The constant is pinned by
/// the BENCH_PR5 medians quoted at
/// [`for_structure`](DispatchKernel::for_structure).
pub fn indexed_min_width(m: usize) -> usize {
    2 * (usize::BITS - m.leading_zeros()) as usize
}

/// Upper bound on segment-tree depth (and canonical-decomposition node
/// count per side): `leaves ≤ 2^63` on a 64-bit target, so fixed
/// stack-allocated node buffers of this size never overflow.
const MAX_TREE_DEPTH: usize = 64;

/// A segment tree over machine completion times supporting point
/// update, range minimum, and bound-pruned leftmost/rightmost/collect
/// descent — the index behind [`IndexedEftState`].
///
/// Leaves are padded to a power of two with `+∞` so every internal node
/// has two children; leaf `j` lives at `leaves + j` in the flattened
/// 1-based array (parent `i`, children `2i`/`2i+1` — the
/// prefetch-friendly Eytzinger layout, no pointers).
///
/// The descents are *branchless*: a query range `[lo, hi]` is first
/// decomposed bottom-up into its O(log m) canonical nodes (pure index
/// arithmetic, no value-dependent branches), and the in-subtree walk to
/// a qualifying leaf is an arithmetic child-select —
/// `node = 2·node + (vals[2·node] > bound)` — with no data-dependent
/// branch for the hardware to mispredict on random completion data.
#[derive(Debug, Clone)]
struct MinTree {
    leaves: usize,
    vals: Vec<Time>,
}

impl MinTree {
    /// Tree over `m` machines, all completions 0.
    fn new(m: usize) -> Self {
        let leaves = m.next_power_of_two();
        let mut vals = vec![f64::INFINITY; 2 * leaves];
        for v in &mut vals[leaves..leaves + m] {
            *v = 0.0;
        }
        for i in (1..leaves).rev() {
            vals[i] = vals[2 * i].min(vals[2 * i + 1]);
        }
        MinTree { leaves, vals }
    }

    /// Tree seeded from an existing completion slice (what a mid-stream
    /// kernel switch rebuilds the index from).
    fn from_values(completions: &[Time]) -> Self {
        let mut t = MinTree::new(completions.len());
        for (j, &v) in completions.iter().enumerate() {
            t.vals[t.leaves + j] = v;
        }
        for i in (1..t.leaves).rev() {
            t.vals[i] = t.vals[2 * i].min(t.vals[2 * i + 1]);
        }
        t
    }

    /// Canonical-node decomposition of `[lo, hi]` (inclusive): the
    /// disjoint maximal subtrees covering the range, written into
    /// `nodes` in ascending leaf-position order. Pure index arithmetic —
    /// the value-dependent work happens only after, on the O(log m)
    /// canonical roots.
    fn decompose(&self, lo: usize, hi: usize, nodes: &mut [usize; MAX_TREE_DEPTH]) -> usize {
        let (mut l, mut r) = (self.leaves + lo, self.leaves + hi + 1);
        let mut left = [0usize; MAX_TREE_DEPTH];
        let mut right = [0usize; MAX_TREE_DEPTH];
        let (mut ln, mut rn) = (0, 0);
        // Standard bottom-up sweep: left-edge nodes come out in
        // ascending position order, right-edge nodes in descending.
        while l < r {
            if l & 1 == 1 {
                left[ln] = l;
                ln += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                right[rn] = r;
                rn += 1;
            }
            l /= 2;
            r /= 2;
        }
        nodes[..ln].copy_from_slice(&left[..ln]);
        for i in 0..rn {
            nodes[ln + i] = right[rn - 1 - i];
        }
        ln + rn
    }

    /// Leftmost qualifying leaf inside the subtree rooted at `node`
    /// (whose min is known `≤ bound`): arithmetic child-select, no
    /// data-dependent branches.
    #[inline]
    fn descend_leftmost(&self, mut node: usize, bound: Time) -> usize {
        while node < self.leaves {
            let l = 2 * node;
            node = l + (self.vals[l] > bound) as usize;
        }
        node - self.leaves
    }

    /// Rightmost counterpart of
    /// [`descend_leftmost`](Self::descend_leftmost).
    #[inline]
    fn descend_rightmost(&self, mut node: usize, bound: Time) -> usize {
        while node < self.leaves {
            let r = 2 * node + 1;
            node = r - (self.vals[r] > bound) as usize;
        }
        node - self.leaves
    }

    /// Sets machine `j`'s completion to `v` and refreshes its ancestors.
    fn update(&mut self, j: usize, v: Time) {
        let mut i = self.leaves + j;
        self.vals[i] = v;
        while i > 1 {
            i /= 2;
            self.vals[i] = self.vals[2 * i].min(self.vals[2 * i + 1]);
        }
    }

    /// `min_{lo ≤ j ≤ hi} C_j` (inclusive bounds).
    fn range_min(&self, lo: usize, hi: usize) -> Time {
        let (mut l, mut r) = (self.leaves + lo, self.leaves + hi + 1);
        let mut best = f64::INFINITY;
        while l < r {
            if l & 1 == 1 {
                best = best.min(self.vals[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                best = best.min(self.vals[r]);
            }
            l /= 2;
            r /= 2;
        }
        best
    }

    /// Smallest `j ∈ [lo, hi]` with `C_j ≤ bound`: scan the canonical
    /// nodes in ascending order for the first whose min qualifies, then
    /// descend branchlessly inside it.
    fn leftmost_le(&self, lo: usize, hi: usize, bound: Time) -> Option<usize> {
        let mut nodes = [0usize; MAX_TREE_DEPTH];
        let n = self.decompose(lo, hi, &mut nodes);
        nodes[..n]
            .iter()
            .find(|&&node| self.vals[node] <= bound)
            .map(|&node| self.descend_leftmost(node, bound))
    }

    /// Largest `j ∈ [lo, hi]` with `C_j ≤ bound`.
    fn rightmost_le(&self, lo: usize, hi: usize, bound: Time) -> Option<usize> {
        let mut nodes = [0usize; MAX_TREE_DEPTH];
        let n = self.decompose(lo, hi, &mut nodes);
        nodes[..n]
            .iter()
            .rev()
            .find(|&&node| self.vals[node] <= bound)
            .map(|&node| self.descend_rightmost(node, bound))
    }

    /// Appends every `j ∈ [lo, hi]` with `C_j ≤ bound` to `out`, in
    /// increasing order — O(|result| log m): an iterative bound-pruned
    /// DFS (right child pushed first so leaves pop in ascending order)
    /// over each canonical node, on an explicit stack whose depth is
    /// bounded by the tree height.
    fn collect_le(&self, lo: usize, hi: usize, bound: Time, out: &mut Vec<usize>) {
        let mut nodes = [0usize; MAX_TREE_DEPTH];
        let n = self.decompose(lo, hi, &mut nodes);
        let mut stack = [0usize; MAX_TREE_DEPTH + 1];
        for &root in &nodes[..n] {
            stack[0] = root;
            let mut sp = 1;
            while sp > 0 {
                sp -= 1;
                let node = stack[sp];
                if self.vals[node] > bound {
                    continue;
                }
                if node >= self.leaves {
                    out.push(node - self.leaves);
                    continue;
                }
                stack[sp] = 2 * node + 1;
                stack[sp + 1] = 2 * node;
                sp += 2;
            }
        }
    }
}

/// One detected explicit-set cluster: the member slice it was registered
/// for and a SoA min-heap ([`SoaMinHeap`]) with exactly one
/// `(completion, machine)` entry per member machine. A stored completion
/// may *understate* the machine's current completion (never overstate) —
/// see the module docs' staleness discipline.
#[derive(Debug)]
struct Cluster {
    members: Vec<usize>,
    heap: SoaMinHeap,
}

const UNOWNED: u32 = u32::MAX;

/// The indexed EFT kernel. Maintains the same per-machine completion
/// bank ([`CompletionBank`]) as [`EftState`] plus a [`MinTree`] over it
/// and lazily-built per-cluster heaps for recurring explicit sets.
#[derive(Debug)]
pub struct IndexedEftState {
    completions: CompletionBank,
    tree: MinTree,
    breaker: Breaker,
    /// Which tie-scan implementation the overlap fallback runs.
    scan: ScanImpl,
    /// Scratch buffer for the tie set, reused across dispatches.
    ties: Vec<usize>,
    /// Machine → cluster id claiming it, or [`UNOWNED`].
    owner: Vec<u32>,
    clusters: Vec<Cluster>,
    stats: KernelStats,
}

/// How the configured tie-break consumes the tie set — decides whether
/// the kernel may shortcut to one descent or must enumerate `U'ᵢ`.
enum Pick {
    Leftmost,
    Rightmost,
    Enumerate,
}

impl IndexedEftState {
    /// Fresh state for `m` idle machines, on the default (SIMD) fallback
    /// scan.
    pub fn new(m: usize, policy: TieBreak) -> Self {
        IndexedEftState::with_scan(m, policy, ScanImpl::default())
    }

    /// Fresh state with the overlap-fallback scan implementation forced.
    pub fn with_scan(m: usize, policy: TieBreak, scan: ScanImpl) -> Self {
        assert!(m > 0, "need at least one machine");
        IndexedEftState::from_parts(CompletionBank::new(m), policy.breaker(), scan)
    }

    /// Rebuilds a kernel around carried-over machine state — what a
    /// mid-stream switch to the indexed kernel does. The tree is rebuilt
    /// from the bank; clusters re-register lazily (they are a cache, not
    /// state — rebuilding them empty changes no dispatch decision).
    pub(crate) fn from_parts(
        completions: CompletionBank,
        breaker: Breaker,
        scan: ScanImpl,
    ) -> Self {
        let m = completions.len();
        IndexedEftState {
            tree: MinTree::from_values(completions.values()),
            completions,
            breaker,
            scan,
            ties: Vec::new(),
            owner: vec![UNOWNED; m],
            clusters: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Decomposes the state into the parts a mid-stream kernel switch
    /// must carry over: the completion bank and the breaker (with its
    /// RNG state). The index structures stay behind — they are derived
    /// state.
    pub(crate) fn into_parts(self) -> (CompletionBank, Breaker, KernelStats) {
        (self.completions, self.breaker, self.stats)
    }

    /// Decision counters accumulated so far (see [`KernelStats`]).
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.completions.len()
    }

    /// Current completion time `C_{j,i−1}` of each machine.
    pub fn completions(&self) -> &[Time] {
        self.completions.values()
    }

    /// Dispatches one task (Equation (2)) over a compact set view —
    /// the indexed counterpart of [`EftState::dispatch_ref`].
    ///
    /// # Panics
    /// Panics if the processing set is empty or references a machine out
    /// of range.
    pub fn dispatch_ref(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        let m = self.completions.len();
        assert!(
            set.max().is_some_and(|j| j < m),
            "processing set references a machine out of range"
        );
        let u = match set {
            ProcSetRef::Interval { lo, hi } => self.pick_in_range(task.release, lo, hi),
            ProcSetRef::Prefix { len } => self.pick_in_range(task.release, 0, len - 1),
            ProcSetRef::Ring { start, len, m } => {
                // Wrapping segment: ascending members are the wrapped low
                // run [0, start+len−m−1] then the high run [start, m−1].
                self.pick_in_two_ranges(task.release, (0, start + len - m - 1), (start, m - 1))
            }
            ProcSetRef::Explicit(slice) => self.pick_in_cluster(task.release, slice),
        };
        let start = task.release.max(self.completions.get(u));
        let done = start + task.ptime;
        self.completions.set(u, done);
        self.tree.update(u, done);
        Assignment::new(MachineId(u), start)
    }

    /// Tie-break over one contiguous range via the tree.
    fn pick_in_range(&mut self, release: Time, lo: usize, hi: usize) -> usize {
        self.stats.indexed_descents += 1;
        let t_min = release.max(self.tree.range_min(lo, hi));
        match pick_mode(&self.breaker) {
            Pick::Leftmost => self
                .tree
                .leftmost_le(lo, hi, t_min)
                .expect("tie set is nonempty by construction"),
            Pick::Rightmost => self
                .tree
                .rightmost_le(lo, hi, t_min)
                .expect("tie set is nonempty by construction"),
            Pick::Enumerate => {
                self.ties.clear();
                self.tree.collect_le(lo, hi, t_min, &mut self.ties);
                self.breaker.pick(&self.ties)
            }
        }
    }

    /// Tie-break over a wrapping ring segment: two contiguous runs,
    /// `low` preceding `high` in machine order.
    fn pick_in_two_ranges(
        &mut self,
        release: Time,
        low: (usize, usize),
        high: (usize, usize),
    ) -> usize {
        self.stats.indexed_descents += 1;
        let min_c = self
            .tree
            .range_min(low.0, low.1)
            .min(self.tree.range_min(high.0, high.1));
        let t_min = release.max(min_c);
        match pick_mode(&self.breaker) {
            Pick::Leftmost => self
                .tree
                .leftmost_le(low.0, low.1, t_min)
                .or_else(|| self.tree.leftmost_le(high.0, high.1, t_min))
                .expect("tie set is nonempty by construction"),
            Pick::Rightmost => self
                .tree
                .rightmost_le(high.0, high.1, t_min)
                .or_else(|| self.tree.rightmost_le(low.0, low.1, t_min))
                .expect("tie set is nonempty by construction"),
            Pick::Enumerate => {
                self.ties.clear();
                self.tree.collect_le(low.0, low.1, t_min, &mut self.ties);
                self.tree.collect_le(high.0, high.1, t_min, &mut self.ties);
                self.breaker.pick(&self.ties)
            }
        }
    }

    /// Tie-break over an explicit member slice: cluster heap when the
    /// slice matches (or can claim) a cluster, fused scalar scan
    /// otherwise.
    fn pick_in_cluster(&mut self, release: Time, slice: &[usize]) -> usize {
        let cid = match self.cluster_for(slice) {
            Some(cid) => cid,
            None => {
                // Overlaps another cluster's machines — the flat tie
                // scan is the always-correct fallback (both scan
                // implementations are bitwise-equivalent; the counter
                // name predates the SIMD path and counts fallbacks of
                // either flavor).
                self.stats.scalar_fallback_scans += 1;
                match self.scan {
                    ScanImpl::Simd => scan_ties_simd(
                        self.completions.padded(),
                        ProcSetRef::Explicit(slice),
                        release,
                        &mut self.ties,
                    ),
                    ScanImpl::Scalar => scan_ties(
                        self.completions.values(),
                        slice.iter().copied(),
                        release,
                        &mut self.ties,
                    ),
                }
                return self.breaker.pick(&self.ties);
            }
        };
        self.stats.indexed_descents += 1;
        let cluster = &mut self.clusters[cid];
        // Phase 1 — surface the true minimum completion: an accurate top
        // entry is the minimum (all others understate-or-match their own
        // completions, which are ≥ the top's); a stale top is re-keyed
        // in place (one sift-down — behaviorally identical to pop+push
        // under the heap's strict (key, machine) total order).
        let min_c = loop {
            let (key, machine) = cluster.heap.peek().expect("cluster heaps are never empty");
            let actual = self.completions.get(machine);
            if key == actual {
                break actual;
            }
            self.stats.heap_self_heals += 1;
            cluster.heap.rekey_top(actual);
        };
        let t_min = release.max(min_c);
        // Phase 2 — pop the exact tie set {j : C_j ≤ t'min}. Once the
        // (corrected) top exceeds t'min, so does every remaining entry.
        self.ties.clear();
        while let Some((key, machine)) = cluster.heap.peek() {
            let actual = self.completions.get(machine);
            if key < actual {
                self.stats.heap_self_heals += 1;
                cluster.heap.rekey_top(actual);
                continue;
            }
            if key > t_min {
                break;
            }
            cluster.heap.pop();
            self.ties.push(machine);
        }
        // One entry per machine, so the popped machines are distinct;
        // sort restores the ascending order Breaker::pick expects.
        self.ties.sort_unstable();
        let u = self.breaker.pick(&self.ties);
        // Phase 3 — restore the invariant. The picked machine's entry
        // goes back with its pre-commit completion and self-heals as a
        // stale (understating) entry on a later peek.
        for &j in &self.ties {
            cluster.heap.push(self.completions.get(j), j);
        }
        u
    }

    /// The cluster id serving `slice`, registering a new cluster when
    /// its machines are all unclaimed. `None` means the slice conflicts
    /// with an existing cluster (different membership or partial
    /// overlap) and must be served by the scalar scan.
    fn cluster_for(&mut self, slice: &[usize]) -> Option<usize> {
        let cid = self.owner[slice[0]];
        if cid != UNOWNED {
            let cid = cid as usize;
            return (self.clusters[cid].members == slice).then_some(cid);
        }
        if slice.iter().any(|&j| self.owner[j] != UNOWNED) {
            return None;
        }
        let cid = self.clusters.len();
        if cid >= UNOWNED as usize {
            return None;
        }
        let heap = SoaMinHeap::from_entries(slice.iter().map(|&j| (self.completions.get(j), j)));
        for &j in slice {
            self.owner[j] = cid as u32;
        }
        self.clusters.push(Cluster {
            members: slice.to_vec(),
            heap,
        });
        Some(cid)
    }
}

/// See [`Pick`] — `Min`/`Max` consume no randomness and take the
/// extreme tie machine, so a single descent suffices; `Rand` draws
/// `random_range(0..|U'ᵢ|)` and needs the full enumeration.
fn pick_mode(breaker: &Breaker) -> Pick {
    match breaker {
        Breaker::Min => Pick::Leftmost,
        Breaker::Max => Pick::Rightmost,
        Breaker::Rand(_) => Pick::Enumerate,
    }
}

impl ImmediateDispatcher for IndexedEftState {
    fn machine_count(&self) -> usize {
        self.machines()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch_ref(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(self.stats)
    }
}

/// An EFT dispatcher with the kernel chosen at construction — what the
/// streaming entries (`eft_stream`, `dispatch_stream`,
/// `simulate_stream`) instantiate. A [`DispatchKernel::Auto`] that
/// reaches construction unresolved (no structure hint settled it)
/// becomes the live-reclassifying [`AdaptiveEftState`].
#[derive(Debug)]
pub enum EftKernelState {
    /// The member-scan oracle.
    Scalar(EftState),
    /// The segment-tree / cluster-heap kernel.
    Indexed(IndexedEftState),
    /// The self-reclassifying wrapper around both.
    Adaptive(AdaptiveEftState),
}

impl EftKernelState {
    /// Fresh state for `m` idle machines under `kernel`, on the default
    /// (SIMD) tie scan.
    pub fn new(m: usize, policy: TieBreak, kernel: DispatchKernel) -> Self {
        EftKernelState::with_scan(m, policy, kernel, ScanImpl::default())
    }

    /// Fresh state with the tie-scan implementation forced.
    pub fn with_scan(m: usize, policy: TieBreak, kernel: DispatchKernel, scan: ScanImpl) -> Self {
        match kernel {
            DispatchKernel::Auto => {
                EftKernelState::Adaptive(AdaptiveEftState::with_scan(m, policy, scan))
            }
            DispatchKernel::Indexed => {
                EftKernelState::Indexed(IndexedEftState::with_scan(m, policy, scan))
            }
            DispatchKernel::Scalar => EftKernelState::Scalar(EftState::with_scan(m, policy, scan)),
        }
    }

    /// Current completion time of each machine.
    pub fn completions(&self) -> &[Time] {
        match self {
            EftKernelState::Scalar(s) => s.completions(),
            EftKernelState::Indexed(s) => s.completions(),
            EftKernelState::Adaptive(s) => s.completions(),
        }
    }
}

impl ImmediateDispatcher for EftKernelState {
    fn machine_count(&self) -> usize {
        match self {
            EftKernelState::Scalar(s) => s.machine_count(),
            EftKernelState::Indexed(s) => s.machine_count(),
            EftKernelState::Adaptive(s) => s.machine_count(),
        }
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        match self {
            EftKernelState::Scalar(s) => s.dispatch_task(task, set),
            EftKernelState::Indexed(s) => s.dispatch_task(task, set),
            EftKernelState::Adaptive(s) => s.dispatch_task(task, set),
        }
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        match self {
            EftKernelState::Scalar(s) => s.kernel_stats(),
            EftKernelState::Indexed(s) => Some(s.kernel_stats()),
            EftKernelState::Adaptive(s) => s.kernel_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn tree_of(vals: &[Time]) -> MinTree {
        let mut t = MinTree::new(vals.len());
        for (j, &v) in vals.iter().enumerate() {
            t.update(j, v);
        }
        t
    }

    #[test]
    fn tree_range_min_matches_scan_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for m in [1usize, 2, 3, 5, 8, 13, 64, 100] {
            let vals: Vec<Time> = (0..m).map(|_| rng.random_range(0..50) as f64).collect();
            let t = tree_of(&vals);
            for _ in 0..40 {
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                let expect = vals[lo..=hi].iter().cloned().fold(f64::INFINITY, f64::min);
                assert_eq!(t.range_min(lo, hi), expect, "m={m} [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn tree_descents_match_scans_on_random_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for m in [1usize, 3, 7, 16, 33, 90] {
            let vals: Vec<Time> = (0..m).map(|_| rng.random_range(0..8) as f64).collect();
            let t = tree_of(&vals);
            for _ in 0..60 {
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                let bound = rng.random_range(0..9) as f64 - 0.5;
                let expect: Vec<usize> = (lo..=hi).filter(|&j| vals[j] <= bound).collect();
                assert_eq!(
                    t.leftmost_le(lo, hi, bound),
                    expect.first().copied(),
                    "leftmost m={m} [{lo},{hi}] ≤{bound}"
                );
                assert_eq!(
                    t.rightmost_le(lo, hi, bound),
                    expect.last().copied(),
                    "rightmost m={m} [{lo},{hi}] ≤{bound}"
                );
                let mut got = Vec::new();
                t.collect_le(lo, hi, bound, &mut got);
                assert_eq!(got, expect, "collect m={m} [{lo},{hi}] ≤{bound}");
            }
        }
    }

    /// Random mixed-shape dispatch sequences: the indexed kernel must
    /// agree with the scalar oracle assignment-for-assignment. (The
    /// public streaming suites re-pin this through the engine; this is
    /// the direct state-level check.)
    #[test]
    fn indexed_matches_scalar_on_mixed_shapes() {
        for policy in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 21 }] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15);
            let m = 24;
            let mut scalar = EftState::new(m, policy);
            let mut indexed = IndexedEftState::new(m, policy);
            let mut release = 0.0;
            let blocks: Vec<Vec<usize>> = (0..4).map(|b| (6 * b..6 * b + 6).collect()).collect();
            for i in 0..600 {
                release += rng.random_range(0..3) as f64 * 0.25;
                let task = Task::new(release, 0.25 * rng.random_range(1..5) as f64);
                let pick = rng.random_range(0..4);
                let (a, b) = match pick {
                    0 => {
                        let lo = rng.random_range(0..m);
                        let hi = rng.random_range(lo..m);
                        let set = ProcSetRef::interval(lo, hi);
                        (
                            scalar.dispatch_ref(task, set),
                            indexed.dispatch_ref(task, set),
                        )
                    }
                    1 => {
                        let len = rng.random_range(1..=m);
                        let set = ProcSetRef::prefix(len);
                        (
                            scalar.dispatch_ref(task, set),
                            indexed.dispatch_ref(task, set),
                        )
                    }
                    2 => {
                        let start = rng.random_range(0..m);
                        let len = rng.random_range(1..=m);
                        let set = ProcSetRef::ring(start, len, m);
                        (
                            scalar.dispatch_ref(task, set),
                            indexed.dispatch_ref(task, set),
                        )
                    }
                    _ => {
                        let set = ProcSetRef::Explicit(&blocks[rng.random_range(0..4)]);
                        (
                            scalar.dispatch_ref(task, set),
                            indexed.dispatch_ref(task, set),
                        )
                    }
                };
                assert_eq!(a, b, "{policy:?} dispatch {i} diverged");
                assert_eq!(scalar.completions(), indexed.completions(), "after {i}");
            }
        }
    }

    /// Explicit sets that overlap a registered cluster must fall back to
    /// the scalar scan and still agree exactly.
    #[test]
    fn overlapping_explicit_sets_fall_back_correctly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA11);
        let m = 10;
        let mut scalar = EftState::new(m, TieBreak::Min);
        let mut indexed = IndexedEftState::new(m, TieBreak::Min);
        let cluster: Vec<usize> = vec![0, 2, 4, 6];
        let overlapping: Vec<usize> = vec![2, 3, 4];
        let mut release = 0.0;
        for i in 0..200 {
            release += 0.25 * rng.random_range(0..2) as f64;
            let task = Task::new(release, 1.0);
            let set = if rng.random_bool(0.5) {
                ProcSetRef::Explicit(&cluster)
            } else {
                ProcSetRef::Explicit(&overlapping)
            };
            assert_eq!(
                scalar.dispatch_ref(task, set),
                indexed.dispatch_ref(task, set),
                "dispatch {i}"
            );
        }
    }

    #[test]
    fn cluster_heaps_self_heal_after_tree_path_commits() {
        // Interleave interval dispatches (which bump completions behind
        // the cluster heap's back) with cluster dispatches.
        let m = 8;
        let mut scalar = EftState::new(m, TieBreak::Max);
        let mut indexed = IndexedEftState::new(m, TieBreak::Max);
        let members: Vec<usize> = vec![1, 3, 5];
        for i in 0..60 {
            let task = Task::new(i as f64 * 0.125, 0.5);
            let set = if i % 2 == 0 {
                ProcSetRef::interval(0, 5)
            } else {
                ProcSetRef::Explicit(&members)
            };
            assert_eq!(
                scalar.dispatch_ref(task, set),
                indexed.dispatch_ref(task, set),
                "dispatch {i}"
            );
        }
        let ks = indexed.kernel_stats();
        assert!(
            ks.heap_self_heals > 0,
            "interleaved interval/cluster traffic must exercise self-healing"
        );
    }

    #[test]
    fn kernel_stats_track_decision_paths() {
        let mut s = IndexedEftState::new(10, TieBreak::Min);
        let cluster: Vec<usize> = vec![0, 2, 4];
        let overlapping: Vec<usize> = vec![2, 3];
        s.dispatch_ref(Task::unit(0.0), ProcSetRef::interval(0, 9));
        s.dispatch_ref(Task::unit(0.0), ProcSetRef::Explicit(&cluster));
        s.dispatch_ref(Task::unit(0.0), ProcSetRef::Explicit(&overlapping));
        let ks = s.kernel_stats();
        assert_eq!(ks.indexed_descents, 2, "interval + claimed cluster");
        assert_eq!(ks.scalar_fallback_scans, 1, "overlapping explicit set");
    }

    #[test]
    fn kernel_state_resolves_auto_to_the_adaptive_wrapper() {
        // Auto builds the adaptive wrapper, whose *initial* core follows
        // the machine-count rule; forced kernels stay direct.
        assert!(matches!(
            &EftKernelState::new(4, TieBreak::Min, DispatchKernel::Auto),
            EftKernelState::Adaptive(s) if s.current_kernel() == DispatchKernel::Scalar
        ));
        assert!(matches!(
            &EftKernelState::new(
                AUTO_INDEXED_MIN_MACHINES,
                TieBreak::Min,
                DispatchKernel::Auto
            ),
            EftKernelState::Adaptive(s) if s.current_kernel() == DispatchKernel::Indexed
        ));
        assert!(matches!(
            EftKernelState::new(4, TieBreak::Min, DispatchKernel::Indexed),
            EftKernelState::Indexed(_)
        ));
        assert!(matches!(
            EftKernelState::new(256, TieBreak::Min, DispatchKernel::Scalar),
            EftKernelState::Scalar(_)
        ));
    }

    #[test]
    fn for_structure_prefers_the_index_on_structured_families() {
        use flowsched_core::procset::ProcSet;
        use flowsched_core::structure::classify;
        let m = 128;
        let intervals: Vec<ProcSet> = (0..8).map(|i| ProcSet::interval(i, i + 16)).collect();
        let rep = classify(&intervals, m);
        assert_eq!(
            DispatchKernel::for_structure(&rep, m),
            DispatchKernel::Indexed
        );
        assert_eq!(
            DispatchKernel::for_structure(&rep, 8),
            DispatchKernel::Scalar
        );
    }

    /// Pins the width-aware crossover against the recorded BENCH_PR5
    /// medians (`dispatch_disjoint`, blocks of width m/16): the scalar
    /// scan measured faster at (m=64, k=4) [348 µs vs 614 µs] and
    /// (m=256, k=16) [575 µs vs 761 µs], the indexed kernel faster at
    /// (m=1024, k=64) [1.11 ms vs 1.45 ms] and every larger point —
    /// `for_structure` must land on the measured winner at each.
    #[test]
    fn width_threshold_matches_bench_pr5_crossover() {
        use flowsched_core::procset::ProcSet;
        use flowsched_core::structure::classify;
        let disjoint = |m: usize, k: usize| {
            let sets: Vec<ProcSet> = (0..m / k)
                .map(|b| ProcSet::interval(b * k, b * k + k - 1))
                .collect();
            classify(&sets, m)
        };
        for (m, winner) in [
            (64, DispatchKernel::Scalar),
            (256, DispatchKernel::Scalar),
            (1024, DispatchKernel::Indexed),
            (4096, DispatchKernel::Indexed),
        ] {
            let rep = disjoint(m, m / 16);
            assert_eq!(rep.fixed_size, Some(m / 16));
            assert_eq!(
                DispatchKernel::for_structure(&rep, m),
                winner,
                "disjoint m={m} k={}",
                m / 16
            );
        }
        // Interval/inclusive sweeps (widths ~m/2 or mixed) measured the
        // index ahead at every m ≥ 64 — wide or unknown widths keep it.
        let wide = classify(
            &(0..4)
                .map(|i| ProcSet::interval(i, i + 31))
                .collect::<Vec<_>>(),
            64,
        );
        assert_eq!(
            DispatchKernel::for_structure(&wide, 64),
            DispatchKernel::Indexed
        );
        assert!(indexed_min_width(64) <= 32 && indexed_min_width(64) > 4);
    }

    #[test]
    fn resolve_for_stream_uses_the_hint_when_present() {
        use flowsched_core::instance::InstanceBuilder;
        use flowsched_core::procset::ProcSet;
        use flowsched_core::stream::{FnStream, InstanceStream};
        // Narrow disjoint blocks on many machines: the flat m-rule said
        // Indexed, the structure-aware rule must say Scalar.
        let m = 256;
        let mut b = InstanceBuilder::new(m);
        for i in 0..32 {
            let blk = (i * 5) % (m / 4);
            b.push(
                Task::new(i as f64, 1.0),
                ProcSet::interval(blk * 4, blk * 4 + 3),
            );
        }
        let inst = b.build().unwrap();
        assert_eq!(
            DispatchKernel::Auto.resolve_for_stream(&InstanceStream::new(&inst)),
            DispatchKernel::Scalar
        );
        // Hint-less sources stay Auto — the adaptive kernel classifies
        // the arriving sets live instead of trusting a blind m-rule…
        let hintless = FnStream::new(m, || None);
        assert_eq!(
            DispatchKernel::Auto.resolve_for_stream(&hintless),
            DispatchKernel::Auto
        );
        // …and explicit choices always pass through.
        assert_eq!(
            DispatchKernel::Scalar.resolve_for_stream(&InstanceStream::new(&inst)),
            DispatchKernel::Scalar
        );
    }

    #[test]
    #[should_panic(expected = "empty processing set")]
    fn indexed_rejects_empty_sets() {
        let mut s = IndexedEftState::new(2, TieBreak::Min);
        s.dispatch_ref(Task::unit(0.0), ProcSetRef::Explicit(&[]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexed_rejects_out_of_range_sets() {
        let mut s = IndexedEftState::new(2, TieBreak::Min);
        s.dispatch_ref(Task::unit(0.0), ProcSetRef::interval(1, 4));
    }
}
