//! Exact offline `F*max` by branch-and-bound.
//!
//! [`brute_force_fmax`](crate::offline::brute_force_fmax) enumerates all
//! `Πᵢ|Mᵢ|` assignments and stalls beyond ~12 tasks. This solver reaches
//! noticeably larger instances with three additions:
//!
//! 1. **Warm start**: EFT's feasible schedule seeds the incumbent, so
//!    pruning is effective from the first node.
//! 2. **Optimistic bound**: at every node, each unscheduled task's flow
//!    is at least `max(rᵢ, min_{j∈Mᵢ} busyⱼ) + pᵢ − rᵢ` given the current
//!    machine loads (future interference only makes this worse), plus the
//!    static combinatorial bound of
//!    [`crate::offline::fmax_lower_bound`].
//! 3. **Machine symmetry**: machines with identical current loads that
//!    are interchangeable for every processing set of the instance
//!    generate one branch, not several.
//!
//! Within a machine, tasks run contiguously in release order (optimal by
//! exchange), so a node is just the vector of machine completion times.

use flowsched_core::instance::Instance;
use flowsched_core::time::Time;

use crate::offline::fmax_lower_bound;
use crate::tiebreak::TieBreak;

/// Result of a bounded exact search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExactResult {
    /// Search completed; the value is optimal.
    Optimal(Time),
    /// Node budget exhausted; the value is the best incumbent found
    /// (a valid upper bound on `F*max`).
    BudgetExceeded(Time),
}

impl ExactResult {
    /// The attained value (optimal or incumbent).
    pub fn value(self) -> Time {
        match self {
            ExactResult::Optimal(v) | ExactResult::BudgetExceeded(v) => v,
        }
    }

    /// True when the search proved optimality.
    pub fn is_optimal(self) -> bool {
        matches!(self, ExactResult::Optimal(_))
    }
}

/// Exact offline `F*max` with a node budget (each explored assignment is
/// one node).
pub fn exact_fmax(inst: &Instance, node_budget: u64) -> ExactResult {
    bounded_fmax(inst, node_budget, 0.0)
}

/// `(1 + ε)`-approximate offline `F*max`: branches whose optimistic value
/// is within a factor `1 + ε` of the incumbent are pruned, so the search
/// shrinks dramatically while the returned value is guaranteed to be at
/// most `(1 + ε)·F*max`. With `ε = 0` this is [`exact_fmax`]. The
/// practical counterpart of the offline FPTAS the paper tabulates
/// (Mastrolilli) — same accuracy contract, branch-and-bound engine
/// instead of dynamic programming.
///
/// # Panics
/// Panics if `epsilon < 0`.
pub fn approx_fmax(inst: &Instance, epsilon: f64, node_budget: u64) -> ExactResult {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    bounded_fmax(inst, node_budget, epsilon)
}

fn bounded_fmax(inst: &Instance, node_budget: u64, epsilon: f64) -> ExactResult {
    if inst.is_empty() {
        return ExactResult::Optimal(0.0);
    }
    let static_lb = fmax_lower_bound(inst);
    // Warm start from EFT.
    let best = crate::eft::eft(inst, TieBreak::Min).fmax(inst);
    if best <= static_lb + 1e-12 {
        return ExactResult::Optimal(best);
    }

    // Machine interchangeability signature: the set of distinct
    // processing sets containing each machine.
    let mut distinct: Vec<&flowsched_core::ProcSet> = Vec::new();
    for s in inst.sets() {
        if !distinct.contains(&s) {
            distinct.push(s);
        }
    }
    let signature: Vec<u64> = (0..inst.machines())
        .map(|j| {
            let mut sig = 0u64;
            for (b, s) in distinct.iter().enumerate() {
                if s.contains(j) {
                    sig |= 1 << (b % 64);
                }
            }
            sig
        })
        .collect();

    let mut busy = vec![0.0_f64; inst.machines()];
    let nodes = node_budget;
    let mut ctx = SearchCtx {
        best,
        static_lb,
        // Pruning threshold factor: a branch must beat best/(1+ε) to be
        // worth exploring; ε = 0 preserves exactness.
        shrink: 1.0 / (1.0 + epsilon),
        nodes,
    };
    let complete = search(inst, 0, &mut busy, 0.0, &mut ctx, &signature);
    if complete {
        ExactResult::Optimal(ctx.best)
    } else {
        ExactResult::BudgetExceeded(ctx.best)
    }
}

/// Mutable search state shared down the recursion.
struct SearchCtx {
    best: f64,
    static_lb: f64,
    shrink: f64,
    nodes: u64,
}

/// Returns `false` when the budget ran out somewhere below this node.
fn search(
    inst: &Instance,
    i: usize,
    busy: &mut [f64],
    fmax_so_far: f64,
    ctx: &mut SearchCtx,
    signature: &[u64],
) -> bool {
    if fmax_so_far >= ctx.best * ctx.shrink {
        return true; // pruned (exactly, or within the 1+ε contract)
    }
    if i == inst.len() {
        ctx.best = fmax_so_far;
        return true;
    }
    // Optimistic completion bound over the remaining tasks.
    let mut optimistic = fmax_so_far;
    for idx in i..inst.len() {
        let t = inst.tasks()[idx];
        let set = &inst.sets()[idx];
        let min_busy = set
            .as_slice()
            .iter()
            .map(|&j| busy[j])
            .fold(f64::INFINITY, f64::min);
        optimistic = optimistic.max(t.release.max(min_busy) + t.ptime - t.release);
        if optimistic >= ctx.best * ctx.shrink {
            return true;
        }
    }

    let task = inst.tasks()[i];
    let set = &inst.sets()[i];
    // Candidate machines, deduplicated by (busy, signature).
    let mut tried: Vec<(f64, u64)> = Vec::with_capacity(set.len());
    // Heuristic order: earliest-finishing machines first (finds good
    // incumbents sooner).
    let mut candidates: Vec<usize> = set.as_slice().to_vec();
    candidates.sort_by(|&a, &b| busy[a].partial_cmp(&busy[b]).unwrap());

    let mut complete = true;
    for j in candidates {
        if tried
            .iter()
            .any(|&(b, s)| b == busy[j] && s == signature[j])
        {
            continue; // interchangeable with an explored branch
        }
        tried.push((busy[j], signature[j]));

        if ctx.nodes == 0 {
            return false;
        }
        ctx.nodes -= 1;

        let start = task.release.max(busy[j]);
        let completion = start + task.ptime;
        let saved = busy[j];
        busy[j] = completion;
        let child_fmax = fmax_so_far.max(completion - task.release);
        complete &= search(inst, i + 1, busy, child_fmax, ctx, signature);
        busy[j] = saved;

        if ctx.best <= ctx.static_lb + 1e-12 {
            return complete; // provably optimal already
        }
        if !complete {
            return false;
        }
    }
    complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::brute_force_fmax;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::task::Task;

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        for trial in 0..60 {
            let m = rng.random_range(1..=4);
            let n = rng.random_range(1..=9);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..n {
                let r = rng.random_range(0..4) as f64;
                let p = 0.5 * rng.random_range(1..=6) as f64;
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                b.push(Task::new(r, p), ProcSet::interval(lo, hi));
            }
            let inst = b.build().unwrap();
            let bf = brute_force_fmax(&inst);
            let ex = exact_fmax(&inst, u64::MAX);
            assert!(ex.is_optimal());
            assert!(
                (bf - ex.value()).abs() < 1e-9,
                "trial {trial}: brute {bf} vs B&B {v}",
                v = ex.value()
            );
        }
    }

    #[test]
    fn solves_beyond_the_brute_force_limit() {
        // 20 simultaneous unit tasks on 4 machines: 4^20 ≈ 10^12 raw
        // assignments, trivial for B&B (OPT = 5 = W/m, symmetric).
        let mut b = InstanceBuilder::new(4);
        for _ in 0..20 {
            b.push_unit(0.0, ProcSet::full(4));
        }
        let inst = b.build().unwrap();
        let ex = exact_fmax(&inst, 10_000_000);
        assert!(ex.is_optimal(), "{ex:?}");
        assert_eq!(ex.value(), 5.0);
    }

    #[test]
    fn structured_medium_instance() {
        // 16 tasks over 4 machines with interval restrictions.
        let mut b = InstanceBuilder::new(4);
        for t in 0..4 {
            b.push(Task::new(t as f64, 1.5), ProcSet::interval(0, 1));
            b.push(Task::new(t as f64, 1.0), ProcSet::interval(1, 2));
            b.push(Task::new(t as f64, 0.5), ProcSet::interval(2, 3));
            b.push(Task::new(t as f64, 1.0), ProcSet::full(4));
        }
        let inst = b.build().unwrap();
        let ex = exact_fmax(&inst, 50_000_000);
        assert!(ex.is_optimal(), "{ex:?}");
        // Sanity: between the combinatorial LB and EFT.
        let lb = fmax_lower_bound(&inst);
        let eft_val = crate::eft::eft(&inst, TieBreak::Min).fmax(&inst);
        assert!(ex.value() >= lb - 1e-9 && ex.value() <= eft_val + 1e-9);
    }

    #[test]
    fn budget_exhaustion_returns_incumbent() {
        let mut b = InstanceBuilder::new(3);
        for i in 0..12 {
            b.push(
                Task::new((i / 4) as f64, 1.0 + 0.25 * (i % 3) as f64),
                ProcSet::full(3),
            );
        }
        let inst = b.build().unwrap();
        let ex = exact_fmax(&inst, 5);
        match ex {
            ExactResult::BudgetExceeded(v) => {
                // Incumbent is EFT's value (warm start) — a feasible bound.
                let eft_val = crate::eft::eft(&inst, TieBreak::Min).fmax(&inst);
                assert!(v <= eft_val + 1e-9);
            }
            ExactResult::Optimal(_) => {
                // Tiny instances may be solved by the LB warm-start check;
                // accept but ensure it is genuinely optimal.
                let bf = brute_force_fmax(&inst);
                assert!((bf - ex.value()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::unrestricted(2, vec![]).unwrap();
        assert_eq!(exact_fmax(&inst, 100), ExactResult::Optimal(0.0));
    }

    #[test]
    fn approx_respects_the_accuracy_contract() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for eps in [0.0, 0.1, 0.5] {
            for _ in 0..15 {
                let m = rng.random_range(2..=3);
                let mut b = InstanceBuilder::new(m);
                for _ in 0..rng.random_range(3..=8) {
                    let r = rng.random_range(0..3) as f64;
                    let p = 0.5 * rng.random_range(1..=5) as f64;
                    b.push_unrestricted(Task::new(r, p));
                }
                let inst = b.build().unwrap();
                let exact = brute_force_fmax(&inst);
                let approx = approx_fmax(&inst, eps, u64::MAX);
                assert!(approx.is_optimal());
                assert!(
                    approx.value() <= (1.0 + eps) * exact + 1e-9,
                    "eps={eps}: approx {} > (1+eps)·OPT {}",
                    approx.value(),
                    exact
                );
                assert!(approx.value() >= exact - 1e-9, "below optimal?!");
            }
        }
    }

    #[test]
    fn approx_explores_fewer_nodes() {
        // On a symmetric burst the exact search must distinguish values
        // the approximate one may prune; with a tight budget only the
        // approximate run completes.
        let mut b = InstanceBuilder::new(3);
        for i in 0..15 {
            b.push(
                Task::new(0.0, 1.0 + 0.25 * (i % 4) as f64),
                ProcSet::full(3),
            );
        }
        let inst = b.build().unwrap();
        let budget = 4_000;
        let loose = approx_fmax(&inst, 0.5, budget);
        assert!(
            loose.is_optimal(),
            "0.5-approx should finish within {budget} nodes: {loose:?}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let inst = Instance::unrestricted(1, vec![Task::unit(0.0)]).unwrap();
        let _ = approx_fmax(&inst, -0.1, 10);
    }

    #[test]
    fn warm_start_short_circuits_tight_instances() {
        // One task per step on one machine: EFT achieves the LB (=1), so
        // no search is needed — even a zero budget proves optimality.
        let mut b = InstanceBuilder::new(1);
        for t in 0..10 {
            b.push_unit(t as f64, ProcSet::full(1));
        }
        let inst = b.build().unwrap();
        assert_eq!(exact_fmax(&inst, 0), ExactResult::Optimal(1.0));
    }
}
