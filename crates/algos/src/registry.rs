//! The dispatch-policy registry: one name-addressable surface over
//! every immediate-dispatch algorithm in the workspace.
//!
//! Before this module, each dispatcher family had its own construction
//! idiom — `EftKernelState::new(m, tie, kernel)` for EFT,
//! `Dispatcher::with_kernel(m, rule, kernel)` for the grab-bag rules,
//! `FaultyEftState::new(plan, tie)` for the fault layer — and every
//! engine entry point, sim driver, and bench bin re-derived kernel and
//! shard-seed resolution by hand. The registry collapses that into:
//!
//! - [`PolicyId`]: *which algorithm* — EFT under a tie-break, random,
//!   power-of-d choices, round-robin, weighted-EFT
//!   ([`WeightedEftState`]), setup-aware EFT ([`SetupEftState`]);
//! - [`PolicySpec`]: a `PolicyId` plus the [`DispatchKernel`] and
//!   [`ScanImpl`] choices, parseable from and printable to a stable
//!   string form (`eft:min:indexed`, `eft:scalar-scan`, `weft@4:max`,
//!   `setup@0.5`, `random@7`…) so bench bins and CI address policies by
//!   name;
//! - [`PolicyState`]: the built dispatcher, a plain
//!   [`ImmediateDispatcher`] the engines drive like any other.
//!
//! **Resolution invariants** (pinned by `tests/policy_registry.rs`):
//!
//! 1. [`PolicySpec::build`] resolves `Auto` kernels by machine count
//!    through [`EftKernelState::new`], and
//!    [`PolicySpec::build_for_stream`] first consults the stream's
//!    structure hint via [`DispatchKernel::resolve_for_stream`] —
//!    byte-for-byte the two-step resolution the direct entry points
//!    performed, so registry-built dispatchers are bitwise-identical
//!    (schedule, recorder trace, RNG draws) to directly-constructed
//!    ones.
//! 2. [`PolicySpec::for_shard`] derives shard-local policies with
//!    exactly [`TieBreak::for_shard`]'s semantics: shard 0 keeps its
//!    seed (a single-shard run reproduces the sequential stream), other
//!    shards mix the shard index via the SplitMix64 golden-ratio
//!    increment. Seeded non-EFT rules (`random`, `choices`) decorrelate
//!    the same way.
//! 3. Every registered id round-trips through its string form:
//!    `spec.to_string().parse() == spec`.
//!
//! The string grammar, `:`-separated:
//!
//! ```text
//! spec     := family [":" tie] [":" kernel] [":" scan]   (any order)
//! family   := "eft" | "rr" | "random@SEED" | "choices@D,SEED"
//!           | "weft@SLACK" | "setup@COST" | "setup-obl@COST"
//! tie      := "min" | "max" | "rand@SEED"        (eft/weft/setup only)
//! kernel   := "auto" | "scalar" | "indexed"
//! scan     := "simd" | "scalar-scan"             (tie-scan impl; simd
//!                                                 is the default)
//! ```

use std::fmt;
use std::str::FromStr;

use flowsched_core::fault::FaultPlan;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::time::Time;

use crate::eft::ImmediateDispatcher;
use crate::faulty::FaultyEftState;
use crate::indexed::{DispatchKernel, EftKernelState};
use crate::policies::{DispatchRule, Dispatcher};
use crate::setup::SetupEftState;
use crate::soa::ScanImpl;
use crate::tiebreak::TieBreak;
use crate::weighted::WeightedEftState;

/// Which dispatch algorithm to run — the registry's name space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyId {
    /// Earliest finish time (paper Algorithm 2) under a tie-break.
    Eft {
        /// Tie-break over the Equation (2) tie set.
        tie: TieBreak,
    },
    /// Uniformly random member of the processing set (load-oblivious).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Power-of-d-choices: sample `d` members, take the least loaded.
    Choices {
        /// Number of sampled candidates (`d ≥ 1`).
        d: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Round-robin over each distinct processing set.
    RoundRobin,
    /// Weighted-EFT packing for `max wᵢ·Fᵢ` (Azar–Touitou; see
    /// [`WeightedEftState`]).
    WeightedEft {
        /// Tie-break over the packing tie set.
        tie: TieBreak,
        /// Packing budget `θ` — a weight-`w` task tolerates `θ/w` delay.
        slack: Time,
    },
    /// Setup-aware EFT for batch-by-key serving (Mäcker et al.; see
    /// [`SetupEftState`]).
    SetupEft {
        /// Tie-break over the candidate-completion tie set.
        tie: TieBreak,
        /// Setup cost charged on every cluster switch.
        cost: Time,
        /// `true`: the machine choice sees setups; `false`: plain EFT
        /// choice that still pays them (the thrashing baseline).
        aware: bool,
    },
}

impl PolicyId {
    /// Mixes a shard index into a seed exactly as
    /// [`TieBreak::for_shard`] does: shard 0 passes through, others XOR
    /// the SplitMix64 golden-ratio multiple.
    fn shard_seed(seed: u64, shard: usize) -> u64 {
        if shard == 0 {
            seed
        } else {
            seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
    }

    /// The policy a sharded engine's shard `s` dispatcher runs — see
    /// resolution invariant 2 in the module docs.
    pub fn for_shard(self, shard: usize) -> PolicyId {
        match self {
            PolicyId::Eft { tie } => PolicyId::Eft {
                tie: tie.for_shard(shard),
            },
            PolicyId::Random { seed } => PolicyId::Random {
                seed: Self::shard_seed(seed, shard),
            },
            PolicyId::Choices { d, seed } => PolicyId::Choices {
                d,
                seed: Self::shard_seed(seed, shard),
            },
            PolicyId::RoundRobin => PolicyId::RoundRobin,
            PolicyId::WeightedEft { tie, slack } => PolicyId::WeightedEft {
                tie: tie.for_shard(shard),
                slack,
            },
            PolicyId::SetupEft { tie, cost, aware } => PolicyId::SetupEft {
                tie: tie.for_shard(shard),
                cost,
                aware,
            },
        }
    }
}

impl From<DispatchRule> for PolicyId {
    fn from(rule: DispatchRule) -> Self {
        match rule {
            DispatchRule::Eft(tie) => PolicyId::Eft { tie },
            DispatchRule::RandomMachine { seed } => PolicyId::Random { seed },
            DispatchRule::TwoChoices { d, seed } => PolicyId::Choices { d, seed },
            DispatchRule::RoundRobin => PolicyId::RoundRobin,
        }
    }
}

/// A fully-specified dispatch policy: algorithm plus kernel and
/// tie-scan choices. Only the EFT family consults the kernel and scan
/// (the others have no index or tie set to select); they are carried —
/// and round-tripped — for all of them so a spec string names one
/// construction unambiguously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicySpec {
    /// Which algorithm.
    pub id: PolicyId,
    /// Which EFT dispatch kernel ([`DispatchKernel::Auto`] by default).
    pub kernel: DispatchKernel,
    /// Which tie-scan implementation ([`ScanImpl::Simd`] by default;
    /// `scalar-scan` keeps the one-pass oracle for A/B runs).
    pub scan: ScanImpl,
}

impl PolicySpec {
    /// A spec with the automatic kernel and default scan.
    pub fn new(id: PolicyId) -> Self {
        PolicySpec {
            id,
            kernel: DispatchKernel::Auto,
            scan: ScanImpl::default(),
        }
    }

    /// Shorthand for the EFT family.
    pub fn eft(tie: TieBreak, kernel: DispatchKernel) -> Self {
        PolicySpec {
            id: PolicyId::Eft { tie },
            kernel,
            scan: ScanImpl::default(),
        }
    }

    /// This spec with the kernel replaced.
    pub fn with_kernel(self, kernel: DispatchKernel) -> Self {
        PolicySpec { kernel, ..self }
    }

    /// This spec with the tie-scan implementation replaced.
    pub fn with_scan(self, scan: ScanImpl) -> Self {
        PolicySpec { scan, ..self }
    }

    /// Shard-local spec — applies [`PolicyId::for_shard`], keeping the
    /// kernel choice (Auto then re-resolves on the shard's width, as
    /// the sharded engine always did) and the scan choice.
    pub fn for_shard(self, shard: usize) -> PolicySpec {
        PolicySpec {
            id: self.id.for_shard(shard),
            kernel: self.kernel,
            scan: self.scan,
        }
    }

    /// Builds the dispatcher for `m` machines — the single construction
    /// path every engine entry point funnels through (resolution
    /// invariant 1).
    ///
    /// # Panics
    /// Panics when `m == 0` or a policy parameter is out of range
    /// (`d == 0`, negative slack/cost).
    pub fn build(&self, m: usize) -> PolicyState {
        match self.id {
            PolicyId::Eft { tie } => PolicyState::Eft(Box::new(EftKernelState::with_scan(
                m,
                tie,
                self.kernel,
                self.scan,
            ))),
            PolicyId::Random { seed } => PolicyState::Rule(Dispatcher::with_kernel(
                m,
                DispatchRule::RandomMachine { seed },
                self.kernel,
            )),
            PolicyId::Choices { d, seed } => PolicyState::Rule(Dispatcher::with_kernel(
                m,
                DispatchRule::TwoChoices { d, seed },
                self.kernel,
            )),
            PolicyId::RoundRobin => PolicyState::Rule(Dispatcher::with_kernel(
                m,
                DispatchRule::RoundRobin,
                self.kernel,
            )),
            PolicyId::WeightedEft { tie, slack } => {
                PolicyState::Weighted(WeightedEftState::new(m, tie, slack))
            }
            PolicyId::SetupEft { tie, cost, aware } => {
                PolicyState::Setup(SetupEftState::new(m, tie, cost, aware))
            }
        }
    }

    /// [`build`](PolicySpec::build) with the kernel first resolved
    /// against the stream's structure hint
    /// ([`DispatchKernel::resolve_for_stream`]) — the exact two-step
    /// resolution `eft_stream`/`dispatch_stream`/`simulate_stream`
    /// always performed.
    pub fn build_for_stream<S>(&self, stream: &S) -> PolicyState
    where
        S: ArrivalStream + ?Sized,
    {
        self.with_kernel(self.kernel.resolve_for_stream(stream))
            .build(stream.machines())
    }

    /// Builds the availability-aware dispatcher over a [`FaultPlan`].
    /// Only the EFT family schedules around outages today; the others
    /// reject loudly rather than silently ignoring the plan.
    ///
    /// # Panics
    /// Panics for non-EFT policies, or when the plan covers zero
    /// machines.
    pub fn build_faulty(&self, plan: FaultPlan) -> FaultyEftState {
        match self.id {
            PolicyId::Eft { tie } => FaultyEftState::new(plan, tie),
            _ => {
                panic!("fault-aware dispatch is only implemented for the eft family, not `{self}`")
            }
        }
    }

    /// One spec per registered family/variant, used by the round-trip
    /// and equivalence suites. Covers every [`PolicyId`] constructor,
    /// every tie-break shape, and every kernel choice.
    pub fn examples() -> Vec<PolicySpec> {
        let mut out = Vec::new();
        for kernel in [
            DispatchKernel::Auto,
            DispatchKernel::Scalar,
            DispatchKernel::Indexed,
        ] {
            for tie in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 42 }] {
                out.push(PolicySpec::eft(tie, kernel));
            }
            out.push(PolicySpec::eft(TieBreak::Min, kernel).with_scan(ScanImpl::Scalar));
        }
        out.push(PolicySpec::new(PolicyId::Random { seed: 7 }));
        out.push(PolicySpec::new(PolicyId::Choices { d: 2, seed: 7 }));
        out.push(PolicySpec::new(PolicyId::RoundRobin));
        for tie in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 9 }] {
            out.push(PolicySpec::new(PolicyId::WeightedEft { tie, slack: 2.5 }));
            out.push(PolicySpec::new(PolicyId::SetupEft {
                tie,
                cost: 0.5,
                aware: true,
            }));
            out.push(PolicySpec::new(PolicyId::SetupEft {
                tie,
                cost: 0.5,
                aware: false,
            }));
        }
        out.push(PolicySpec::new(PolicyId::WeightedEft {
            tie: TieBreak::Min,
            slack: 0.0,
        }));
        out
    }
}

impl From<PolicyId> for PolicySpec {
    fn from(id: PolicyId) -> Self {
        PolicySpec::new(id)
    }
}

impl From<DispatchRule> for PolicySpec {
    fn from(rule: DispatchRule) -> Self {
        PolicySpec::new(rule.into())
    }
}

/// A built dispatcher — the registry's uniform runtime shape, driven by
/// the engines like any other [`ImmediateDispatcher`].
#[derive(Debug)]
pub enum PolicyState {
    /// EFT under the resolved kernel (boxed: the adaptive wrapper
    /// carries classifier + kernel state, far larger than its peers).
    Eft(Box<EftKernelState>),
    /// Random / power-of-d / round-robin (the `policies` grab-bag).
    Rule(Dispatcher),
    /// Weighted-EFT packing.
    Weighted(WeightedEftState),
    /// Setup-aware (or setup-oblivious) EFT.
    Setup(SetupEftState),
}

impl ImmediateDispatcher for PolicyState {
    fn machine_count(&self) -> usize {
        match self {
            PolicyState::Eft(s) => s.machine_count(),
            PolicyState::Rule(s) => s.machine_count(),
            PolicyState::Weighted(s) => s.machine_count(),
            PolicyState::Setup(s) => s.machine_count(),
        }
    }

    fn dispatch_task(
        &mut self,
        task: flowsched_core::task::Task,
        set: flowsched_core::compact::ProcSetRef<'_>,
    ) -> flowsched_core::schedule::Assignment {
        match self {
            PolicyState::Eft(s) => s.dispatch_task(task, set),
            PolicyState::Rule(s) => s.dispatch_task(task, set),
            PolicyState::Weighted(s) => s.dispatch_task(task, set),
            PolicyState::Setup(s) => s.dispatch_task(task, set),
        }
    }

    fn machine_completions(&self) -> &[Time] {
        match self {
            PolicyState::Eft(s) => s.machine_completions(),
            PolicyState::Rule(s) => s.machine_completions(),
            PolicyState::Weighted(s) => s.machine_completions(),
            PolicyState::Setup(s) => s.machine_completions(),
        }
    }

    fn kernel_stats(&self) -> Option<crate::indexed::KernelStats> {
        match self {
            PolicyState::Eft(s) => s.kernel_stats(),
            PolicyState::Rule(s) => s.kernel_stats(),
            PolicyState::Weighted(_) | PolicyState::Setup(_) => None,
        }
    }
}

/// Error parsing a policy string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid policy spec: {}", self.0)
    }
}

impl std::error::Error for ParsePolicyError {}

fn err(msg: impl Into<String>) -> ParsePolicyError {
    ParsePolicyError(msg.into())
}

fn fmt_tie(tie: &TieBreak, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match tie {
        TieBreak::Min => write!(f, "min"),
        TieBreak::Max => write!(f, "max"),
        TieBreak::Rand { seed } => write!(f, "rand@{seed}"),
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyId::Eft { tie } => {
                write!(f, "eft:")?;
                fmt_tie(tie, f)
            }
            PolicyId::Random { seed } => write!(f, "random@{seed}"),
            PolicyId::Choices { d, seed } => write!(f, "choices@{d},{seed}"),
            PolicyId::RoundRobin => write!(f, "rr"),
            PolicyId::WeightedEft { tie, slack } => {
                write!(f, "weft@{slack}:")?;
                fmt_tie(tie, f)
            }
            PolicyId::SetupEft { tie, cost, aware } => {
                let name = if *aware { "setup" } else { "setup-obl" };
                write!(f, "{name}@{cost}:")?;
                fmt_tie(tie, f)
            }
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)?;
        match self.kernel {
            DispatchKernel::Auto => {}
            DispatchKernel::Scalar => write!(f, ":scalar")?,
            DispatchKernel::Indexed => write!(f, ":indexed")?,
        }
        match self.scan {
            ScanImpl::Simd => Ok(()),
            ScanImpl::Scalar => write!(f, ":scalar-scan"),
        }
    }
}

fn parse_seed(s: &str, what: &str) -> Result<u64, ParsePolicyError> {
    s.parse()
        .map_err(|_| err(format!("{what} wants an integer seed, got `{s}`")))
}

fn parse_time(s: &str, what: &str) -> Result<Time, ParsePolicyError> {
    let v: Time = s
        .parse()
        .map_err(|_| err(format!("{what} wants a number, got `{s}`")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(err(format!("{what} must be finite and non-negative")));
    }
    Ok(v)
}

impl FromStr for PolicySpec {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        if head.is_empty() {
            return Err(err("empty policy string"));
        }
        let (family, args) = match head.split_once('@') {
            Some((f, a)) => (f, Some(a)),
            None => (head, None),
        };

        let mut tie: Option<TieBreak> = None;
        let mut kernel: Option<DispatchKernel> = None;
        let mut scan: Option<ScanImpl> = None;
        for seg in parts {
            let parsed_tie = match seg {
                "min" => Some(TieBreak::Min),
                "max" => Some(TieBreak::Max),
                _ => match seg.split_once('@') {
                    Some(("rand", seed)) => Some(TieBreak::Rand {
                        seed: parse_seed(seed, "rand tie-break")?,
                    }),
                    _ => None,
                },
            };
            if let Some(t) = parsed_tie {
                if tie.replace(t).is_some() {
                    return Err(err(format!("duplicate tie-break in `{s}`")));
                }
                continue;
            }
            let parsed_kernel = match seg {
                "auto" => Some(DispatchKernel::Auto),
                "scalar" => Some(DispatchKernel::Scalar),
                "indexed" => Some(DispatchKernel::Indexed),
                _ => None,
            };
            if let Some(k) = parsed_kernel {
                if kernel.replace(k).is_some() {
                    return Err(err(format!("duplicate kernel in `{s}`")));
                }
                continue;
            }
            let parsed_scan = match seg {
                "simd" => Some(ScanImpl::Simd),
                "scalar-scan" => Some(ScanImpl::Scalar),
                _ => None,
            };
            match parsed_scan {
                Some(v) => {
                    if scan.replace(v).is_some() {
                        return Err(err(format!("duplicate scan in `{s}`")));
                    }
                }
                None => return Err(err(format!("unknown segment `{seg}` in `{s}`"))),
            }
        }

        let no_args = || -> Result<(), ParsePolicyError> {
            match args {
                None => Ok(()),
                Some(_) => Err(err(format!("`{family}` takes no `@` arguments"))),
            }
        };
        let no_tie = |tie: Option<TieBreak>| -> Result<(), ParsePolicyError> {
            match tie {
                None => Ok(()),
                Some(_) => Err(err(format!("`{family}` takes no tie-break"))),
            }
        };

        let id = match family {
            "eft" => {
                no_args()?;
                PolicyId::Eft {
                    tie: tie.unwrap_or(TieBreak::Min),
                }
            }
            "rr" => {
                no_args()?;
                no_tie(tie)?;
                PolicyId::RoundRobin
            }
            "random" => {
                no_tie(tie)?;
                let seed = parse_seed(
                    args.ok_or_else(|| err("`random` wants `random@SEED`"))?,
                    "random",
                )?;
                PolicyId::Random { seed }
            }
            "choices" => {
                no_tie(tie)?;
                let args = args.ok_or_else(|| err("`choices` wants `choices@D,SEED`"))?;
                let (d, seed) = args
                    .split_once(',')
                    .ok_or_else(|| err("`choices` wants `choices@D,SEED`"))?;
                let d: usize = d
                    .parse()
                    .map_err(|_| err(format!("choices wants an integer d, got `{d}`")))?;
                if d == 0 {
                    return Err(err("choices needs d ≥ 1"));
                }
                PolicyId::Choices {
                    d,
                    seed: parse_seed(seed, "choices")?,
                }
            }
            "weft" => PolicyId::WeightedEft {
                tie: tie.unwrap_or(TieBreak::Min),
                slack: parse_time(
                    args.ok_or_else(|| err("`weft` wants `weft@SLACK`"))?,
                    "weft slack",
                )?,
            },
            "setup" | "setup-obl" => PolicyId::SetupEft {
                tie: tie.unwrap_or(TieBreak::Min),
                cost: parse_time(
                    args.ok_or_else(|| err(format!("`{family}` wants `{family}@COST`")))?,
                    "setup cost",
                )?,
                aware: family == "setup",
            },
            other => return Err(err(format!("unknown policy family `{other}`"))),
        };

        Ok(PolicySpec {
            id,
            kernel: kernel.unwrap_or(DispatchKernel::Auto),
            scan: scan.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_example_round_trips_through_its_string() {
        for spec in PolicySpec::examples() {
            let s = spec.to_string();
            let back: PolicySpec = s.parse().unwrap_or_else(|e| panic!("`{s}`: {e}"));
            assert_eq!(back, spec, "`{s}` did not round-trip");
        }
    }

    #[test]
    fn grammar_accepts_the_documented_forms() {
        let cases: Vec<(&str, PolicySpec)> = vec![
            ("eft", PolicySpec::eft(TieBreak::Min, DispatchKernel::Auto)),
            (
                "eft:min:indexed",
                PolicySpec::eft(TieBreak::Min, DispatchKernel::Indexed),
            ),
            (
                "eft:indexed:min",
                PolicySpec::eft(TieBreak::Min, DispatchKernel::Indexed),
            ),
            (
                "eft:rand@42",
                PolicySpec::eft(TieBreak::Rand { seed: 42 }, DispatchKernel::Auto),
            ),
            ("random@7", PolicySpec::new(PolicyId::Random { seed: 7 })),
            (
                "choices@2,9",
                PolicySpec::new(PolicyId::Choices { d: 2, seed: 9 }),
            ),
            ("rr", PolicySpec::new(PolicyId::RoundRobin)),
            (
                "weft@2.5:max",
                PolicySpec::new(PolicyId::WeightedEft {
                    tie: TieBreak::Max,
                    slack: 2.5,
                }),
            ),
            (
                "setup@0.5",
                PolicySpec::new(PolicyId::SetupEft {
                    tie: TieBreak::Min,
                    cost: 0.5,
                    aware: true,
                }),
            ),
            (
                "setup-obl@1:scalar",
                PolicySpec::new(PolicyId::SetupEft {
                    tie: TieBreak::Min,
                    cost: 1.0,
                    aware: false,
                })
                .with_kernel(DispatchKernel::Scalar),
            ),
            (
                "eft:scalar-scan",
                PolicySpec::eft(TieBreak::Min, DispatchKernel::Auto).with_scan(ScanImpl::Scalar),
            ),
            (
                "eft:scalar-scan:indexed:max",
                PolicySpec::eft(TieBreak::Max, DispatchKernel::Indexed).with_scan(ScanImpl::Scalar),
            ),
            (
                // Explicit `simd` parses and is the silent default.
                "eft:min:simd",
                PolicySpec::eft(TieBreak::Min, DispatchKernel::Auto),
            ),
        ];
        for (s, want) in cases {
            assert_eq!(s.parse::<PolicySpec>().unwrap(), want, "`{s}`");
        }
    }

    #[test]
    fn grammar_rejects_malformed_strings() {
        for bad in [
            "",
            "efty",
            "eft@3",
            "eft:min:min",
            "eft:scalar:indexed",
            "eft:simd:scalar-scan",
            "eft:scalar-scan:scalar-scan",
            "eft:bogus",
            "random",
            "random@x",
            "rr:min",
            "choices@2",
            "choices@0,5",
            "weft",
            "weft@-1",
            "setup@nan",
        ] {
            assert!(
                bad.parse::<PolicySpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn for_shard_matches_tiebreak_semantics() {
        let rand = PolicySpec::eft(TieBreak::Rand { seed: 11 }, DispatchKernel::Auto);
        assert_eq!(rand.for_shard(0), rand);
        match rand.for_shard(3).id {
            PolicyId::Eft { tie } => assert_eq!(tie, TieBreak::Rand { seed: 11 }.for_shard(3)),
            other => panic!("unexpected {other:?}"),
        }
        // Seeded non-EFT rules decorrelate with the same mixing.
        let random = PolicySpec::new(PolicyId::Random { seed: 11 });
        assert_eq!(random.for_shard(0), random);
        match random.for_shard(3).id {
            PolicyId::Random { seed } => {
                assert_eq!(seed, 11 ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Deterministic rules pass through untouched.
        let min = PolicySpec::eft(TieBreak::Min, DispatchKernel::Indexed);
        assert_eq!(min.for_shard(7), min);
    }

    #[test]
    fn build_resolves_kernels_like_the_direct_path() {
        use crate::indexed::AUTO_INDEXED_MIN_MACHINES;
        let spec = PolicySpec::eft(TieBreak::Min, DispatchKernel::Auto);
        // Auto now builds the adaptive wrapper; its initial core follows
        // the machine-count rule the direct path always applied.
        let adaptive_kernel = |state: PolicyState| match state {
            PolicyState::Eft(k) => match *k {
                EftKernelState::Adaptive(s) => s.current_kernel(),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(adaptive_kernel(spec.build(4)), DispatchKernel::Scalar);
        assert_eq!(
            adaptive_kernel(spec.build(AUTO_INDEXED_MIN_MACHINES)),
            DispatchKernel::Indexed
        );
        match spec.with_kernel(DispatchKernel::Indexed).build(4) {
            PolicyState::Eft(k) => assert!(matches!(*k, EftKernelState::Indexed(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "only implemented for the eft family")]
    fn build_faulty_rejects_non_eft_policies() {
        PolicySpec::new(PolicyId::RoundRobin).build_faulty(FaultPlan::none(2));
    }

    #[test]
    fn dispatch_rule_converts_losslessly() {
        for rule in [
            DispatchRule::Eft(TieBreak::Max),
            DispatchRule::RandomMachine { seed: 3 },
            DispatchRule::TwoChoices { d: 2, seed: 3 },
            DispatchRule::RoundRobin,
        ] {
            let spec: PolicySpec = rule.into();
            let s = spec.to_string();
            assert_eq!(s.parse::<PolicySpec>().unwrap(), spec, "`{s}`");
        }
    }
}
