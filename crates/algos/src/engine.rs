//! The streaming scheduler core: two discrete-event engines over one
//! [`ArrivalStream`].
//!
//! Everything that schedules in this workspace now funnels through this
//! module. [`run_immediate`] drives any [`ImmediateDispatcher`] (EFT
//! under every tie-break, random, power-of-d-choices, round-robin) one
//! arrival at a time; [`run_fifo`] drives the paper's Algorithm 1
//! central queue. Both are generic over
//!
//! - the **stream** (`S:` [`ArrivalStream`]) — a materialized
//!   [`Instance`](flowsched_core::Instance) via
//!   [`InstanceStream`](flowsched_core::InstanceStream), or a lazy
//!   generator from `flowsched-workloads` that never holds more than one
//!   arrival;
//! - the **recorder** (`R:` [`Recorder`]) — instrumentation hooks that
//!   fold away entirely under [`NoopRecorder`];
//! - the **sink** (`K:` [`DispatchSink`]) — what to do with each
//!   committed assignment: collect a [`Schedule`], or fold it into a
//!   streaming report without materializing anything.
//!
//! This collapses the old plain/`*_recorded` twin entry points into one
//! generic function per engine, and bounds engine memory by the number
//! of machines plus the live queue — a million-task Poisson stream runs
//! in constant memory.
//!
//! The two engines stay deliberately independent — [`run_fifo`] is a
//! real event-heap simulation, not a wrapper over [`run_immediate`] —
//! so Proposition 1 (FIFO ≡ EFT on unrestricted instances) is still
//! validated by two separate mechanisms consuming the same stream.
//!
//! [`run_immediate_sharded`] is the parallel form of EFT dispatch:
//! when the stream's processing sets partition the machines into
//! clusters ([`ArrivalStream::shard_plan`]), each cluster runs its own
//! EFT kernel on a worker thread
//! ([`run_sharded`](flowsched_parallel::sharded::run_sharded)) while
//! the calling thread routes arrivals and replays the decisions in
//! arrival order through the same `CommitTracker` commit path —
//! bitwise-identical output for deterministic tie-breaks at any thread
//! count. See `DESIGN.md`, "Sharded engine".
//!
//! # Transition convention
//!
//! [`run_immediate`] emits the busy/idle transitions itself, from the
//! per-machine previous completion it tracks: per machine, busy/idle
//! strictly alternate starting with busy; the idle at a machine's
//! previous completion is emitted lazily once the gap's end is known;
//! the trailing idle is never emitted. Because the engine — not the
//! dispatcher — owns this, the convention now holds uniformly for every
//! immediate-dispatch rule, including the stepped integer fast path
//! (`flowsched_sim::stepped`). [`run_fifo`] knows transition times
//! exactly and emits *actual* transitions: idle at every completion,
//! busy at every pull, equal timestamps allowed.
//!
//! The telemetry pipeline in `flowsched-obs` is built on this
//! convention. `task_spans` pairs each `TaskDispatch` with the
//! *projected* `TaskCompletion` the immediate engines emit at dispatch
//! time (recovering release, wait, service, and flow per task), and
//! `machine_spans` folds the alternating busy/idle transitions into
//! closed busy intervals — the strict alternation plus the
//! never-emitted trailing idle is exactly what lets it close the last
//! open span at the observed makespan. Windowed recorders
//! (`flowsched_obs::WindowedMetrics`) likewise rely on `task_dispatch`
//! carrying `(release, start, ptime)` so one hook yields arrival,
//! start, completion, queue-time, and busy-time attribution without a
//! second pass over the schedule.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::shard::ShardPlan;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;
use flowsched_core::time::Time;
use flowsched_obs::pipeline::{NoopPipeline, PipelineProbe};
use flowsched_obs::{Counter, Recorder};
use flowsched_parallel::sharded::run_sharded_probed;
pub use flowsched_parallel::sharded::ShardedConfig;

use crate::eft::ImmediateDispatcher;
use crate::indexed::{DispatchKernel, KernelStats};
use crate::registry::{PolicySpec, PolicyState};
use crate::tiebreak::TieBreak;

/// Consumer of committed assignments, called in task (sequence) order.
///
/// `seq` is the arrival sequence number (== instance `TaskId` when the
/// stream replays an instance). Implementations either materialize
/// (`Vec<Assignment>`) or fold (`flowsched_sim::ReportBuilder`).
pub trait DispatchSink {
    /// One task has been irrevocably placed.
    fn accept(&mut self, seq: u64, task: Task, assignment: Assignment);
}

/// Materializing sink: collects assignments in task order.
impl DispatchSink for Vec<Assignment> {
    fn accept(&mut self, seq: u64, _task: Task, assignment: Assignment) {
        debug_assert_eq!(
            self.len() as u64,
            seq,
            "assignments arrive in sequence order"
        );
        self.push(assignment);
    }
}

/// Discarding sink, for runs measured purely through a [`Recorder`] or
/// through dispatcher state inspected afterwards.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl DispatchSink for NullSink {
    fn accept(&mut self, _seq: u64, _task: Task, _assignment: Assignment) {}
}

/// The engine's commitment bookkeeping: turns each `(seq, task,
/// assignment)` into the recorder events of the module-level transition
/// convention, then hands the assignment to the sink.
///
/// This is the *single* definition of that convention — the sequential
/// [`run_immediate`] and the parallel [`run_immediate_sharded`] both
/// commit through it, which is what makes their recorder traces (and
/// order-sensitive sink folds) bitwise-identical rather than merely
/// equivalent.
pub(crate) struct CommitTracker {
    /// Per-machine completion before the current dispatch — only needed
    /// to reconstruct idle gaps for the trace.
    prev_done: Vec<Time>,
}

impl CommitTracker {
    pub(crate) fn new(enabled: bool, m: usize) -> Self {
        CommitTracker {
            prev_done: if enabled { vec![0.0; m] } else { Vec::new() },
        }
    }

    #[inline]
    pub(crate) fn commit<R, K>(
        &mut self,
        seq: u64,
        task: Task,
        a: Assignment,
        rec: &mut R,
        sink: &mut K,
    ) where
        R: Recorder,
        K: DispatchSink,
    {
        if R::ENABLED {
            rec.task_arrival(seq, task.release);
            let u = a.machine.index();
            let prev = self.prev_done[u];
            if a.start > prev {
                // The gap [prev, start) was idle; a machine that never
                // ran (prev == 0) is idle implicitly, not via an event.
                if prev > 0.0 {
                    rec.machine_idle(u as u32, prev);
                }
                rec.machine_busy(u as u32, a.start);
            } else if prev == 0.0 {
                // First task of the machine, starting at t = 0.
                rec.machine_busy(u as u32, a.start);
            }
            rec.task_dispatch(seq, u as u32, task.release, a.start, task.ptime);
            self.prev_done[u] = a.start + task.ptime;
        }
        sink.accept(seq, task, a);
    }
}

/// Drives an immediate-dispatch scheduler over an arrival stream.
///
/// Pulls arrivals one at a time (asserting non-decreasing releases),
/// lets `disp` commit each task, emits the observability events for the
/// commitment, and hands the assignment to `sink`. Memory: O(m) on top
/// of whatever the stream and dispatcher hold — nothing per task.
///
/// # Panics
/// Panics if the stream and dispatcher disagree on the machine count,
/// if releases ever decrease, or if a processing set is empty or out of
/// range (propagated from the dispatcher).
pub fn run_immediate<S, D, R, K>(mut stream: S, disp: &mut D, rec: &mut R, sink: &mut K)
where
    S: ArrivalStream,
    D: ImmediateDispatcher + ?Sized,
    R: Recorder,
    K: DispatchSink,
{
    let m = stream.machines();
    assert_eq!(
        m,
        disp.machine_count(),
        "stream and dispatcher disagree on machine count"
    );
    let mut tracker = CommitTracker::new(R::ENABLED, m);
    let mut last_release = f64::NEG_INFINITY;
    let mut seq: u64 = 0;
    while let Some((task, set)) = stream.next_arrival() {
        assert!(
            task.release >= last_release,
            "arrival stream must be in non-decreasing release order \
             ({} after {last_release})",
            task.release
        );
        last_release = task.release;
        let a = disp.dispatch_task(task, set);
        tracker.commit(seq, task, a, rec, sink);
        seq += 1;
    }
    if R::ENABLED {
        if let Some(ks) = disp.kernel_stats() {
            rec.add(Counter::IndexedDescents, ks.indexed_descents);
            rec.add(Counter::ScalarFallbackScans, ks.scalar_fallback_scans);
            rec.add(Counter::HeapSelfHeals, ks.heap_self_heals);
        }
    }
}

/// [`run_immediate`] collecting the full [`Schedule`] — the batch-shaped
/// convenience every `eft`/`dispatch` wrapper uses.
pub fn immediate_schedule<S, D, R>(stream: S, disp: &mut D, rec: &mut R) -> Schedule
where
    S: ArrivalStream,
    D: ImmediateDispatcher + ?Sized,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_immediate(stream, disp, rec, &mut assignments);
    Schedule::new(assignments)
}

/// Drives a registry-addressed policy over an arrival stream: builds
/// the dispatcher through [`PolicySpec::build_for_stream`] (resolving
/// `Auto` kernels against the stream's structure hint, exactly as the
/// per-family entry points always did) and runs [`run_immediate`].
/// This is the name-addressable front door — `"eft:min:indexed"`,
/// `"weft@4"`, `"setup@0.5"` — that every bench bin and the sim driver
/// construct through.
pub fn run_policy<S, R, K>(stream: S, spec: &PolicySpec, rec: &mut R, sink: &mut K)
where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    let mut state = spec.build_for_stream(&stream);
    run_immediate(stream, &mut state, rec, sink);
}

/// [`run_policy`] collecting the full [`Schedule`].
pub fn policy_schedule<S, R>(stream: S, spec: &PolicySpec, rec: &mut R) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_policy(stream, spec, rec, &mut assignments);
    Schedule::new(assignments)
}

/// The parallel counterpart of [`run_policy`]: each shard's worker
/// builds its dispatcher through [`PolicySpec::for_shard`] +
/// [`PolicySpec::build`], so shard-local seeds and per-shard `Auto`
/// kernel resolution follow the registry's resolution invariants —
/// byte-for-byte what [`run_immediate_sharded`] always constructed for
/// the EFT family, now available for every registered policy.
///
/// # Panics
/// Panics if the stream and plan disagree on the machine count, if an
/// arrival's set straddles a shard boundary, if releases decrease, or
/// if a worker dies.
pub fn run_policy_sharded<S, R, K>(
    stream: S,
    spec: &PolicySpec,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
    sink: &mut K,
) where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    run_policy_sharded_probed(stream, spec, plan, cfg, rec, sink, NoopPipeline);
}

/// Shared accumulator for per-shard [`KernelStats`]: each worker's
/// dispatcher flushes into it on drop, and the calling thread reads the
/// totals after the transport returns. `reporters` distinguishes "no
/// shard had kernel counters" from "every counter happened to be zero",
/// so the recorder sees counter adds exactly when the sequential engine
/// would.
#[derive(Debug, Default)]
struct ShardStatsAcc {
    reporters: AtomicU64,
    indexed_descents: AtomicU64,
    scalar_fallback_scans: AtomicU64,
    heap_self_heals: AtomicU64,
}

impl ShardStatsAcc {
    fn record(&self, ks: KernelStats) {
        self.reporters.fetch_add(1, Ordering::Relaxed);
        self.indexed_descents
            .fetch_add(ks.indexed_descents, Ordering::Relaxed);
        self.scalar_fallback_scans
            .fetch_add(ks.scalar_fallback_scans, Ordering::Relaxed);
        self.heap_self_heals
            .fetch_add(ks.heap_self_heals, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Option<KernelStats> {
        (self.reporters.load(Ordering::Relaxed) > 0).then(|| KernelStats {
            indexed_descents: self.indexed_descents.load(Ordering::Relaxed),
            scalar_fallback_scans: self.scalar_fallback_scans.load(Ordering::Relaxed),
            heap_self_heals: self.heap_self_heals.load(Ordering::Relaxed),
        })
    }
}

/// Drop-guard pairing a shard's dispatcher with the shared accumulator:
/// the worker closure owns it, and `run_sharded_probed` guarantees every
/// dispatcher closure is dropped (workers joined) before it returns —
/// on both the inline and the threaded path — so the flush always lands
/// before the caller reads the snapshot.
struct ShardStatsFlush {
    state: PolicyState,
    acc: Arc<ShardStatsAcc>,
}

impl Drop for ShardStatsFlush {
    fn drop(&mut self) {
        if let Some(ks) = self.state.kernel_stats() {
            self.acc.record(ks);
        }
    }
}

/// [`run_policy_sharded`] with a wall-clock
/// [`PipelineProbe`](flowsched_obs::pipeline::PipelineProbe) observing
/// the transport (see
/// [`run_sharded_probed`](flowsched_parallel::sharded::run_sharded_probed)
/// for the stage map). The probe watches the pipeline only — routing,
/// dispatch, and merge order are untouched, so schedules, recorder
/// traces, and sink folds are identical to the unprobed run.
///
/// Like [`run_immediate`], kernel decision counters flush into `rec`
/// after the run — summed across shards, since each worker's dispatcher
/// keeps its own [`KernelStats`].
#[allow(clippy::too_many_arguments)]
pub fn run_policy_sharded_probed<S, R, K, P>(
    stream: S,
    spec: &PolicySpec,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
    sink: &mut K,
    probe: P,
) where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
    P: PipelineProbe,
{
    let mut tracker = CommitTracker::new(R::ENABLED, stream.machines());
    let stats = Arc::new(ShardStatsAcc::default());
    run_sharded_probed(
        stream,
        plan,
        cfg,
        |s| {
            let mut guard = ShardStatsFlush {
                state: spec.for_shard(s).build(plan.len_of(s)),
                acc: Arc::clone(&stats),
            };
            move |task: Task, set: ProcSetRef<'_>| guard.state.dispatch_task(task, set)
        },
        |seq, task, a| tracker.commit(seq, task, a, rec, sink),
        probe,
    );
    if R::ENABLED {
        if let Some(ks) = stats.snapshot() {
            rec.add(Counter::IndexedDescents, ks.indexed_descents);
            rec.add(Counter::ScalarFallbackScans, ks.scalar_fallback_scans);
            rec.add(Counter::HeapSelfHeals, ks.heap_self_heals);
        }
    }
}

/// [`run_policy_sharded`] collecting the full [`Schedule`].
pub fn policy_schedule_sharded<S, R>(
    stream: S,
    spec: &PolicySpec,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_policy_sharded(stream, spec, plan, cfg, rec, &mut assignments);
    Schedule::new(assignments)
}

/// The parallel counterpart of [`run_immediate`] for EFT: dispatches
/// each shard of `plan` on its own worker
/// ([`run_sharded`](flowsched_parallel::sharded::run_sharded)) with an
/// [`EftKernelState`] per shard, and commits results on the calling
/// thread in strict arrival order through the same `CommitTracker`
/// path as the sequential engine.
///
/// **Equivalence.** For `Min`/`Max` tie-breaks (and `Rand` on a
/// single-shard plan) the schedule, recorder trace, and every
/// order-sensitive sink fold are bitwise-identical to
/// `run_immediate(stream, EftKernelState::new(m, policy, kernel), …)`,
/// at every thread count: EFT's decision for a task reads only its own
/// shard's completions, each shard sees its sequential subsequence, and
/// commits replay in global arrival order. A multi-shard `Rand` run is
/// deterministic and thread-count invariant but draws per-shard streams
/// ([`TieBreak::for_shard`]), so it differs from the sequential
/// single-stream schedule.
///
/// `DispatchKernel::Auto` resolves *per shard* on the shard's width, so
/// a plan of narrow shards runs scalar kernels where the sequential
/// engine would have picked the index — the outputs are still identical
/// because the kernels are (pinned by `tests/kernel_equivalence.rs`).
///
/// # Panics
/// Panics if the stream and plan disagree on the machine count, if an
/// arrival's set straddles a shard boundary, if releases decrease, or
/// if a worker dies.
pub fn run_immediate_sharded<S, R, K>(
    stream: S,
    policy: TieBreak,
    kernel: DispatchKernel,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
    sink: &mut K,
) where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    run_policy_sharded(
        stream,
        &PolicySpec::eft(policy, kernel),
        plan,
        cfg,
        rec,
        sink,
    );
}

/// [`run_immediate_sharded`] collecting the full [`Schedule`] — the
/// sharded twin of [`immediate_schedule`].
pub fn immediate_schedule_sharded<S, R>(
    stream: S,
    policy: TieBreak,
    kernel: DispatchKernel,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    rec: &mut R,
) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_immediate_sharded(stream, policy, kernel, plan, cfg, rec, &mut assignments);
    Schedule::new(assignments)
}

/// A machine-free event in the FIFO heap, ordered by time then machine
/// index (machines freeing simultaneously pop in index order, matching
/// the tie-set convention below).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FreeEvent {
    time: Time,
    machine: usize,
}

impl Eq for FreeEvent {}

impl Ord for FreeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then_with(|| self.machine.cmp(&other.machine))
    }
}

impl PartialOrd for FreeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Drives FIFO (paper Algorithm 1) over an arrival stream.
///
/// A single global FIFO queue holds released tasks; whenever machines
/// are idle, the earliest queued task is pulled by one of them (the
/// tie-break picks which idle machine runs first). The event heap holds
/// only machine-free events — arrivals are pulled lazily from the
/// stream — so memory is O(m + queued tasks): on a stream whose queue
/// stays short, arbitrarily long runs are constant-memory.
///
/// All events at one timestamp are applied before the dispatch loop
/// (machine frees in index order, then arrivals in stream order), so
/// machines freeing simultaneously form one tie set, as in the paper.
/// `rec` sees *actual* transitions: idle at every completion, busy at
/// every pull, even when both share a timestamp.
///
/// # Panics
/// Panics if any arrival carries a real processing-set restriction —
/// FIFO's central queue has no notion of eligibility — or if releases
/// ever decrease.
pub fn run_fifo<S, R, K>(mut stream: S, policy: TieBreak, rec: &mut R, sink: &mut K)
where
    S: ArrivalStream,
    R: Recorder,
    K: DispatchSink,
{
    let m = stream.machines();
    assert!(m > 0, "need at least one machine");
    let mut breaker = policy.breaker();
    let mut events: BinaryHeap<Reverse<FreeEvent>> = BinaryHeap::new();
    let mut idle: Vec<bool> = vec![true; m];
    let mut queue: VecDeque<(u64, Task)> = VecDeque::new();

    let mut next_seq: u64 = 0;
    let mut last_release = f64::NEG_INFINITY;
    let mut pull = |stream: &mut S, last_release: &mut f64| -> Option<(u64, Task)> {
        let (task, set) = stream.next_arrival()?;
        assert!(
            set.len() == m,
            "FIFO requires an unrestricted stream (P | online-ri | Fmax); \
             use EFT for processing set restrictions"
        );
        assert!(
            task.release >= *last_release,
            "arrival stream must be in non-decreasing release order \
             ({} after {last_release})",
            task.release
        );
        *last_release = task.release;
        let seq = next_seq;
        next_seq += 1;
        Some((seq, task))
    };
    let mut pending = pull(&mut stream, &mut last_release);

    loop {
        // The next timestamp with any event: a machine freeing, a task
        // arriving, or both.
        let now = match (events.peek(), &pending) {
            (None, None) => break,
            (Some(&Reverse(f)), None) => f.time,
            (None, Some((_, t))) => t.release,
            (Some(&Reverse(f)), Some((_, t))) => f.time.min(t.release),
        };
        // Apply every event at this timestamp before dispatching, so
        // that machines freeing simultaneously form one tie set (as in
        // the paper, where ties are "broken when at least 2 machines are
        // idle at the same time").
        while let Some(&Reverse(ev)) = events.peek() {
            if ev.time != now {
                break;
            }
            events.pop();
            if R::ENABLED {
                rec.machine_idle(ev.machine as u32, now);
            }
            idle[ev.machine] = true;
        }
        while let Some(&(seq, task)) = pending.as_ref() {
            if task.release != now {
                break;
            }
            if R::ENABLED {
                rec.task_arrival(seq, now);
            }
            queue.push_back((seq, task));
            pending = pull(&mut stream, &mut last_release);
        }
        // Dispatch loop: idle machines pull from the queue head.
        loop {
            if queue.is_empty() {
                break;
            }
            let idle_set: Vec<usize> = (0..m).filter(|&j| idle[j]).collect();
            if idle_set.is_empty() {
                break;
            }
            let u = breaker.pick(&idle_set);
            let (seq, task) = queue.pop_front().unwrap();
            idle[u] = false;
            if R::ENABLED {
                rec.machine_busy(u as u32, now);
                rec.task_dispatch(seq, u as u32, task.release, now, task.ptime);
            }
            events.push(Reverse(FreeEvent {
                time: now + task.ptime,
                machine: u,
            }));
            sink.accept(seq, task, Assignment::new(MachineId(u), now));
        }
    }
}

/// [`run_fifo`] collecting the full [`Schedule`]. FIFO dispatches the
/// central queue in arrival order, so assignments reach the sink in
/// task order and collect directly.
pub fn fifo_schedule<S, R>(stream: S, policy: TieBreak, rec: &mut R) -> Schedule
where
    S: ArrivalStream,
    R: Recorder,
{
    let mut assignments = Vec::with_capacity(stream.len_hint().unwrap_or(0));
    run_fifo(stream, policy, rec, &mut assignments);
    Schedule::new(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::EftState;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::stream::{FnStream, InstanceStream};
    use flowsched_obs::NoopRecorder;

    #[test]
    fn immediate_engine_matches_direct_state_dispatch() {
        let mut b = InstanceBuilder::new(3);
        for i in 0..30 {
            b.push_unit(
                i as f64 * 0.25,
                ProcSet::interval(i % 3, (i % 3).min(1) + 1),
            );
        }
        let inst = b.build().unwrap();
        let mut state = EftState::new(3, TieBreak::Min);
        let via_engine =
            immediate_schedule(InstanceStream::new(&inst), &mut state, &mut NoopRecorder);
        let mut direct = EftState::new(3, TieBreak::Min);
        let expected = Schedule::new(inst.iter().map(|(_, t, s)| direct.dispatch(t, s)).collect());
        assert_eq!(via_engine, expected);
    }

    #[test]
    #[should_panic(expected = "non-decreasing release order")]
    fn immediate_engine_rejects_time_travel() {
        let releases = std::cell::Cell::new(2);
        let stream = FnStream::new(2, move || {
            let left = releases.get();
            if left == 0 {
                return None;
            }
            releases.set(left - 1);
            // Second arrival releases *earlier* than the first.
            Some((Task::unit(left as f64), ProcSet::full(2)))
        });
        let mut state = EftState::new(2, TieBreak::Min);
        run_immediate(stream, &mut state, &mut NoopRecorder, &mut NullSink);
    }

    #[test]
    #[should_panic(expected = "unrestricted")]
    fn fifo_engine_rejects_restricted_arrivals() {
        let fired = std::cell::Cell::new(false);
        let stream = FnStream::new(2, move || {
            if fired.replace(true) {
                return None;
            }
            Some((Task::unit(0.0), ProcSet::singleton(0)))
        });
        run_fifo(stream, TieBreak::Min, &mut NoopRecorder, &mut NullSink);
    }

    #[test]
    fn fifo_engine_handles_empty_streams() {
        let stream = FnStream::new(3, || None);
        let s = fifo_schedule(stream, TieBreak::Min, &mut NoopRecorder);
        assert!(s.is_empty());
    }

    #[test]
    fn kernel_counters_flush_into_the_recorder() {
        use crate::indexed::IndexedEftState;
        use flowsched_obs::{Counter, MemoryRecorder};
        let mut b = InstanceBuilder::new(4);
        for i in 0..10 {
            b.push_unit(i as f64, ProcSet::interval(0, 3));
        }
        let inst = b.build().unwrap();
        let mut state = IndexedEftState::new(4, TieBreak::Min);
        let mut rec = MemoryRecorder::with_defaults(4);
        run_immediate(
            InstanceStream::new(&inst),
            &mut state,
            &mut rec,
            &mut NullSink,
        );
        assert_eq!(rec.counters().get(Counter::IndexedDescents), 10);
        assert_eq!(rec.counters().get(Counter::ScalarFallbackScans), 0);
        assert_eq!(rec.counters().get(Counter::HeapSelfHeals), 0);
    }

    #[test]
    fn sharded_runs_flush_kernel_counters_from_workers() {
        use flowsched_obs::{Counter, MemoryRecorder};
        let m = 8;
        let mut b = InstanceBuilder::new(m);
        for i in 0..40 {
            let lo = if i % 2 == 0 { 0 } else { 4 };
            b.push_unit(i as f64 * 0.5, ProcSet::interval(lo, lo + 3));
        }
        let inst = b.build().unwrap();
        let spec = PolicySpec::eft(TieBreak::Min, DispatchKernel::Indexed);
        let plan = ShardPlan::blocks(m, 4, 16);
        assert_eq!(plan.shards(), 2);
        let mut rec = MemoryRecorder::with_defaults(m);
        run_policy_sharded(
            InstanceStream::new(&inst),
            &spec,
            &plan,
            &ShardedConfig::with_threads(2),
            &mut rec,
            &mut NullSink,
        );
        // Both workers' indexed kernels flush on drop; the counters sum
        // across shards exactly as the sequential engine reports them.
        assert_eq!(rec.counters().get(Counter::IndexedDescents), 40);
    }

    #[test]
    fn null_sink_runs_discard_nothing_but_still_drive_state() {
        let mut b = InstanceBuilder::new(2);
        b.push_unit(0.0, ProcSet::full(2));
        b.push_unit(0.0, ProcSet::full(2));
        let inst = b.build().unwrap();
        let mut state = EftState::new(2, TieBreak::Min);
        run_immediate(
            InstanceStream::new(&inst),
            &mut state,
            &mut NoopRecorder,
            &mut NullSink,
        );
        assert_eq!(state.completions(), &[1.0, 1.0]);
    }
}
