//! Offline local-search improvement over a seed schedule.
//!
//! The online algorithms commit irrevocably; offline, their schedules can
//! often be improved. This hill climber repeatedly takes a task on the
//! critical path (attaining the current `Fmax`) and tries every
//! alternative machine in its processing set, repacking both machines'
//! tasks contiguously in release order (optimal per machine by the
//! exchange argument). It is a practical upper-bound tightener between
//! EFT and the exponential exact solvers: never worse than its seed, and
//! frequently optimal on the sizes the experiments use.

use flowsched_core::instance::Instance;
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::TaskId;
use flowsched_core::time::Time;

use crate::tiebreak::TieBreak;

/// Improves `seed` by critical-task reassignment until a local optimum
/// or `max_moves` accepted moves.
///
/// # Panics
/// Panics if `seed` does not match the instance (wrong length).
pub fn improve(inst: &Instance, seed: &Schedule, max_moves: usize) -> Schedule {
    assert_eq!(
        seed.len(),
        inst.len(),
        "seed schedule must cover the instance"
    );
    if inst.is_empty() {
        return seed.clone();
    }
    // Work on machine→task-list form; repack defines start times.
    let mut lanes: Vec<Vec<TaskId>> = seed.machine_timelines(inst);
    let mut best_fmax = pack_fmax(inst, &lanes);

    let mut moves = 0usize;
    'outer: while moves < max_moves {
        let (schedule, _) = pack(inst, &lanes);
        let critical = schedule
            .argmax_flow(inst)
            .expect("non-empty instance has a critical task");
        let critical_machine = schedule.machine(critical).index();

        // Candidate moves: relocate the critical task itself, or evict
        // any other task sharing its machine (unblocking the critical
        // path from either end).
        let movers: Vec<TaskId> = std::iter::once(critical)
            .chain(
                lanes[critical_machine]
                    .iter()
                    .copied()
                    .filter(|&t| t != critical),
            )
            .collect();
        for mover in movers {
            for &alt in inst.set(mover).as_slice() {
                if alt == critical_machine {
                    continue;
                }
                let mut candidate = lanes.clone();
                candidate[critical_machine].retain(|&t| t != mover);
                insert_by_release(inst, &mut candidate[alt], mover);
                let fmax = pack_fmax(inst, &candidate);
                if fmax < best_fmax - 1e-12 {
                    lanes = candidate;
                    best_fmax = fmax;
                    moves += 1;
                    continue 'outer;
                }
            }
        }
        break; // no improving move around the critical machine
    }
    pack(inst, &lanes).0
}

/// Runs EFT and then polishes its schedule (`improve` with the EFT seed).
pub fn eft_plus_local_search(inst: &Instance, policy: TieBreak, max_moves: usize) -> Schedule {
    let seed = crate::eft::eft(inst, policy);
    improve(inst, &seed, max_moves)
}

fn insert_by_release(inst: &Instance, lane: &mut Vec<TaskId>, task: TaskId) {
    let r = inst.task(task).release;
    let pos = lane.partition_point(|&t| inst.task(t).release <= r);
    lane.insert(pos, task);
}

/// Packs lanes contiguously (release order within each lane is the
/// caller's responsibility) and returns the schedule + its `Fmax`.
fn pack(inst: &Instance, lanes: &[Vec<TaskId>]) -> (Schedule, Time) {
    let mut assignments = vec![Assignment::new(MachineId(0), 0.0); inst.len()];
    let mut fmax: Time = 0.0;
    for (j, lane) in lanes.iter().enumerate() {
        let mut busy: Time = 0.0;
        for &t in lane {
            let task = inst.task(t);
            let start = task.release.max(busy);
            busy = start + task.ptime;
            assignments[t.0] = Assignment::new(MachineId(j), start);
            fmax = fmax.max(busy - task.release);
        }
    }
    (Schedule::new(assignments), fmax)
}

fn pack_fmax(inst: &Instance, lanes: &[Vec<TaskId>]) -> Time {
    pack(inst, lanes).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::eft;
    use crate::offline::brute_force_fmax;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::task::Task;

    #[test]
    fn never_worse_than_seed_and_always_feasible() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let m = rng.random_range(2..=4);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..rng.random_range(4..=20) {
                let r = rng.random_range(0..5) as f64;
                let p = 0.25 * rng.random_range(1..=8) as f64;
                let lo = rng.random_range(0..m);
                let hi = rng.random_range(lo..m);
                b.push(Task::new(r, p), ProcSet::interval(lo, hi));
            }
            let inst = b.build().unwrap();
            let seed = eft(&inst, TieBreak::Min);
            let improved = improve(&inst, &seed, 100);
            improved.validate(&inst).unwrap();
            assert!(
                improved.fmax(&inst) <= seed.fmax(&inst) + 1e-9,
                "local search regressed: {} > {}",
                improved.fmax(&inst),
                seed.fmax(&inst)
            );
        }
    }

    #[test]
    fn fixes_an_obvious_eft_mistake() {
        // EFT-Min sends the first long task to M1; the later restricted
        // task must then wait there. Offline, moving the long task to M2
        // is free.
        let mut b = InstanceBuilder::new(2);
        b.push(Task::new(0.0, 4.0), ProcSet::full(2));
        b.push(Task::new(0.0, 4.0), ProcSet::singleton(0));
        let inst = b.build().unwrap();
        let seed = eft(&inst, TieBreak::Min); // both crash on M1 vs split
        let improved = improve(&inst, &seed, 10);
        assert!(
            improved.fmax(&inst) <= 4.0 + 1e-12,
            "{}",
            improved.fmax(&inst)
        );
        assert!(seed.fmax(&inst) >= 8.0 - 1e-12, "seed was already fine?");
    }

    #[test]
    fn often_reaches_the_exact_optimum_on_small_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut hits = 0;
        let trials = 25;
        for _ in 0..trials {
            let m = rng.random_range(2..=3);
            let mut b = InstanceBuilder::new(m);
            for _ in 0..rng.random_range(3..=8) {
                let r = rng.random_range(0..3) as f64;
                let p = 0.5 * rng.random_range(1..=4) as f64;
                b.push_unrestricted(Task::new(r, p));
            }
            let inst = b.build().unwrap();
            let improved = eft_plus_local_search(&inst, TieBreak::Min, 200);
            let opt = brute_force_fmax(&inst);
            if (improved.fmax(&inst) - opt).abs() < 1e-9 {
                hits += 1;
            }
            assert!(improved.fmax(&inst) >= opt - 1e-9, "better than optimal?!");
        }
        assert!(
            hits * 2 >= trials,
            "local search optimal on only {hits}/{trials}"
        );
    }

    #[test]
    fn respects_processing_sets() {
        let mut b = InstanceBuilder::new(3);
        for i in 0..9 {
            b.push_unit((i / 3) as f64, ProcSet::interval(0, 1));
        }
        let inst = b.build().unwrap();
        let improved = eft_plus_local_search(&inst, TieBreak::Min, 50);
        improved.validate(&inst).unwrap();
        for i in 0..inst.len() {
            assert!(improved.machine(TaskId(i)).index() <= 1);
        }
    }

    #[test]
    fn zero_moves_returns_packed_seed() {
        let mut b = InstanceBuilder::new(2);
        b.push_unit(0.0, ProcSet::full(2));
        let inst = b.build().unwrap();
        let seed = eft(&inst, TieBreak::Min);
        let out = improve(&inst, &seed, 0);
        assert_eq!(out.fmax(&inst), seed.fmax(&inst));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::unrestricted(1, vec![]).unwrap();
        let seed = eft(&inst, TieBreak::Min);
        assert!(improve(&inst, &seed, 10).is_empty());
    }
}
