//! Weighted-EFT dispatch for the weighted max flow time objective
//! `max wᵢ·Fᵢ` (Azar–Touitou, arXiv:1712.10273).
//!
//! Plain EFT is weight-blind: a flood of throwaway `w = 1` tasks spreads
//! across every machine and a subsequent `w = W` task inherits the full
//! backlog, paying `W ×` its flow in the weighted objective. Azar–Touitou
//! separate jobs by weight class so that heavy jobs never queue behind
//! light ones. [`WeightedEftState`] is the immediate-dispatch rendition
//! of that idea as a *budget-scaled packing* rule:
//!
//! 1. compute the earliest achievable start over the processing set,
//!    `t'ᵢ = max(rᵢ, min_{j∈Mᵢ} C_j)` — exactly EFT's Equation (2)
//!    minimum;
//! 2. a task of weight `wᵢ` may start up to `θ / wᵢ` later than that
//!    without moving the weighted objective by more than `θ` (its
//!    weighted flow grows by at most `wᵢ·(θ/wᵢ)`), so every machine with
//!    candidate start `≤ t'ᵢ + θ/wᵢ` is *eligible*;
//! 3. dispatch to the **most loaded** eligible machine (largest
//!    candidate start, ascending tie set through the usual
//!    [`Breaker`]) — light tasks pack onto already-busy machines and the
//!    lightly-loaded machines stay in reserve for heavy arrivals, whose
//!    budget `θ/wᵢ → 0` forces strict EFT placement.
//!
//! With `θ = 0` the eligible set collapses to EFT's tie set
//! `U'ᵢ = {j : C_j ≤ t'ᵢ}` and one [`Breaker::pick`] is drawn per task,
//! so `weft@0` reproduces the scalar EFT kernel **bitwise** (schedule
//! and RNG draws) at any weight assignment — pinned by
//! `tests/policy_registry.rs`. This is not Azar–Touitou's algorithm
//! (theirs is preemptive with explicit weight-class queues); it is the
//! non-preemptive immediate-dispatch analogue their weight-separation
//! argument suggests, measured empirically against the exact weighted
//! oracle in `flowsched_algos::offline`.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::Assignment;
use flowsched_core::task::Task;
use flowsched_core::time::Time;

use crate::eft::ImmediateDispatcher;
use crate::tiebreak::{Breaker, TieBreak};

/// Incremental weighted-EFT state: per-machine completions plus the
/// packing budget `θ` (the `slack` of the `weft@SLACK` policy string).
#[derive(Debug)]
pub struct WeightedEftState {
    completions: Vec<Time>,
    breaker: Breaker,
    /// Packing budget `θ ≥ 0`: a weight-`w` task may be delayed up to
    /// `θ/w` past its earliest achievable start.
    slack: Time,
    /// Scratch buffer for the tie set, reused across dispatches.
    ties: Vec<usize>,
}

impl WeightedEftState {
    /// Fresh state for `m` idle machines.
    ///
    /// # Panics
    /// Panics when `m == 0` or `slack < 0`.
    pub fn new(m: usize, policy: TieBreak, slack: Time) -> Self {
        assert!(m > 0, "need at least one machine");
        assert!(slack >= 0.0, "packing slack must be non-negative");
        WeightedEftState {
            completions: vec![0.0; m],
            breaker: policy.breaker(),
            slack,
            ties: Vec::new(),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.completions.len()
    }

    /// Current completion time of each machine.
    pub fn completions(&self) -> &[Time] {
        &self.completions
    }

    /// Dispatches one task under the budget-scaled packing rule (see
    /// the module docs). Tasks must arrive in non-decreasing release
    /// order, as everywhere in the immediate engine.
    ///
    /// # Panics
    /// Panics on an empty processing set or a non-positive task weight.
    pub fn dispatch(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        assert!(task.weight > 0.0, "task weights must be positive");
        let mut min_start = f64::INFINITY;
        for j in set.iter() {
            let s = task.release.max(self.completions[j]);
            if s < min_start {
                min_start = s;
            }
        }
        let budget = min_start + self.slack / task.weight;
        // Most loaded machine still inside the budget; members iterate
        // ascending, so the tie set keeps the order Breaker::pick needs.
        let mut packed = f64::NEG_INFINITY;
        self.ties.clear();
        for j in set.iter() {
            let s = task.release.max(self.completions[j]);
            if s > budget {
                continue;
            }
            if s > packed {
                packed = s;
                self.ties.clear();
                self.ties.push(j);
            } else if s == packed {
                self.ties.push(j);
            }
        }
        let u = self.breaker.pick(&self.ties);
        let start = task.release.max(self.completions[u]);
        self.completions[u] = start + task.ptime;
        Assignment::new(MachineId(u), start)
    }
}

impl ImmediateDispatcher for WeightedEftState {
    fn machine_count(&self) -> usize {
        self.machines()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        self.completions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::EftState;
    use flowsched_core::procset::ProcSet;

    #[test]
    fn zero_slack_matches_plain_eft_bitwise() {
        for policy in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 5 }] {
            let m = 6;
            let mut eft = EftState::new(m, policy);
            let mut weighted = WeightedEftState::new(m, policy, 0.0);
            let full = ProcSet::full(m);
            for i in 0..200 {
                // Mixed weights: the rule must still ignore them at θ=0.
                let w = if i % 7 == 0 { 16.0 } else { 1.0 };
                let task = Task::weighted((i / 4) as f64 * 0.5, 1.0 + (i % 3) as f64 * 0.25, w);
                assert_eq!(
                    eft.dispatch_ref(task, full.view()),
                    weighted.dispatch(task, full.view()),
                    "{policy:?} dispatch {i} diverged"
                );
            }
            assert_eq!(eft.completions(), weighted.completions());
        }
    }

    #[test]
    fn light_tasks_pack_and_leave_reserve_for_heavy() {
        // 3 machines, slack 10: three light unit tasks at t=0 all pack
        // onto one machine (their budget tolerates waiting); a heavy
        // task then starts immediately on an idle machine.
        let mut st = WeightedEftState::new(3, TieBreak::Min, 10.0);
        let full = ProcSet::full(3);
        for _ in 0..3 {
            let a = st.dispatch(Task::weighted(0.0, 1.0, 1.0), full.view());
            assert_eq!(a.machine.index(), 0, "light tasks pack onto M1");
        }
        let heavy = st.dispatch(Task::weighted(0.0, 1.0, 1000.0), full.view());
        assert_eq!(heavy.start, 0.0, "heavy task must not queue");
        assert_ne!(heavy.machine.index(), 0);
    }

    #[test]
    fn budget_scales_inversely_with_weight() {
        // Slack 2: a w=1 task tolerates start ≤ t' + 2 (packs onto the
        // busy machine), a w=4 task only ≤ t' + 0.5 (goes idle).
        let mk = || {
            let mut st = WeightedEftState::new(2, TieBreak::Min, 2.0);
            st.dispatch(Task::new(0.0, 1.5), ProcSet::full(2).view()); // M1 busy to 1.5
            st
        };
        let a = mk().dispatch(Task::weighted(0.0, 1.0, 1.0), ProcSet::full(2).view());
        assert_eq!(a.machine.index(), 0, "light task packs");
        let b = mk().dispatch(Task::weighted(0.0, 1.0, 4.0), ProcSet::full(2).view());
        assert_eq!(b.machine.index(), 1, "heavy task takes the idle machine");
    }

    #[test]
    fn respects_processing_sets() {
        let mut st = WeightedEftState::new(4, TieBreak::Min, 5.0);
        for i in 0..20 {
            let a = st.dispatch(
                Task::weighted(i as f64 * 0.25, 1.0, 1.0 + (i % 3) as f64),
                ProcSet::interval(1, 2).view(),
            );
            assert!((1..=2).contains(&a.machine.index()));
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn rejects_non_positive_weights() {
        let mut st = WeightedEftState::new(2, TieBreak::Min, 1.0);
        st.dispatch(Task::weighted(0.0, 1.0, 0.0), ProcSet::full(2).view());
    }
}
