//! Alternative immediate-dispatch algorithms.
//!
//! The paper's conclusion asks whether the `m − k + 1` interval bound
//! "could be extended to other immediate dispatch algorithms". This
//! module provides the natural candidates, all sharing EFT's
//! immediate-dispatch shape (task arrives → machine committed at once)
//! but differing in *how* the machine is picked:
//!
//! - [`DispatchRule::Eft`]: earliest finish time (the paper's
//!   Algorithm 2) under a tie-break policy;
//! - [`DispatchRule::RandomMachine`]: uniform over the processing set,
//!   load-oblivious — the baseline a replicated store gets from random
//!   replica selection;
//! - [`DispatchRule::TwoChoices`]: "power of d choices" — sample `d`
//!   machines from the processing set, send to the least loaded. The
//!   classic balls-into-bins result says `d = 2` already collapses the
//!   max backlog exponentially compared to random;
//! - [`DispatchRule::RoundRobin`]: per-processing-set round-robin, the
//!   stateful strategy proxies often implement.
//!
//! All are [`ImmediateDispatcher`]s, so every adversary in
//! `flowsched-workloads` can be aimed at them unchanged.

use std::collections::HashMap;

use flowsched_core::compact::ProcSetRef;
use flowsched_core::machine::MachineId;
use flowsched_core::procset::ProcSet;
use flowsched_core::schedule::{Assignment, Schedule};
use flowsched_core::task::Task;
use flowsched_core::time::Time;
use flowsched_stats::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;

use crate::eft::ImmediateDispatcher;
use crate::indexed::{DispatchKernel, EftKernelState};
use crate::tiebreak::TieBreak;

/// Which immediate-dispatch rule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchRule {
    /// Earliest finish time with the given tie-break (the paper's EFT).
    Eft(TieBreak),
    /// Uniformly random machine of the processing set (load-oblivious).
    RandomMachine {
        /// RNG seed.
        seed: u64,
    },
    /// Sample `d` machines uniformly (with replacement) from the
    /// processing set; dispatch to the earliest-finishing sample.
    TwoChoices {
        /// Number of sampled candidates (`d ≥ 1`). `d = 1` degenerates
        /// to [`DispatchRule::RandomMachine`].
        d: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Round-robin over each distinct processing set.
    RoundRobin,
}

impl std::fmt::Display for DispatchRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchRule::Eft(tb) => write!(f, "{tb}"),
            DispatchRule::RandomMachine { .. } => write!(f, "Random"),
            DispatchRule::TwoChoices { d, .. } => write!(f, "Choices({d})"),
            DispatchRule::RoundRobin => write!(f, "RoundRobin"),
        }
    }
}

/// A generic immediate-dispatch scheduler state for any
/// [`DispatchRule`].
#[derive(Debug)]
pub struct Dispatcher {
    completions: Vec<Time>,
    kind: RuleState,
}

#[derive(Debug)]
enum RuleState {
    Eft(Box<EftKernelState>),
    Random(Box<StdRng>),
    Choices(usize, Box<StdRng>),
    RoundRobin(HashMap<ProcSet, usize>),
}

impl Dispatcher {
    /// Fresh state for `m` idle machines; EFT rules use the
    /// automatically-selected dispatch kernel.
    pub fn new(m: usize, rule: DispatchRule) -> Self {
        Dispatcher::with_kernel(m, rule, DispatchKernel::Auto)
    }

    /// [`new`](Dispatcher::new) with the EFT dispatch kernel forced
    /// (ignored by the non-EFT rules, which have no index to select).
    pub fn with_kernel(m: usize, rule: DispatchRule, kernel: DispatchKernel) -> Self {
        assert!(m > 0, "need at least one machine");
        let kind = match rule {
            DispatchRule::Eft(tb) => RuleState::Eft(Box::new(EftKernelState::new(m, tb, kernel))),
            DispatchRule::RandomMachine { seed } => {
                RuleState::Random(Box::new(derive_rng(seed, 0x7A11)))
            }
            DispatchRule::TwoChoices { d, seed } => {
                assert!(d >= 1, "need at least one sampled choice");
                RuleState::Choices(d, Box::new(derive_rng(seed, 0x7A12)))
            }
            DispatchRule::RoundRobin => RuleState::RoundRobin(HashMap::new()),
        };
        Dispatcher {
            completions: vec![0.0; m],
            kind,
        }
    }

    /// Dispatches one task under the configured rule.
    pub fn dispatch(&mut self, task: Task, set: &ProcSet) -> Assignment {
        self.dispatch_ref(task, set.view())
    }

    /// [`dispatch`](Dispatcher::dispatch) over a compact set view —
    /// what the streaming engine feeds. `ProcSetRef::nth` gives every
    /// rule O(1) member sampling regardless of representation.
    pub fn dispatch_ref(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        assert!(!set.is_empty(), "task has an empty processing set");
        match &mut self.kind {
            RuleState::Eft(state) => {
                let a = state.dispatch_task(task, set);
                self.completions[a.machine.index()] = a.start + task.ptime;
                a
            }
            RuleState::Random(rng) => {
                let pick = set.nth(rng.random_range(0..set.len()));
                self.commit(task, pick)
            }
            RuleState::Choices(d, rng) => {
                let mut best = set.nth(rng.random_range(0..set.len()));
                for _ in 1..*d {
                    let cand = set.nth(rng.random_range(0..set.len()));
                    if self.completions[cand] < self.completions[best] {
                        best = cand;
                    }
                }
                self.commit(task, best)
            }
            RuleState::RoundRobin(cursors) => {
                let cursor = cursors.entry(set.to_procset()).or_insert(0);
                let pick = set.nth(*cursor % set.len());
                *cursor += 1;
                self.commit(task, pick)
            }
        }
    }

    fn commit(&mut self, task: Task, machine: usize) -> Assignment {
        let start = task.release.max(self.completions[machine]);
        self.completions[machine] = start + task.ptime;
        Assignment::new(MachineId(machine), start)
    }
}

impl ImmediateDispatcher for Dispatcher {
    fn machine_count(&self) -> usize {
        self.completions.len()
    }

    fn dispatch_task(&mut self, task: Task, set: ProcSetRef<'_>) -> Assignment {
        self.dispatch_ref(task, set)
    }

    fn machine_completions(&self) -> &[Time] {
        &self.completions
    }

    fn kernel_stats(&self) -> Option<crate::indexed::KernelStats> {
        match &self.kind {
            RuleState::Eft(state) => state.kernel_stats(),
            _ => None,
        }
    }
}

/// Runs a dispatch rule over a whole instance.
pub fn dispatch(inst: &flowsched_core::Instance, rule: DispatchRule) -> Schedule {
    use flowsched_core::stream::InstanceStream;
    dispatch_stream(
        InstanceStream::new(inst),
        rule,
        &mut flowsched_obs::NoopRecorder,
    )
}

/// Runs a dispatch rule over an arbitrary [`ArrivalStream`] — the
/// canonical entry point, shared with EFT via
/// [`engine::run_immediate`](crate::engine::run_immediate). Because the
/// engine, not the rule, emits busy/idle transitions, `rec` sees the
/// same uniform transition convention for every rule (random,
/// power-of-d, round-robin) that the EFT trace follows.
pub fn dispatch_stream<S, R>(stream: S, rule: DispatchRule, rec: &mut R) -> Schedule
where
    S: flowsched_core::stream::ArrivalStream,
    R: flowsched_obs::Recorder,
{
    dispatch_stream_with_kernel(stream, rule, DispatchKernel::Auto, rec)
}

/// [`dispatch_stream`] with the EFT dispatch kernel forced.
pub fn dispatch_stream_with_kernel<S, R>(
    stream: S,
    rule: DispatchRule,
    kernel: DispatchKernel,
    rec: &mut R,
) -> Schedule
where
    S: flowsched_core::stream::ArrivalStream,
    R: flowsched_obs::Recorder,
{
    let spec = crate::registry::PolicySpec::from(rule).with_kernel(kernel);
    crate::engine::policy_schedule(stream, &spec, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::task::TaskId;

    fn burst_instance(m: usize, per_step: usize, steps: usize) -> flowsched_core::Instance {
        let mut b = InstanceBuilder::new(m);
        for t in 0..steps {
            for _ in 0..per_step {
                b.push_unit(t as f64, ProcSet::full(m));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn all_rules_produce_feasible_schedules() {
        let inst = burst_instance(4, 6, 10);
        for rule in [
            DispatchRule::Eft(TieBreak::Min),
            DispatchRule::RandomMachine { seed: 1 },
            DispatchRule::TwoChoices { d: 2, seed: 1 },
            DispatchRule::RoundRobin,
        ] {
            let s = dispatch(&inst, rule);
            s.validate(&inst).unwrap_or_else(|e| panic!("{rule}: {e}"));
        }
    }

    #[test]
    fn eft_rule_matches_eft_function() {
        let inst = burst_instance(3, 4, 8);
        let via_rule = dispatch(&inst, DispatchRule::Eft(TieBreak::Max));
        let direct = crate::eft::eft(&inst, TieBreak::Max);
        assert_eq!(via_rule, direct);
    }

    #[test]
    fn round_robin_cycles_within_a_set() {
        let mut st = Dispatcher::new(3, DispatchRule::RoundRobin);
        let set = ProcSet::full(3);
        let picks: Vec<usize> = (0..6)
            .map(|_| st.dispatch(Task::unit(0.0), &set).machine.index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_keeps_separate_cursors_per_set() {
        let mut st = Dispatcher::new(4, DispatchRule::RoundRobin);
        let a = ProcSet::interval(0, 1);
        let b = ProcSet::interval(2, 3);
        assert_eq!(st.dispatch(Task::unit(0.0), &a).machine.index(), 0);
        assert_eq!(st.dispatch(Task::unit(0.0), &b).machine.index(), 2);
        assert_eq!(st.dispatch(Task::unit(0.0), &a).machine.index(), 1);
        assert_eq!(st.dispatch(Task::unit(0.0), &b).machine.index(), 3);
    }

    #[test]
    fn two_choices_beats_random_on_bursts() {
        // The d=2 sampled rule should clearly beat load-oblivious random
        // on a saturated burst (classic balls-into-bins separation).
        let inst = burst_instance(8, 8, 60);
        let rand_fmax = dispatch(&inst, DispatchRule::RandomMachine { seed: 3 }).fmax(&inst);
        let two_fmax = dispatch(&inst, DispatchRule::TwoChoices { d: 2, seed: 3 }).fmax(&inst);
        assert!(
            two_fmax < rand_fmax,
            "two-choices {two_fmax} should beat random {rand_fmax}"
        );
    }

    #[test]
    fn full_choices_approaches_eft() {
        // Sampling d = |set| with replacement approximates full EFT.
        let inst = burst_instance(4, 4, 30);
        let eft_fmax = dispatch(&inst, DispatchRule::Eft(TieBreak::Min)).fmax(&inst);
        let many = dispatch(&inst, DispatchRule::TwoChoices { d: 16, seed: 9 }).fmax(&inst);
        assert!(
            many <= eft_fmax + 2.0,
            "choices(16) {many} vs EFT {eft_fmax}"
        );
    }

    #[test]
    fn rules_are_reproducible() {
        let inst = burst_instance(5, 5, 20);
        for rule in [
            DispatchRule::RandomMachine { seed: 11 },
            DispatchRule::TwoChoices { d: 2, seed: 11 },
        ] {
            let a = dispatch(&inst, rule);
            let b = dispatch(&inst, rule);
            assert_eq!(a, b, "{rule}");
        }
    }

    #[test]
    fn respects_processing_sets() {
        let mut b = InstanceBuilder::new(4);
        for i in 0..20 {
            b.push_unit(i as f64 * 0.5, ProcSet::interval(1, 2));
        }
        let inst = b.build().unwrap();
        for rule in [
            DispatchRule::RandomMachine { seed: 2 },
            DispatchRule::TwoChoices { d: 3, seed: 2 },
            DispatchRule::RoundRobin,
        ] {
            let s = dispatch(&inst, rule);
            for i in 0..inst.len() {
                let m = s.machine(TaskId(i)).index();
                assert!((1..=2).contains(&m), "{rule} sent {i} to {m}");
            }
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(DispatchRule::Eft(TieBreak::Min).to_string(), "EFT-Min");
        assert_eq!(
            DispatchRule::RandomMachine { seed: 0 }.to_string(),
            "Random"
        );
        assert_eq!(
            DispatchRule::TwoChoices { d: 2, seed: 0 }.to_string(),
            "Choices(2)"
        );
        assert_eq!(DispatchRule::RoundRobin.to_string(), "RoundRobin");
    }

    #[test]
    fn adversaries_can_target_any_rule() {
        // The ImmediateDispatcher impl lets Theorem 8's adversary attack
        // every rule. (Whether the bound holds for them is an open
        // question the experiments explore; here we just check plumbing.)
        let mut d = Dispatcher::new(6, DispatchRule::RoundRobin);
        let set = ProcSet::interval(0, 2);
        let a = d.dispatch_task(Task::unit(0.0), set.view());
        assert!(a.machine.index() <= 2);
        assert_eq!(d.machine_count(), 6);
        assert!(d.machine_completions()[a.machine.index()] > 0.0);
    }
}
