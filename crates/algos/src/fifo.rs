//! FIFO — centralized-queue scheduling (paper Algorithm 1).
//!
//! A single global FIFO queue holds released tasks; whenever machines are
//! idle, the earliest queued task is pulled by one of them (the tie-break
//! policy selects which idle machine runs first). Unlike EFT, FIFO is
//! *not* an immediate-dispatch algorithm — a task may wait in the central
//! queue — and the paper notes it does not extend naturally to processing
//! set restrictions, so this implementation requires an unrestricted
//! instance.
//!
//! The implementation — [`crate::engine::run_fifo`] — is a faithful
//! discrete-event simulation (a machine-free event heap merged with the
//! lazy arrival stream), deliberately *not* sharing its loop with the
//! immediate-dispatch engine behind [`crate::eft()`], so the
//! equivalence of Proposition 1 is validated by running two independent
//! engines over the same stream.

use flowsched_core::instance::Instance;
use flowsched_core::schedule::Schedule;
use flowsched_core::stream::{ArrivalStream, InstanceStream};
use flowsched_obs::{NoopRecorder, Recorder};

use crate::engine;
use crate::tiebreak::TieBreak;

/// Runs FIFO (Algorithm 1) over an unrestricted instance.
///
/// ```
/// use flowsched_algos::{TieBreak, eft, fifo};
/// use flowsched_core::prelude::*;
///
/// let inst = Instance::unrestricted(
///     3,
///     vec![Task::new(0.0, 2.0), Task::new(0.5, 1.0), Task::new(0.5, 1.0)],
/// ).unwrap();
/// // Proposition 1: FIFO and EFT produce the same schedule.
/// assert_eq!(fifo(&inst, TieBreak::Min), eft(&inst, TieBreak::Min));
/// ```
///
/// # Panics
/// Panics if any task carries a real processing-set restriction — FIFO's
/// central queue has no notion of eligibility (see module docs).
pub fn fifo(inst: &Instance, policy: TieBreak) -> Schedule {
    fifo_stream(InstanceStream::new(inst), policy, &mut NoopRecorder)
}

/// Runs FIFO over an arbitrary unrestricted [`ArrivalStream`] — the
/// canonical entry point. The central-queue event loop
/// ([`engine::run_fifo`]) pulls arrivals lazily, so memory is bounded by
/// the machines plus the live queue, never the stream length. Unlike
/// the immediate-dispatch trace, the FIFO event loop knows transition
/// times exactly, so `rec` sees *actual* busy/idle transitions: a
/// machine goes busy when it pulls a task and idle at every completion
/// (even when it re-fills in the same instant — the pair shares a
/// timestamp and still alternates). Task sequence numbers are arrival
/// ordinals (instance `TaskId`s when replaying an instance).
///
/// # Panics
/// Panics if any arrival carries a real processing-set restriction —
/// FIFO's central queue has no notion of eligibility (see module docs).
pub fn fifo_stream<S: ArrivalStream, R: Recorder>(
    stream: S,
    policy: TieBreak,
    rec: &mut R,
) -> Schedule {
    engine::fifo_schedule(stream, policy, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eft::eft;
    use flowsched_core::instance::InstanceBuilder;
    use flowsched_core::machine::MachineId;
    use flowsched_core::procset::ProcSet;
    use flowsched_core::task::{Task, TaskId};

    #[test]
    fn single_machine_fifo_is_release_order() {
        let mut b = InstanceBuilder::new(1);
        b.push_unrestricted(Task::new(0.0, 2.0));
        b.push_unrestricted(Task::new(0.5, 1.0));
        b.push_unrestricted(Task::new(1.0, 1.0));
        let inst = b.build().unwrap();
        let s = fifo(&inst, TieBreak::Min);
        s.validate(&inst).unwrap();
        assert_eq!(s.start(TaskId(0)), 0.0);
        assert_eq!(s.start(TaskId(1)), 2.0);
        assert_eq!(s.start(TaskId(2)), 3.0);
    }

    #[test]
    fn tasks_wait_in_central_queue() {
        // 3 simultaneous tasks, 2 machines: third waits for first finisher.
        let mut b = InstanceBuilder::new(2);
        b.push_unrestricted(Task::new(0.0, 2.0));
        b.push_unrestricted(Task::new(0.0, 1.0));
        b.push_unrestricted(Task::new(0.0, 1.0));
        let inst = b.build().unwrap();
        let s = fifo(&inst, TieBreak::Min);
        s.validate(&inst).unwrap();
        // Task 2 (p=1) finishes first at t=1 on M2; task 3 starts there.
        assert_eq!(s.start(TaskId(2)), 1.0);
        assert_eq!(s.machine(TaskId(2)), MachineId(1));
        assert_eq!(s.fmax(&inst), 2.0);
    }

    #[test]
    fn proposition_1_fifo_equals_eft_on_deterministic_policies() {
        // Structure-free instances: FIFO and EFT must produce identical
        // schedules under the same tie-break (Proposition 1).
        for seed_shift in 0..5u64 {
            let mut b = InstanceBuilder::new(4);
            // A deterministic but irregular stream of tasks.
            for i in 0..60u64 {
                let x = flowsched_stats::rng::splitmix64(i + 1000 * seed_shift);
                let release = (x % 40) as f64 * 0.5;
                let ptime = 0.5 + ((x >> 8) % 8) as f64 * 0.25;
                b.push_unrestricted(Task::new(release, ptime));
            }
            let inst = b.build().unwrap();
            for tb in [TieBreak::Min, TieBreak::Max, TieBreak::Rand { seed: 42 }] {
                let sf = fifo(&inst, tb);
                let se = eft(&inst, tb);
                sf.validate(&inst).unwrap();
                se.validate(&inst).unwrap();
                assert_eq!(
                    sf, se,
                    "Proposition 1 violated for {tb} (shift {seed_shift})"
                );
            }
        }
    }

    #[test]
    fn fifo_never_idles_with_waiting_work() {
        let mut b = InstanceBuilder::new(2);
        for i in 0..10 {
            b.push_unrestricted(Task::new(i as f64 * 0.1, 3.0));
        }
        let inst = b.build().unwrap();
        let s = fifo(&inst, TieBreak::Min);
        s.validate(&inst).unwrap();
        // 10 tasks × 3.0 on 2 machines: last completion ≥ 15; and no
        // machine should idle once the queue is saturated, so makespan is
        // close to the work bound.
        assert!(s.makespan(&inst) <= 16.0);
    }

    #[test]
    #[should_panic(expected = "unrestricted")]
    fn restricted_instance_rejected() {
        let mut b = InstanceBuilder::new(2);
        b.push_unit(0.0, ProcSet::singleton(0));
        let inst = b.build().unwrap();
        let _ = fifo(&inst, TieBreak::Min);
    }

    #[test]
    fn recorded_fifo_matches_plain_fifo_and_counts_real_transitions() {
        use flowsched_obs::{Counter, MemoryRecorder};
        let mut b = InstanceBuilder::new(2);
        b.push_unrestricted(Task::new(0.0, 2.0));
        b.push_unrestricted(Task::new(0.0, 1.0));
        b.push_unrestricted(Task::new(0.0, 1.0));
        let inst = b.build().unwrap();
        let mut rec = MemoryRecorder::with_defaults(2);
        let recorded = fifo_stream(InstanceStream::new(&inst), TieBreak::Min, &mut rec);
        assert_eq!(recorded, fifo(&inst, TieBreak::Min));
        assert_eq!(rec.counters().get(Counter::TasksArrived), 3);
        assert_eq!(rec.counters().get(Counter::TasksDispatched), 3);
        // FIFO emits every actual completion as a busy→idle transition.
        assert_eq!(rec.counters().get(Counter::MachineIdleTransitions), 3);
        assert_eq!(rec.counters().get(Counter::MachineBusyTransitions), 3);
        assert_eq!(rec.makespan_seen(), 2.0);
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let inst = Instance::unrestricted(3, vec![]).unwrap();
        let s = fifo(&inst, TieBreak::Min);
        assert!(s.is_empty());
    }
}
