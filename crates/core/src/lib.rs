//! # flowsched-core
//!
//! Core model types for online scheduling with processing set restrictions,
//! following the model of Canon, Dugois and Marchal, *"Bounding the Flow Time
//! in Online Scheduling with Structured Processing Sets"* (INRIA RR-9446,
//! 2022).
//!
//! The problem studied is `P | online-rᵢ, Mᵢ | Fmax`: a set of `n` tasks
//! `T₁, …, Tₙ` must be scheduled on `m` identical machines `M₁, …, Mₘ`.
//! Each task `Tᵢ` has a release time `rᵢ ≥ 0`, a processing time `pᵢ > 0`,
//! and a *processing set* `Mᵢ ⊆ M` of machines allowed to run it.
//! Preemption is forbidden and a machine runs one task at a time. The
//! objective is the *maximum flow time* `Fmax = maxᵢ (Cᵢ − rᵢ)` where `Cᵢ`
//! is the completion time of `Tᵢ`.
//!
//! This crate provides:
//!
//! - [`Task`], [`Instance`]: the input model (tasks sorted by release time,
//!   as the paper assumes `i < j ⇒ rᵢ ≤ rⱼ`).
//! - [`ProcSet`]: a processing set over machine indices, with interval and
//!   circular-interval detection.
//! - [`ProcSetRef`]: compact borrowed views of processing sets (interval,
//!   ring segment, prefix, explicit slice) — what arrival streams lend so
//!   structured workloads never materialize per-task machine vectors.
//! - [`structure`]: predicates and classification for the structured
//!   families of the paper (inclusive ⊂ nested ⊂ interval, disjoint ⊂
//!   nested — Figure 1 of the paper).
//! - [`Schedule`]: an assignment of tasks to `(machine, start time)` pairs
//!   with full validity checking and flow-time metrics.
//! - [`profile`]: the *schedule profile* `w_t(j)` (waiting work per machine)
//!   used throughout the proof of the paper's Theorem 8.
//! - [`stream`]: the lazy [`ArrivalStream`] contract — tasks revealed one
//!   release at a time, the genuinely online view the engines consume.
//! - [`shard`]: contiguous machine-ownership partitions ([`ShardPlan`])
//!   that the structured families induce, the routing contract of the
//!   parallel sharded engine.
//! - [`fault`]: deterministic fault injection — [`FaultPlan`] outage /
//!   speed / latency traces and the [`FaultyStream`] adapter that rewrites
//!   arrivals against the currently-alive machine set.
//! - [`gantt`]: ASCII rendering of schedules, used to regenerate the
//!   paper's Figure 3.
//! - [`io`]: validated JSON (de)serialization of instances and schedules.

pub mod compact;
pub mod error;
pub mod fault;
pub mod gantt;
pub mod instance;
pub mod io;
pub mod machine;
pub mod procset;
pub mod profile;
pub mod schedule;
pub mod shard;
pub mod stream;
pub mod structure;
pub mod task;
pub mod time;

pub use compact::{CompactProcSet, ProcSetRef, ProcSetRefIter};
pub use error::CoreError;
pub use fault::{FaultEvent, FaultEventKind, FaultPlan, FaultyStream, MachineFaults, Outage};
pub use instance::{Instance, InstanceBuilder};
pub use io::{instance_from_json, instance_to_json, schedule_from_json, schedule_to_json};
pub use machine::MachineId;
pub use procset::ProcSet;
pub use schedule::{Assignment, Schedule};
pub use shard::{ShardPlan, DEFAULT_MAX_SHARDS};
pub use stream::{collect_stream, ArrivalStream, FnStream, InstanceStream};
pub use structure::{
    ProcSetStructure, StructureClassifier, StructureReport, CLASSIFIER_DISTINCT_CAP,
};
pub use task::{Task, TaskId};
pub use time::Time;

/// Convenience prelude re-exporting the most used types.
pub mod prelude {
    pub use crate::compact::ProcSetRef;
    pub use crate::instance::{Instance, InstanceBuilder};
    pub use crate::machine::MachineId;
    pub use crate::procset::ProcSet;
    pub use crate::schedule::{Assignment, Schedule};
    pub use crate::stream::{ArrivalStream, InstanceStream};
    pub use crate::structure::ProcSetStructure;
    pub use crate::task::{Task, TaskId};
    pub use crate::time::Time;
}
