//! Fault injection: deterministic machine failure plans and the
//! [`FaultyStream`] arrival adapter.
//!
//! The paper proves its guarantees (Prop. 1, Th. 6 / Cor. 1) for perfect,
//! static machines. The motivating key-value-store deployment has
//! replicas that crash, recover, and degrade — which changes `Mᵢ` under
//! the scheduler. This module models that as a *trace-driven* fault
//! layer: a [`FaultPlan`] fixes, ahead of time and deterministically,
//! each machine's outage intervals `[down, up)`, a per-machine speed
//! factor in `(0, 1]`, and a constant dispatcher→machine dispatch
//! latency. Determinism is the point — the same plan and the same
//! arrival stream reproduce the same faulty schedule bit for bit, across
//! thread counts, which is what makes the fault layer testable.
//!
//! The injection itself is a stream adapter, not a sim fork:
//! [`FaultyStream`] wraps any [`ArrivalStream`] and
//!
//! * shifts every release by the dispatch latency,
//! * stretches every processing time by the slowest alive member of the
//!   task's (rewritten) processing set,
//! * rewrites each arrival's [`ProcSetRef`] against the machines alive
//!   at its (shifted) release, and
//! * re-queues tasks stranded by a crash (no member alive) at the
//!   earliest instant a member recovers, merged back in arrival order.
//!
//! Downstream, availability-aware dispatchers (see
//! `flowsched_algos::faulty`) consult the same plan so no task ever
//! *starts* — or runs — inside an outage window: service must fit in a
//! single alive window (a checkpoint-free model; a crash never kills an
//! in-flight task because the dispatcher schedules around the outage it
//! already knows about).
//!
//! A plan with no outages, all speeds `1.0`, and zero latency is
//! *fault-free*: [`FaultyStream`] then forwards the inner stream
//! untouched (zero-copy), which is what makes the "fault-free plan ≡
//! existing engine, bitwise" property in `tests/fault_injection.rs`
//! possible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::compact::{CompactProcSet, ProcSetRef};
use crate::shard::ShardPlan;
use crate::stream::ArrivalStream;
use crate::structure::StructureReport;
use crate::task::Task;
use crate::time::Time;

/// A closed-open unavailability interval `[down, up)` of one machine.
///
/// The machine is dead at `down` and alive again exactly at `up`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Instant the machine crashes (inclusive).
    pub down: Time,
    /// Instant the machine recovers (exclusive end of the outage).
    pub up: Time,
}

impl Outage {
    /// Creates an outage, panicking unless `0 ≤ down < up` and both are
    /// finite.
    pub fn new(down: Time, up: Time) -> Self {
        assert!(
            down.is_finite() && up.is_finite() && down >= 0.0 && down < up,
            "outage requires 0 <= down < up (got [{down}, {up}))"
        );
        Outage { down, up }
    }

    /// Whether `t` falls inside the outage (`down ≤ t < up`).
    #[inline]
    pub fn covers(&self, t: Time) -> bool {
        self.down <= t && t < self.up
    }
}

/// Per-machine fault state: sorted disjoint outages plus a speed factor.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineFaults {
    /// Outage intervals, sorted by `down`, pairwise disjoint
    /// (`outages[i].up ≤ outages[i+1].down`).
    outages: Vec<Outage>,
    /// Relative speed in `(0, 1]`; a task of processing time `p` takes
    /// `p / speed` wall-clock time on this machine.
    speed: f64,
}

impl MachineFaults {
    /// A healthy machine: no outages, full speed.
    pub fn healthy() -> Self {
        MachineFaults {
            outages: Vec::new(),
            speed: 1.0,
        }
    }

    /// The machine's outage intervals, sorted and disjoint.
    #[inline]
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The machine's speed factor in `(0, 1]`.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.speed
    }
}

/// The kind of a machine lifecycle transition in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// The machine goes down.
    Crash,
    /// The machine comes back up.
    Recover,
}

/// One machine lifecycle transition, for recorder/trace wiring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Instant of the transition.
    pub at: Time,
    /// Machine index.
    pub machine: usize,
    /// Crash or recover.
    pub kind: FaultEventKind,
}

/// A deterministic, ahead-of-time fault trace for `m` machines.
///
/// Construct with [`FaultPlan::none`] and grow via [`with_outage`],
/// [`with_speed`], and [`with_latency`] (each validates its invariant),
/// or generate seeded random plans with
/// `flowsched_workloads::faults::random_fault_plan`.
///
/// [`with_outage`]: FaultPlan::with_outage
/// [`with_speed`]: FaultPlan::with_speed
/// [`with_latency`]: FaultPlan::with_latency
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    machines: Vec<MachineFaults>,
    dispatch_latency: Time,
}

impl FaultPlan {
    /// The fault-free plan for `m` machines: no outages, unit speeds,
    /// zero dispatch latency.
    pub fn none(m: usize) -> Self {
        FaultPlan {
            machines: vec![MachineFaults::healthy(); m],
            dispatch_latency: 0.0,
        }
    }

    /// Adds the outage `[down, up)` to machine `j` (builder style).
    ///
    /// Panics if `j` is out of range or the interval overlaps an
    /// existing outage of `j` (touching endpoints are allowed — the
    /// machine is then down contiguously).
    pub fn with_outage(mut self, j: usize, down: Time, up: Time) -> Self {
        let o = Outage::new(down, up);
        let list = &mut self.machines[j].outages;
        let pos = list.partition_point(|e| e.down < o.down);
        if pos > 0 {
            assert!(
                list[pos - 1].up <= o.down,
                "outage [{down}, {up}) of machine {j} overlaps [{}, {})",
                list[pos - 1].down,
                list[pos - 1].up
            );
        }
        if pos < list.len() {
            assert!(
                o.up <= list[pos].down,
                "outage [{down}, {up}) of machine {j} overlaps [{}, {})",
                list[pos].down,
                list[pos].up
            );
        }
        list.insert(pos, o);
        self
    }

    /// Sets machine `j`'s speed factor (builder style). Panics unless
    /// `0 < speed ≤ 1`.
    pub fn with_speed(mut self, j: usize, speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0 && speed <= 1.0,
            "speed factor must be in (0, 1] (got {speed})"
        );
        self.machines[j].speed = speed;
        self
    }

    /// Sets the constant dispatcher→machine dispatch latency (builder
    /// style). Panics unless `latency ≥ 0` and finite.
    pub fn with_latency(mut self, latency: Time) -> Self {
        assert!(
            latency.is_finite() && latency >= 0.0,
            "dispatch latency must be finite and >= 0 (got {latency})"
        );
        self.dispatch_latency = latency;
        self
    }

    /// Number of machines the plan covers.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines.len()
    }

    /// Per-machine fault state of machine `j`.
    #[inline]
    pub fn faults(&self, j: usize) -> &MachineFaults {
        &self.machines[j]
    }

    /// Machine `j`'s speed factor in `(0, 1]`.
    #[inline]
    pub fn speed(&self, j: usize) -> f64 {
        self.machines[j].speed
    }

    /// The constant dispatcher→machine dispatch latency.
    #[inline]
    pub fn latency(&self) -> Time {
        self.dispatch_latency
    }

    /// `true` when the plan changes nothing: no outages, all speeds
    /// `1.0`, zero latency. [`FaultyStream`] forwards the inner stream
    /// untouched for such plans.
    pub fn is_fault_free(&self) -> bool {
        self.dispatch_latency == 0.0
            && self
                .machines
                .iter()
                .all(|f| f.outages.is_empty() && f.speed == 1.0)
    }

    /// Whether machine `j` is alive at instant `t` (outages are
    /// closed-open: dead at `down`, alive at `up`).
    #[inline]
    pub fn is_alive(&self, j: usize, t: Time) -> bool {
        let list = &self.machines[j].outages;
        let pos = list.partition_point(|o| o.down <= t);
        pos == 0 || list[pos - 1].up <= t
    }

    /// The earliest instant `≥ t` at which machine `j` is alive (`t`
    /// itself when alive, else the end of the outage chain covering it).
    ///
    /// [`with_outage`](FaultPlan::with_outage) permits exactly-touching
    /// outages (`[a, b) + [b, c)` = contiguously down), so reaching the
    /// end of the covering outage is not enough: the scan keeps skipping
    /// while the next outage begins exactly where the previous one ended.
    /// The returned instant always satisfies `is_alive`.
    #[inline]
    pub fn next_alive(&self, j: usize, t: Time) -> Time {
        let list = &self.machines[j].outages;
        let mut pos = list.partition_point(|o| o.down <= t);
        if pos == 0 || list[pos - 1].up <= t {
            return t;
        }
        let mut candidate = list[pos - 1].up;
        while pos < list.len() && list[pos].down <= candidate {
            candidate = list[pos].up;
            pos += 1;
        }
        candidate
    }

    /// The earliest start `s ≥ t` such that machine `j` is alive for
    /// the whole service window `[s, s + duration)` — the
    /// checkpoint-free fit used by availability-aware dispatchers.
    ///
    /// Always terminates with a finite answer: the outage list is
    /// finite, so the machine is alive forever after its last outage.
    pub fn earliest_fit(&self, j: usize, t: Time, duration: Time) -> Time {
        let list = &self.machines[j].outages;
        let mut s = self.next_alive(j, t);
        let mut pos = list.partition_point(|o| o.down <= s);
        while pos < list.len() && list[pos].down < s + duration {
            // Advance past the blocking outage and any chain of
            // exactly-touching outages after it, so `s` is always a
            // truly alive instant (even for zero durations).
            s = list[pos].up;
            pos += 1;
            while pos < list.len() && list[pos].down <= s {
                s = list[pos].up;
                pos += 1;
            }
        }
        s
    }

    /// The earliest instant `≥ t` at which *some* member of `set` is
    /// alive, or `None` for an empty set. Used to re-queue stranded
    /// tasks: at the returned instant the restriction of `set` to alive
    /// machines is guaranteed non-empty.
    pub fn next_alive_in(&self, set: ProcSetRef<'_>, t: Time) -> Option<Time> {
        set.iter()
            .map(|j| self.next_alive(j, t))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The minimum speed factor over the members of `set` (the
    /// conservative stretch applied to a task that may land on any of
    /// them), or `None` for an empty set.
    pub fn min_speed_in(&self, set: ProcSetRef<'_>) -> Option<f64> {
        set.iter()
            .map(|j| self.machines[j].speed)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Restricts `set` to the machines alive at `t`.
    ///
    /// Returns the original view unchanged when every member is alive
    /// (the common fast path, preserving compact shapes); otherwise
    /// fills `scratch` with the alive members in ascending order and
    /// returns an [`ProcSetRef::Explicit`] view of it — possibly empty,
    /// meaning the task is stranded.
    pub fn restrict_alive<'a>(
        &self,
        set: ProcSetRef<'a>,
        t: Time,
        scratch: &'a mut Vec<usize>,
    ) -> ProcSetRef<'a> {
        if set.iter().all(|j| self.is_alive(j, t)) {
            return set;
        }
        scratch.clear();
        scratch.extend(set.iter().filter(|&j| self.is_alive(j, t)));
        ProcSetRef::Explicit(scratch)
    }

    /// All crash/recover transitions of the plan, sorted by time (ties
    /// broken by machine index, recover before crash — so exactly-
    /// touching outages `[a, b) + [b, c)` replay as a well-nested
    /// `recover@b, crash@b` and span pairing stays balanced). Feed these
    /// to a recorder up front so outage spans appear in exported traces.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut evs = Vec::new();
        for (j, f) in self.machines.iter().enumerate() {
            for o in &f.outages {
                evs.push(FaultEvent {
                    at: o.down,
                    machine: j,
                    kind: FaultEventKind::Crash,
                });
                evs.push(FaultEvent {
                    at: o.up,
                    machine: j,
                    kind: FaultEventKind::Recover,
                });
            }
        }
        evs.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.machine.cmp(&b.machine))
                .then((a.kind == FaultEventKind::Crash).cmp(&(b.kind == FaultEventKind::Crash)))
        });
        evs
    }

    /// The sub-plan covering machines `[start, start + len)`, re-indexed
    /// to local indices `0..len`. Dispatch latency is preserved. Used by
    /// the sharded engine to hand each shard its own machine block.
    pub fn slice(&self, start: usize, len: usize) -> FaultPlan {
        FaultPlan {
            machines: self.machines[start..start + len].to_vec(),
            dispatch_latency: self.dispatch_latency,
        }
    }
}

/// A stranded task parked until a member of its set recovers.
#[derive(Debug)]
struct Deferred {
    /// Re-entry instant: earliest time some member of `set` is alive.
    ready: Time,
    /// Original arrival rank — ties at `ready` re-enter in this order.
    seq: u64,
    /// Original (unstretched) processing time.
    ptime: Time,
    /// The task's *original* processing set (restriction happens again
    /// at re-entry).
    set: CompactProcSet,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.ready == other.ready && self.seq == other.seq
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (ready, seq) on top.
        other
            .ready
            .total_cmp(&self.ready)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Wraps an [`ArrivalStream`], injecting the faults of a [`FaultPlan`].
///
/// For fault-free plans every call forwards to the inner stream
/// untouched. Otherwise each arrival's release is shifted by the
/// dispatch latency, its set is restricted to the machines alive at the
/// shifted release, and its processing time is stretched by the slowest
/// alive member's speed factor. Arrivals whose whole set is dead are
/// deferred to the earliest recovery of any member and merged back in
/// `(release, arrival rank)` order, so displaced tasks re-enter under
/// the engine's existing arrival-order convention. Releases remain
/// non-decreasing (the engines assert this).
pub struct FaultyStream<'p, S> {
    inner: S,
    plan: &'p FaultPlan,
    fault_free: bool,
    /// Next inner arrival (already latency-shifted), not yet emitted.
    lookahead: Option<(Task, CompactProcSet)>,
    inner_done: bool,
    deferred: BinaryHeap<Deferred>,
    next_seq: u64,
    /// Owned copy of the set being emitted this pull (lent to the caller).
    current: CompactProcSet,
    /// Alive members when the original set is partially dead.
    scratch: Vec<usize>,
}

impl<'p, S: ArrivalStream> FaultyStream<'p, S> {
    /// Wraps `inner`, injecting the faults of `plan`. Panics unless the
    /// plan covers exactly the stream's machines.
    pub fn new(inner: S, plan: &'p FaultPlan) -> Self {
        assert_eq!(
            inner.machines(),
            plan.machines(),
            "fault plan covers {} machines but the stream has {}",
            plan.machines(),
            inner.machines()
        );
        FaultyStream {
            fault_free: plan.is_fault_free(),
            inner,
            plan,
            lookahead: None,
            inner_done: false,
            deferred: BinaryHeap::new(),
            next_seq: 0,
            current: CompactProcSet::Prefix { len: 1 },
            scratch: Vec::new(),
        }
    }

    /// Pulls the next inner arrival into `lookahead` (latency-shifted).
    fn refill(&mut self) {
        if self.lookahead.is_none() && !self.inner_done {
            match self.inner.next_arrival() {
                Some((t, set)) => {
                    let shifted = Task::new(t.release + self.plan.dispatch_latency, t.ptime);
                    self.lookahead = Some((shifted, CompactProcSet::from(set)));
                }
                None => self.inner_done = true,
            }
        }
    }
}

impl<S: ArrivalStream> ArrivalStream for FaultyStream<'_, S> {
    fn machines(&self) -> usize {
        self.inner.machines()
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.fault_free {
            return self.inner.next_arrival();
        }
        loop {
            self.refill();
            // Merge deferred re-entries with fresh arrivals in
            // (release, arrival rank) order. A deferred task always has
            // a smaller rank than any fresh one (it was pulled from the
            // inner stream earlier), so deferred-first on release ties
            // is exactly arrival order.
            let take_deferred = match (self.deferred.peek(), &self.lookahead) {
                (Some(d), Some((t, _))) => d.ready <= t.release,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let (task, seq) = if take_deferred {
                let d = self.deferred.pop().expect("peeked above");
                self.current = d.set;
                (Task::new(d.ready, d.ptime), d.seq)
            } else {
                let (t, set) = self.lookahead.take().expect("peeked above");
                let seq = self.next_seq;
                self.next_seq += 1;
                self.current = set;
                (t, seq)
            };
            // Restrict to the machines alive at the (shifted) release.
            let all_alive = {
                let plan = self.plan;
                let view = self.current.as_view();
                if view.iter().all(|j| plan.is_alive(j, task.release)) {
                    true
                } else {
                    self.scratch.clear();
                    self.scratch
                        .extend(view.iter().filter(|&j| plan.is_alive(j, task.release)));
                    false
                }
            };
            if !all_alive && self.scratch.is_empty() {
                // Stranded: every member is down. Park until the first
                // recovery of any member; at that instant the
                // restriction is non-empty by construction, so a
                // deferred task is never re-deferred.
                let ready = self
                    .plan
                    .next_alive_in(self.current.as_view(), task.release)
                    .expect("processing sets are non-empty");
                let set = std::mem::replace(&mut self.current, CompactProcSet::Prefix { len: 1 });
                self.deferred.push(Deferred {
                    ready,
                    seq,
                    ptime: task.ptime,
                    set,
                });
                continue;
            }
            let view = if all_alive {
                self.current.as_view()
            } else {
                ProcSetRef::Explicit(&self.scratch)
            };
            let speed = self
                .plan
                .min_speed_in(view)
                .expect("restricted set is non-empty");
            let stretched = Task::new(task.release, task.ptime / speed);
            return Some((stretched, view));
        }
    }

    fn len_hint(&self) -> Option<usize> {
        // Nothing is ever dropped: deferred and lookahead tasks are all
        // eventually emitted.
        self.inner
            .len_hint()
            .map(|n| n + self.deferred.len() + usize::from(self.lookahead.is_some()))
    }

    fn structure_hint(&self) -> Option<StructureReport> {
        // Restriction to alive machines breaks the inner stream's
        // family promises (an interval with a dead middle machine is no
        // longer an interval), so a faulty stream advertises nothing.
        if self.fault_free {
            self.inner.structure_hint()
        } else {
            None
        }
    }

    fn shard_plan(&self, max_shards: usize) -> ShardPlan {
        // Restricted sets are subsets of the originals, so any plan
        // whose shard hulls cover the inner stream's sets also covers
        // the faulty stream's.
        self.inner.shard_plan(max_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procset::ProcSet;
    use crate::stream::FnStream;

    fn plan3() -> FaultPlan {
        FaultPlan::none(3)
            .with_outage(1, 2.0, 5.0)
            .with_outage(1, 8.0, 9.0)
            .with_speed(2, 0.5)
    }

    #[test]
    fn alive_queries_respect_closed_open_intervals() {
        let p = plan3();
        assert!(p.is_alive(1, 1.9));
        assert!(!p.is_alive(1, 2.0));
        assert!(!p.is_alive(1, 4.9));
        assert!(p.is_alive(1, 5.0));
        assert!(p.is_alive(0, 2.0));
        assert_eq!(p.next_alive(1, 3.0), 5.0);
        assert_eq!(p.next_alive(1, 5.0), 5.0);
        assert_eq!(p.next_alive(1, 8.5), 9.0);
    }

    #[test]
    fn earliest_fit_skips_windows_too_small() {
        let p = FaultPlan::none(1)
            .with_outage(0, 2.0, 3.0)
            .with_outage(0, 4.0, 10.0);
        // [3, 4) is a 1-wide alive window: a 1-long task fits at 3…
        assert_eq!(p.earliest_fit(0, 0.0, 1.0), 0.0);
        assert_eq!(p.earliest_fit(0, 2.5, 1.0), 3.0);
        // …but a 2-long task must wait for the recovery at 10.
        assert_eq!(p.earliest_fit(0, 2.5, 2.0), 10.0);
        assert_eq!(p.earliest_fit(0, 11.0, 100.0), 11.0);
    }

    #[test]
    fn touching_outages_are_contiguously_down() {
        // [1,2) + [2,3) + [3,4): down through [1,4), alive exactly at 4
        // (insertion order shuffled to exercise the sorted insert).
        let p = FaultPlan::none(1)
            .with_outage(0, 2.0, 3.0)
            .with_outage(0, 1.0, 2.0)
            .with_outage(0, 3.0, 4.0);
        assert!(!p.is_alive(0, 2.0));
        assert!(!p.is_alive(0, 3.0));
        assert!(p.is_alive(0, 4.0));
        for t in [1.0, 1.5, 2.0, 2.5, 3.0, 3.9] {
            let s = p.next_alive(0, t);
            assert_eq!(s, 4.0, "next_alive(0, {t})");
            assert!(
                p.is_alive(0, s),
                "next_alive(0, {t}) returned a dead instant"
            );
        }
        // earliest_fit must clear the whole chain, not stop at a shared
        // endpoint…
        assert_eq!(p.earliest_fit(0, 1.5, 0.5), 4.0);
        assert_eq!(p.earliest_fit(0, 0.5, 1.0), 4.0);
        // …while a service window ending exactly at the chain still fits.
        assert_eq!(p.earliest_fit(0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn events_order_recover_before_crash_on_ties() {
        let evs = FaultPlan::none(1)
            .with_outage(0, 1.0, 2.0)
            .with_outage(0, 2.0, 3.0)
            .events();
        let kinds: Vec<_> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultEventKind::Crash,
                FaultEventKind::Recover,
                FaultEventKind::Crash,
                FaultEventKind::Recover,
            ],
            "touching outages must replay well-nested"
        );
        assert_eq!(evs[1].at, 2.0);
        assert_eq!(evs[2].at, 2.0);
    }

    #[test]
    fn deferred_task_skips_touching_outage_chain() {
        // Machine 0 is down over [0,2)+[2,5): the stranded task re-enters
        // at 5, never at the dead shared endpoint 2 (which would
        // re-defer it).
        let plan = FaultPlan::none(1)
            .with_outage(0, 0.0, 2.0)
            .with_outage(0, 2.0, 5.0);
        let tasks = vec![(Task::new(0.0, 1.0), ProcSet::singleton(0))];
        let mut it = tasks.into_iter();
        let mut s = FaultyStream::new(FnStream::new(1, move || it.next()), &plan);
        let (t, set) = s.next_arrival().unwrap();
        assert_eq!(t.release, 5.0);
        assert!(plan.is_alive(0, t.release));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0]);
        assert!(s.next_arrival().is_none());
    }

    #[test]
    fn overlapping_outages_panic() {
        let r = std::panic::catch_unwind(|| {
            let _ = FaultPlan::none(1)
                .with_outage(0, 2.0, 5.0)
                .with_outage(0, 4.0, 6.0);
        });
        assert!(r.is_err());
    }

    #[test]
    fn fault_free_detection() {
        assert!(FaultPlan::none(4).is_fault_free());
        assert!(!FaultPlan::none(4).with_speed(0, 0.9).is_fault_free());
        assert!(!FaultPlan::none(4).with_latency(0.1).is_fault_free());
        assert!(!FaultPlan::none(4).with_outage(2, 1.0, 2.0).is_fault_free());
    }

    #[test]
    fn restrict_alive_keeps_view_when_all_alive() {
        let p = plan3();
        let mut scratch = Vec::new();
        let set = ProcSetRef::interval(0, 2);
        let restricted = p.restrict_alive(set, 1.0, &mut scratch);
        assert!(matches!(restricted, ProcSetRef::Interval { .. }));
        let restricted = p.restrict_alive(set, 3.0, &mut scratch);
        assert_eq!(restricted.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn events_are_time_sorted_pairs() {
        let evs = plan3().events();
        assert_eq!(evs.len(), 4);
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(evs[0].kind, FaultEventKind::Crash);
        assert_eq!(evs[1].kind, FaultEventKind::Recover);
    }

    #[test]
    fn slice_reindexes_machines() {
        let p = plan3();
        let s = p.slice(1, 2);
        assert_eq!(s.machines(), 2);
        assert!(!s.is_alive(0, 3.0)); // global machine 1
        assert_eq!(s.speed(1), 0.5); // global machine 2
    }

    fn three_task_stream() -> impl ArrivalStream {
        let tasks = vec![
            (Task::new(0.0, 1.0), ProcSet::new(vec![0, 1])),
            (Task::new(2.5, 1.0), ProcSet::new(vec![1])),
            (Task::new(3.0, 1.0), ProcSet::new(vec![0, 2])),
        ];
        let mut it = tasks.into_iter();
        FnStream::new(3, move || it.next())
    }

    #[test]
    fn faulty_stream_defers_stranded_tasks_in_arrival_order() {
        let plan = plan3();
        let mut s = FaultyStream::new(three_task_stream(), &plan);
        // Task 0 at 0.0 on {0,1}: both alive.
        let (t, set) = s.next_arrival().unwrap();
        assert_eq!(t.release, 0.0);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 1]);
        // Task 1 at 2.5 on {1}: machine 1 is down [2,5) → deferred to 5.
        // Task 2 at 3.0 on {0,2}: alive, stretched by machine 2's 0.5.
        let (t, set) = s.next_arrival().unwrap();
        assert_eq!(t.release, 3.0);
        assert_eq!(t.ptime, 2.0);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 2]);
        // Deferred task re-enters at the recovery instant.
        let (t, set) = s.next_arrival().unwrap();
        assert_eq!(t.release, 5.0);
        assert_eq!(t.ptime, 1.0);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1]);
        assert!(s.next_arrival().is_none());
    }

    #[test]
    fn faulty_stream_shifts_releases_by_latency() {
        let plan = FaultPlan::none(3).with_latency(0.75);
        let mut s = FaultyStream::new(three_task_stream(), &plan);
        let mut releases = Vec::new();
        while let Some((t, _)) = s.next_arrival() {
            releases.push(t.release);
        }
        assert_eq!(releases, vec![0.75, 3.25, 3.75]);
    }

    #[test]
    fn fault_free_plan_forwards_inner_stream() {
        let plan = FaultPlan::none(3);
        let mut faulty = FaultyStream::new(three_task_stream(), &plan);
        let mut plain = three_task_stream();
        loop {
            match (faulty.next_arrival(), plain.next_arrival()) {
                (Some((a, sa)), Some((b, sb))) => {
                    assert_eq!(a, b);
                    assert!(sa.iter().eq(sb.iter()));
                }
                (None, None) => break,
                _ => panic!("stream lengths differ"),
            }
        }
    }
}
