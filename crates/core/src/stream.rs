//! Lazy arrival streams — the online view of an instance.
//!
//! The paper's setting is genuinely online (`P | online-rᵢ, Mᵢ | Fmax`):
//! tasks are revealed only at their release times. [`ArrivalStream`] is
//! the pull-based contract for that model — a source of `(Task, ProcSet)`
//! pairs in non-decreasing release order, consumed one arrival at a time.
//! Engines that drive a stream (see `flowsched_algos::engine`) hold state
//! bounded by the number of machines plus a live window, never by the
//! total number of tasks, which is what unlocks million-task
//! constant-memory runs.
//!
//! The trait is *lending*: [`next_arrival`](ArrivalStream::next_arrival)
//! returns the processing set as a borrowed [`ProcSetRef`] view, valid
//! until the next pull. Structured generators (interval, ring, prefix
//! sets) describe the set in O(1) without materializing members at all;
//! fallback generators keep one scratch [`ProcSet`] and lend its view,
//! and the [`InstanceStream`] adapter hands out views straight into the
//! backing [`Instance`], so replaying a materialized instance through a
//! streaming engine costs no per-task allocation.

use crate::compact::ProcSetRef;
use crate::error::CoreError;
use crate::instance::Instance;
use crate::procset::ProcSet;
use crate::shard::ShardPlan;
use crate::structure::{classify, StructureReport};
use crate::task::{Task, TaskId};

/// A pull-based source of task arrivals in non-decreasing release order.
///
/// Implementors must yield tasks with `release` values that never
/// decrease from one pull to the next; engines assert this (it is the
/// online arrival order the whole paper assumes, `i < j ⇒ rᵢ ≤ rⱼ`).
/// The returned set borrow ends at the next call, which lets generators
/// reuse a single scratch set — or lend a compact O(1) shape
/// description — instead of allocating per task.
pub trait ArrivalStream {
    /// Number of machines the arrivals' processing sets refer to.
    fn machines(&self) -> usize;

    /// Pulls the next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)>;

    /// Exact number of arrivals remaining, when the source knows it
    /// (bounded generators and instance adapters do; adaptive adversary
    /// streams may not). Used by streaming folds to size warmup windows.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// What the source knows *a priori* about the structure of every
    /// set it will ever yield (the paper's families — Figure 1), or
    /// `None` when it cannot promise anything. Kernels use this to pick
    /// a dispatch strategy before the first arrival; the hint must hold
    /// for the whole stream, so adaptive sources should stay with the
    /// default.
    fn structure_hint(&self) -> Option<StructureReport> {
        None
    }

    /// A machine partition (at most `max_shards` shards) that every
    /// future arrival's processing set fits inside — the contract the
    /// sharded engine routes by. The default is the always-valid
    /// single-shard plan; sources that know their family decomposes
    /// (disjoint blocks, bounded-hull intervals) override this to
    /// unlock parallel dispatch.
    fn shard_plan(&self, max_shards: usize) -> ShardPlan {
        let _ = max_shards;
        ShardPlan::single(self.machines())
    }
}

/// Forwarding impl so engines can take streams by value while callers
/// keep ownership (`run(&mut stream, …)`).
impl<S: ArrivalStream + ?Sized> ArrivalStream for &mut S {
    fn machines(&self) -> usize {
        (**self).machines()
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        (**self).next_arrival()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }

    fn structure_hint(&self) -> Option<StructureReport> {
        (**self).structure_hint()
    }

    fn shard_plan(&self, max_shards: usize) -> ShardPlan {
        (**self).shard_plan(max_shards)
    }
}

/// Replays a materialized [`Instance`] as an arrival stream.
///
/// This is the backward-compatibility adapter: every batch entry point
/// (`eft(&inst, …)`, `fifo(&inst, …)`, `simulate(&inst, …)`) is now a
/// thin wrapper that wires an `InstanceStream` into the shared engine.
/// Sets are lent straight from the instance (as their compact views) —
/// no clones, no allocation.
#[derive(Debug, Clone)]
pub struct InstanceStream<'a> {
    inst: &'a Instance,
    next: usize,
}

impl<'a> InstanceStream<'a> {
    /// Streams `inst` from its first task.
    pub fn new(inst: &'a Instance) -> Self {
        InstanceStream { inst, next: 0 }
    }
}

impl ArrivalStream for InstanceStream<'_> {
    fn machines(&self) -> usize {
        self.inst.machines()
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        if self.next >= self.inst.len() {
            return None;
        }
        let id = TaskId(self.next);
        self.next += 1;
        Some((self.inst.task(id), self.inst.set(id).compact_view()))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.inst.len() - self.next)
    }

    fn structure_hint(&self) -> Option<StructureReport> {
        // The whole instance is in hand, so the classifier's verdict is
        // exact — and O(total set size), paid once per stream, which the
        // batch wrappers can afford.
        Some(classify(self.inst.sets(), self.inst.machines()))
    }

    fn shard_plan(&self, max_shards: usize) -> ShardPlan {
        // Hull-connected components over the materialized family: valid
        // for any set shapes (an empty-set instance cannot exist, so
        // every hull is well-formed).
        ShardPlan::from_hulls(
            self.inst.machines(),
            self.inst.sets().iter().map(|s| {
                (
                    s.min().expect("instance sets are nonempty"),
                    s.max().unwrap(),
                )
            }),
            max_shards,
        )
    }
}

/// An arrival stream backed by a closure, for ad-hoc generators.
///
/// The closure returns owned `(Task, ProcSet)` pairs; `FnStream` parks
/// the set in its scratch slot and lends it out, satisfying the lending
/// contract without the closure having to manage a buffer.
pub struct FnStream<F> {
    m: usize,
    gen: F,
    scratch: ProcSet,
}

impl<F> FnStream<F>
where
    F: FnMut() -> Option<(Task, ProcSet)>,
{
    /// Wraps `gen` as a stream over `m` machines.
    pub fn new(m: usize, gen: F) -> Self {
        assert!(m > 0, "need at least one machine");
        FnStream {
            m,
            gen,
            scratch: ProcSet::full(1),
        }
    }
}

impl<F> ArrivalStream for FnStream<F>
where
    F: FnMut() -> Option<(Task, ProcSet)>,
{
    fn machines(&self) -> usize {
        self.m
    }

    fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
        let (task, set) = (self.gen)()?;
        self.scratch = set;
        Some((task, self.scratch.compact_view()))
    }
}

/// Drains a stream into a materialized [`Instance`] (clones every set).
///
/// The inverse of [`InstanceStream`] — useful in tests that compare the
/// streaming path against the batch path, and as an escape hatch for
/// analyses that genuinely need random access. This is the O(n)-memory
/// operation the streaming engines exist to avoid; prefer feeding the
/// stream to an engine directly.
pub fn collect_stream<S: ArrivalStream>(mut stream: S) -> Result<Instance, CoreError> {
    let m = stream.machines();
    let mut tasks = Vec::new();
    let mut sets = Vec::new();
    while let Some((task, set)) = stream.next_arrival() {
        tasks.push(task);
        sets.push(set.to_procset());
    }
    Instance::new(m, tasks, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn sample() -> Instance {
        let mut b = InstanceBuilder::new(3);
        b.push(Task::new(0.0, 1.0), ProcSet::full(3));
        b.push(Task::new(0.5, 2.0), ProcSet::singleton(1));
        b.push(Task::new(2.0, 0.25), ProcSet::interval(0, 1));
        b.build().unwrap()
    }

    #[test]
    fn instance_stream_replays_the_instance_in_order() {
        let inst = sample();
        let mut s = InstanceStream::new(&inst);
        assert_eq!(s.machines(), 3);
        assert_eq!(s.len_hint(), Some(3));
        for (id, task, set) in inst.iter() {
            let (t, sref) = s.next_arrival().expect("stream ended early");
            assert_eq!((t.release, t.ptime), (task.release, task.ptime), "{id:?}");
            assert_eq!(sref, set);
        }
        assert!(s.next_arrival().is_none());
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    fn collect_round_trips_through_the_adapter() {
        let inst = sample();
        let back = collect_stream(InstanceStream::new(&inst)).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn fn_stream_lends_the_scratch_set() {
        let mut left = 4;
        let mut s = FnStream::new(2, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some((Task::unit((4 - left) as f64), ProcSet::singleton(left % 2)))
        });
        let mut n = 0;
        let mut last = f64::NEG_INFINITY;
        while let Some((task, set)) = s.next_arrival() {
            assert!(task.release >= last);
            last = task.release;
            assert_eq!(set.len(), 1);
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn instance_stream_hints_reflect_the_family() {
        // Two disjoint blocks {0,1} and {2}: disjoint + interval, and
        // the hull plan cuts between machines 1 and 2.
        let mut b = InstanceBuilder::new(3);
        b.push(Task::new(0.0, 1.0), ProcSet::interval(0, 1));
        b.push(Task::new(1.0, 1.0), ProcSet::singleton(2));
        let inst = b.build().unwrap();
        let s = InstanceStream::new(&inst);
        let hint = s
            .structure_hint()
            .expect("instance streams always classify");
        assert!(hint.disjoint && hint.interval);
        let plan = s.shard_plan(16);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_of(1), 0);
        assert_eq!(plan.shard_of(2), 1);

        // The overlapping sample() family collapses to a single shard,
        // matching the trait default for sources with no knowledge.
        let inst = sample();
        assert!(InstanceStream::new(&inst).shard_plan(16).is_single());
        let mut left = 1;
        let f = FnStream::new(2, move || {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some((Task::unit(0.0), ProcSet::singleton(0)))
        });
        assert!(f.structure_hint().is_none());
        assert!(f.shard_plan(16).is_single());
    }

    #[test]
    fn mut_ref_forwarding_preserves_position() {
        fn pull_one<S: ArrivalStream>(mut s: S) {
            s.next_arrival().unwrap();
        }
        let inst = sample();
        let mut s = InstanceStream::new(&inst);
        pull_one(&mut s);
        assert_eq!(s.len_hint(), Some(2));
    }
}
