//! Processing sets (eligibility constraints).
//!
//! A processing set `Mᵢ ⊆ M` lists the machines allowed to run task `Tᵢ`.
//! In replicated key-value stores, `Mᵢ` is the set of replicas holding the
//! key that `Tᵢ` requests. The paper's structured families (interval,
//! nested, inclusive, disjoint) are predicates over *families* of sets and
//! live in [`crate::structure`]; this module provides the individual-set
//! operations they build on.

use std::fmt;

use crate::compact::ProcSetRef;
use crate::machine::MachineId;

/// A set of machine indices, stored sorted and deduplicated.
///
/// Machine indices are zero-based. Construction enforces the invariant
/// that indices are strictly increasing, so set operations are linear
/// merges.
///
/// ```
/// use flowsched_core::ProcSet;
///
/// let ring = ProcSet::ring_interval(4, 3, 6); // {M5, M6, M1} on a 6-ring
/// assert_eq!(ring.as_slice(), &[0, 4, 5]);
/// assert_eq!(ring.as_ring_interval(6), Some((4, 3)));
/// assert!(ring.contains(5) && !ring.contains(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcSet {
    machines: Vec<usize>,
}

impl ProcSet {
    /// Builds a processing set from arbitrary machine indices
    /// (duplicates are removed, order is normalized).
    ///
    /// Input that is already strictly increasing — the common case from
    /// generators — is taken as-is without the sort/dedup pass.
    pub fn new(mut machines: Vec<usize>) -> Self {
        if !machines.windows(2).all(|w| w[0] < w[1]) {
            machines.sort_unstable();
            machines.dedup();
        }
        ProcSet { machines }
    }

    /// Builds a processing set from indices already sorted strictly
    /// increasing.
    ///
    /// # Panics
    /// Panics in debug builds if the input is not strictly increasing.
    pub fn from_sorted(machines: Vec<usize>) -> Self {
        debug_assert!(
            machines.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly increasing indices"
        );
        ProcSet { machines }
    }

    /// The empty set. Invalid in instances (a task must be runnable
    /// somewhere) but useful as an accumulator.
    pub fn empty() -> Self {
        ProcSet {
            machines: Vec::new(),
        }
    }

    /// The full machine set `{0, …, m−1}` — "no restriction".
    pub fn full(m: usize) -> Self {
        ProcSet {
            machines: (0..m).collect(),
        }
    }

    /// A single machine, as with unreplicated key-value data.
    pub fn singleton(machine: usize) -> Self {
        ProcSet {
            machines: vec![machine],
        }
    }

    /// The contiguous interval `{lo, …, hi}` (inclusive, zero-based).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn interval(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "interval requires lo <= hi, got {lo} > {hi}");
        ProcSet {
            machines: (lo..=hi).collect(),
        }
    }

    /// The *circular* interval of length `len` starting at `start` on a
    /// ring of `m` machines: `{start, start+1, …} mod m`. This is the
    /// paper's overlapping replication strategy `I_k(u)` (Section 7.2),
    /// mimicking Dynamo/Cassandra ring placement.
    ///
    /// # Panics
    /// Panics if `len == 0`, `len > m` or `start >= m`.
    pub fn ring_interval(start: usize, len: usize, m: usize) -> Self {
        assert!(
            len >= 1 && len <= m,
            "ring interval length must be in 1..=m"
        );
        assert!(start < m, "ring interval start must be < m");
        let mut machines: Vec<usize> = (0..len).map(|o| (start + o) % m).collect();
        machines.sort_unstable();
        ProcSet { machines }
    }

    /// Number of machines in the set (`|Mᵢ| = k` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Sorted slice of zero-based machine indices.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.machines
    }

    /// Iterates the member machines as [`MachineId`]s in increasing order.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machines.iter().copied().map(MachineId)
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, machine: usize) -> bool {
        self.machines.binary_search(&machine).is_ok()
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        self.machines.first().copied()
    }

    /// Largest member, if any.
    pub fn max(&self) -> Option<usize> {
        self.machines.last().copied()
    }

    /// True when `self ⊆ other` (linear merge).
    pub fn is_subset_of(&self, other: &ProcSet) -> bool {
        let mut it = other.machines.iter();
        'outer: for &x in &self.machines {
            for &y in it.by_ref() {
                if y == x {
                    continue 'outer;
                }
                if y > x {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// True when the two sets share no machine.
    pub fn is_disjoint_from(&self, other: &ProcSet) -> bool {
        let (mut a, mut b) = (
            self.machines.iter().peekable(),
            other.machines.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ProcSet) -> ProcSet {
        let (mut a, mut b) = (
            self.machines.iter().peekable(),
            other.machines.iter().peekable(),
        );
        let mut out = Vec::new();
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        ProcSet { machines: out }
    }

    /// Set union.
    pub fn union(&self, other: &ProcSet) -> ProcSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend_from_slice(&self.machines);
        out.extend_from_slice(&other.machines);
        ProcSet::new(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &ProcSet) -> ProcSet {
        let out = self
            .machines
            .iter()
            .copied()
            .filter(|&x| !other.contains(x))
            .collect();
        ProcSet { machines: out }
    }

    /// If the set is a contiguous interval `{lo, …, hi}`, returns
    /// `Some((lo, hi))`.
    pub fn as_contiguous_interval(&self) -> Option<(usize, usize)> {
        let (lo, hi) = (self.min()?, self.max()?);
        if hi - lo + 1 == self.machines.len() {
            Some((lo, hi))
        } else {
            None
        }
    }

    /// Alias of [`as_contiguous_interval`](ProcSet::as_contiguous_interval),
    /// named for kernel selection: a `Some` answer means the indexed
    /// dispatch kernel can serve this set with one range-min query.
    #[inline]
    pub fn as_contiguous(&self) -> Option<(usize, usize)> {
        self.as_contiguous_interval()
    }

    /// Borrows the set as an explicit [`ProcSetRef`] view (no shape
    /// detection — see [`compact_view`](ProcSet::compact_view)).
    #[inline]
    pub fn view(&self) -> ProcSetRef<'_> {
        ProcSetRef::Explicit(&self.machines)
    }

    /// Borrows the set as the most compact [`ProcSetRef`] detectable in
    /// O(1): an `Interval` when the members are contiguous, otherwise
    /// the explicit slice.
    #[inline]
    pub fn compact_view(&self) -> ProcSetRef<'_> {
        match self.as_contiguous_interval() {
            Some((lo, hi)) => ProcSetRef::Interval { lo, hi },
            None => ProcSetRef::Explicit(&self.machines),
        }
    }

    /// If the set is a *circular* interval on a ring of `m` machines —
    /// either contiguous or of the wrap-around form
    /// `{j : j ≤ a} ∪ {j : j ≥ b}` from the paper's interval definition —
    /// returns the `(start, len)` of the ring segment.
    ///
    /// The full set is reported with `start = 0`. Returns `None` if some
    /// member index is `≥ m`.
    pub fn as_ring_interval(&self, m: usize) -> Option<(usize, usize)> {
        if self.is_empty() || self.max()? >= m {
            return None;
        }
        if let Some((lo, hi)) = self.as_contiguous_interval() {
            return Some((lo, hi - lo + 1));
        }
        // Wrap-around case: the *complement* within 0..m must be a
        // contiguous interval not touching either edge.
        let mut gap_start = None;
        let mut gap_len = 0usize;
        let mut prev_in = true;
        for j in 0..m {
            let inside = self.contains(j);
            if !inside {
                if prev_in {
                    if gap_start.is_some() {
                        return None; // second gap: not a ring interval
                    }
                    gap_start = Some(j);
                }
                gap_len += 1;
            }
            prev_in = inside;
        }
        let gs = gap_start?;
        if gs == 0 || gs + gap_len >= m {
            // The gap touches an edge, so the set would have been a
            // contiguous interval — handled above. Reaching here means the
            // membership pattern is not a single ring segment.
            return None;
        }
        Some((gs + gap_len, m - gap_len))
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, &j) in self.machines.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "M{}", j + 1)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for ProcSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        ProcSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = ProcSet::new(vec![3, 1, 3, 2]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn new_keeps_already_sorted_input_verbatim() {
        let s = ProcSet::new(vec![0, 3, 7]);
        assert_eq!(s.as_slice(), &[0, 3, 7]);
        // Non-strict (duplicate) input still goes through the slow path.
        let d = ProcSet::new(vec![0, 3, 3, 7]);
        assert_eq!(d.as_slice(), &[0, 3, 7]);
    }

    #[test]
    fn views_borrow_compact_shapes() {
        let iv = ProcSet::interval(2, 4);
        assert_eq!(iv.as_contiguous(), Some((2, 4)));
        assert!(matches!(
            iv.compact_view(),
            ProcSetRef::Interval { lo: 2, hi: 4 }
        ));
        assert_eq!(iv.view(), iv.compact_view());

        let gap = ProcSet::new(vec![0, 2, 4]);
        assert_eq!(gap.as_contiguous(), None);
        assert!(matches!(gap.compact_view(), ProcSetRef::Explicit(_)));
        assert_eq!(gap.compact_view(), gap);
    }

    #[test]
    fn interval_constructor() {
        let s = ProcSet::interval(2, 4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.as_contiguous_interval(), Some((2, 4)));
    }

    #[test]
    fn ring_interval_wraps() {
        // start=4, len=3 on m=6 → {4,5,0}
        let s = ProcSet::ring_interval(4, 3, 6);
        assert_eq!(s.as_slice(), &[0, 4, 5]);
        assert_eq!(s.as_ring_interval(6), Some((4, 3)));
    }

    #[test]
    fn ring_interval_full_set() {
        let s = ProcSet::ring_interval(3, 6, 6);
        assert_eq!(s, ProcSet::full(6));
        assert_eq!(s.as_ring_interval(6), Some((0, 6)));
    }

    #[test]
    fn non_interval_detected() {
        let s = ProcSet::new(vec![0, 2, 4]);
        assert_eq!(s.as_contiguous_interval(), None);
        assert_eq!(s.as_ring_interval(6), None);
    }

    #[test]
    fn two_gap_pattern_is_not_ring() {
        // {0, 2, 4} on m=5 has gaps {1} and {3}.
        let s = ProcSet::new(vec![0, 2, 4]);
        assert_eq!(s.as_ring_interval(5), None);
    }

    #[test]
    fn contiguous_is_also_ring() {
        let s = ProcSet::interval(1, 3);
        assert_eq!(s.as_ring_interval(6), Some((1, 3)));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = ProcSet::new(vec![1, 2]);
        let b = ProcSet::new(vec![0, 1, 2, 3]);
        let c = ProcSet::new(vec![4, 5]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_disjoint_from(&c));
        assert!(!a.is_disjoint_from(&b));
        assert!(ProcSet::empty().is_subset_of(&a));
        assert!(ProcSet::empty().is_disjoint_from(&a));
    }

    #[test]
    fn intersection_union_difference() {
        let a = ProcSet::new(vec![0, 1, 2]);
        let b = ProcSet::new(vec![2, 3]);
        assert_eq!(a.intersection(&b).as_slice(), &[2]);
        assert_eq!(a.union(&b).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(a.difference(&b).as_slice(), &[0, 1]);
    }

    #[test]
    fn contains_uses_membership() {
        let s = ProcSet::new(vec![1, 4, 9]);
        assert!(s.contains(4));
        assert!(!s.contains(3));
    }

    #[test]
    fn display_is_paper_style() {
        assert_eq!(ProcSet::new(vec![2, 3, 4]).to_string(), "{M3,M4,M5}");
    }

    #[test]
    fn from_iterator() {
        let s: ProcSet = [5usize, 1, 5].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 5]);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn interval_rejects_inverted_bounds() {
        let _ = ProcSet::interval(3, 2);
    }

    #[test]
    fn ring_interval_of_len_one() {
        let s = ProcSet::ring_interval(5, 1, 6);
        assert_eq!(s.as_slice(), &[5]);
        assert_eq!(s.as_ring_interval(6), Some((5, 1)));
    }

    #[test]
    fn as_ring_interval_rejects_out_of_range() {
        let s = ProcSet::new(vec![0, 7]);
        assert_eq!(s.as_ring_interval(6), None);
    }
}
