//! Tasks (requests) and task identifiers.

use std::fmt;

use crate::time::Time;

/// Zero-based task index. `TaskId(0)` is the paper's `T₁`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Zero-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based index as used in the paper (`T₁ … Tₙ`).
    #[inline]
    pub fn paper_index(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.paper_index())
    }
}

impl From<usize> for TaskId {
    fn from(i: usize) -> Self {
        TaskId(i)
    }
}

/// A task: release time `r ≥ 0`, processing time `p > 0`, and an
/// optional importance weight `w > 0` (defaulting to 1).
///
/// The processing set lives alongside the task inside
/// [`Instance`](crate::Instance) (tasks sharing a key in a key-value store
/// share the same processing set, so the instance may deduplicate storage
/// in the future; keeping the set out of `Task` keeps this type `Copy`).
///
/// The weight only matters to *weighted* objectives (weighted max flow
/// time, `max wᵢ·Fᵢ`, after Azar–Touitou): every unweighted code path
/// ignores it, and all constructors except [`Task::weighted`] /
/// [`Task::with_weight`] leave it at 1, so weight-1 instances behave
/// bitwise-identically to the pre-weight system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Release time `rᵢ`: the scheduler learns of the task at this instant.
    pub release: Time,
    /// Processing time `pᵢ > 0`.
    pub ptime: Time,
    /// Importance weight `wᵢ > 0` for weighted flow-time objectives.
    pub weight: Time,
}

impl Task {
    /// Creates a (unit-weight) task.
    pub fn new(release: Time, ptime: Time) -> Self {
        Task {
            release,
            ptime,
            weight: 1.0,
        }
    }

    /// A unit task (`pᵢ = 1`), the workhorse of the paper's adversaries
    /// and Section 7 simulations.
    pub fn unit(release: Time) -> Self {
        Task {
            release,
            ptime: 1.0,
            weight: 1.0,
        }
    }

    /// Creates a weighted task.
    pub fn weighted(release: Time, ptime: Time, weight: Time) -> Self {
        Task {
            release,
            ptime,
            weight,
        }
    }

    /// Returns this task with its weight replaced.
    pub fn with_weight(self, weight: Time) -> Self {
        Task { weight, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_display_is_one_based() {
        assert_eq!(TaskId(0).to_string(), "T1");
        assert_eq!(TaskId(9).to_string(), "T10");
    }

    #[test]
    fn unit_task_has_processing_time_one() {
        let t = Task::unit(3.5);
        assert_eq!(t.release, 3.5);
        assert_eq!(t.ptime, 1.0);
        assert_eq!(t.weight, 1.0);
    }

    #[test]
    fn default_weight_is_one_and_weighted_constructors_set_it() {
        assert_eq!(Task::new(0.0, 2.0).weight, 1.0);
        let w = Task::weighted(1.0, 2.0, 8.0);
        assert_eq!((w.release, w.ptime, w.weight), (1.0, 2.0, 8.0));
        let v = Task::new(1.0, 2.0).with_weight(8.0);
        assert_eq!(w, v);
    }

    #[test]
    fn from_usize() {
        assert_eq!(TaskId::from(7), TaskId(7));
        assert_eq!(TaskId(7).index(), 7);
        assert_eq!(TaskId(7).paper_index(), 8);
    }
}
