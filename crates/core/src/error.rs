//! Error types for model construction and schedule validation.

use std::fmt;

use crate::machine::MachineId;
use crate::task::TaskId;
use crate::time::Time;

/// Errors raised while building instances or validating schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A task's processing time is not strictly positive.
    NonPositiveProcessingTime { task: TaskId, p: Time },
    /// A task's release time is negative or not finite.
    InvalidReleaseTime { task: TaskId, r: Time },
    /// Tasks are not sorted by non-decreasing release time
    /// (the paper assumes `i < j ⇒ rᵢ ≤ rⱼ`).
    UnsortedReleases { first_violation: TaskId },
    /// A processing set is empty: the task could never run.
    EmptyProcessingSet { task: TaskId },
    /// A processing set references a machine index `≥ m`.
    MachineOutOfRange {
        task: TaskId,
        machine: usize,
        m: usize,
    },
    /// The instance has zero machines.
    NoMachines,
    /// A schedule is missing an assignment for a task.
    UnscheduledTask { task: TaskId },
    /// A schedule has more assignments than the instance has tasks.
    ExtraAssignments { expected: usize, got: usize },
    /// A task was started before its release time.
    StartedBeforeRelease {
        task: TaskId,
        start: Time,
        release: Time,
    },
    /// A task was placed on a machine outside its processing set.
    OutsideProcessingSet { task: TaskId, machine: MachineId },
    /// Two tasks overlap in time on the same machine.
    MachineOverlap {
        machine: MachineId,
        first: TaskId,
        second: TaskId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NonPositiveProcessingTime { task, p } => {
                write!(f, "task {task} has non-positive processing time {p}")
            }
            CoreError::InvalidReleaseTime { task, r } => {
                write!(f, "task {task} has invalid release time {r}")
            }
            CoreError::UnsortedReleases { first_violation } => write!(
                f,
                "tasks must be sorted by non-decreasing release time; task {first_violation} \
                 is released before its predecessor"
            ),
            CoreError::EmptyProcessingSet { task } => {
                write!(f, "task {task} has an empty processing set")
            }
            CoreError::MachineOutOfRange { task, machine, m } => write!(
                f,
                "task {task} references machine index {machine} but the cluster has {m} machines"
            ),
            CoreError::NoMachines => write!(f, "instance must have at least one machine"),
            CoreError::UnscheduledTask { task } => {
                write!(f, "schedule is missing an assignment for task {task}")
            }
            CoreError::ExtraAssignments { expected, got } => write!(
                f,
                "schedule has {got} assignments but the instance has {expected} tasks"
            ),
            CoreError::StartedBeforeRelease {
                task,
                start,
                release,
            } => write!(
                f,
                "task {task} starts at {start} before its release time {release}"
            ),
            CoreError::OutsideProcessingSet { task, machine } => write!(
                f,
                "task {task} is scheduled on {machine}, outside its processing set"
            ),
            CoreError::MachineOverlap {
                machine,
                first,
                second,
            } => write!(
                f,
                "tasks {first} and {second} overlap in time on machine {machine}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::MachineOverlap {
            machine: MachineId(2),
            first: TaskId(0),
            second: TaskId(4),
        };
        let msg = e.to_string();
        assert!(msg.contains("M3"));
        assert!(msg.contains("T1"));
        assert!(msg.contains("T5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::NoMachines);
        assert_eq!(e.to_string(), "instance must have at least one machine");
    }
}
