//! Machine identifiers.
//!
//! Machines are identical (`P` environment in Graham's notation); only
//! their indices matter, including for the *interval* structures where
//! machine order is significant. Following the paper, machines are named
//! `M₁ … Mₘ`; internally we store zero-based indices and convert at the
//! display boundary.

use std::fmt;

/// Zero-based machine index. `MachineId(0)` is the paper's `M₁`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

impl MachineId {
    /// Zero-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// One-based index as used in the paper (`M₁ … Mₘ`).
    #[inline]
    pub fn paper_index(self) -> usize {
        self.0 + 1
    }

    /// Builds a machine id from the paper's one-based numbering.
    ///
    /// # Panics
    /// Panics if `one_based == 0`.
    #[inline]
    pub fn from_paper_index(one_based: usize) -> Self {
        assert!(one_based >= 1, "paper machine indices start at 1");
        MachineId(one_based - 1)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.paper_index())
    }
}

impl From<usize> for MachineId {
    fn from(i: usize) -> Self {
        MachineId(i)
    }
}

/// Iterator over all machine ids of an `m`-machine cluster.
pub fn all_machines(m: usize) -> impl DoubleEndedIterator<Item = MachineId> + ExactSizeIterator {
    (0..m).map(MachineId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(MachineId(0).to_string(), "M1");
        assert_eq!(MachineId(14).to_string(), "M15");
    }

    #[test]
    fn paper_index_round_trips() {
        for i in 1..=20 {
            assert_eq!(MachineId::from_paper_index(i).paper_index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "start at 1")]
    fn paper_index_zero_rejected() {
        let _ = MachineId::from_paper_index(0);
    }

    #[test]
    fn all_machines_enumerates() {
        let v: Vec<_> = all_machines(3).collect();
        assert_eq!(v, vec![MachineId(0), MachineId(1), MachineId(2)]);
        assert_eq!(all_machines(5).len(), 5);
    }
}
