//! Compact, borrowed views of processing sets.
//!
//! The paper's structured families (interval, nested, inclusive,
//! disjoint — Th. 3–10) are all built from machine *ranges*: an interval
//! set is `{lo, …, hi}`, an inclusive set is a prefix `{0, …, k−1}` up
//! to renaming, a ring-placement replica set is one or two contiguous
//! runs. Materializing such a set as a sorted `Vec<usize>` (what
//! [`ProcSet`] stores) costs O(|Mᵢ|) memory and bandwidth per task —
//! precisely the term the structured families make avoidable.
//!
//! [`ProcSetRef`] is the compact counterpart: a `Copy` description of a
//! set as an interval, wrapping ring segment, prefix, or (fallback) a
//! borrowed sorted slice. Arrival streams yield it instead of
//! `&ProcSet`, so generators for structured workloads never build the
//! member vector at all, and the indexed dispatch kernel
//! (`flowsched_algos::indexed`) can answer range-min queries over it in
//! O(log m) instead of scanning members.
//!
//! Membership semantics are identical across variants: every view
//! denotes a finite set of machine indices, iterated in strictly
//! increasing order. Equality (including against [`ProcSet`]) compares
//! the denoted sets, not the representation.

use std::fmt;

use crate::procset::ProcSet;

/// A borrowed, compactly-described processing set.
///
/// The first three variants are O(1)-sized descriptions of the shapes
/// structured workloads produce; [`Explicit`](ProcSetRef::Explicit)
/// borrows a sorted strictly-increasing slice for everything else.
///
/// `Ring` is kept in *wrapping* form only: [`ProcSetRef::ring`]
/// normalizes non-wrapping and full rings to `Interval`, so kernels can
/// match `Ring` and rely on it splitting into exactly two nonempty
/// runs.
///
/// ```
/// use flowsched_core::{ProcSet, ProcSetRef};
///
/// let ring = ProcSetRef::ring(4, 3, 6); // {4,5,0} on a 6-ring
/// assert_eq!(ring.iter().collect::<Vec<_>>(), vec![0, 4, 5]);
/// assert_eq!(ring, ProcSet::ring_interval(4, 3, 6));
/// assert_eq!(ProcSetRef::ring(1, 3, 6), ProcSetRef::interval(1, 3));
/// ```
#[derive(Debug, Clone, Copy)]
pub enum ProcSetRef<'a> {
    /// The contiguous interval `{lo, …, hi}` (inclusive, `lo ≤ hi`).
    Interval {
        /// Smallest member.
        lo: usize,
        /// Largest member.
        hi: usize,
    },
    /// A *wrapping* ring segment `{start, …, m−1} ∪ {0, …, start+len−m−1}`
    /// on a ring of `m` machines. Invariant: `start + len > m` and
    /// `len < m` (non-wrapping and full segments are `Interval`s).
    Ring {
        /// First machine of the segment (before wrapping).
        start: usize,
        /// Number of machines in the segment.
        len: usize,
        /// Ring size.
        m: usize,
    },
    /// The prefix `{0, …, len−1}` — the canonical inclusive-family
    /// shape (`len ≥ 1`).
    Prefix {
        /// Number of machines in the prefix.
        len: usize,
    },
    /// Fallback: a borrowed sorted, strictly-increasing member slice.
    Explicit(&'a [usize]),
}

impl<'a> ProcSetRef<'a> {
    /// The contiguous interval `{lo, …, hi}`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn interval(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "interval requires lo <= hi, got {lo} > {hi}");
        ProcSetRef::Interval { lo, hi }
    }

    /// The prefix `{0, …, len−1}`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn prefix(len: usize) -> Self {
        assert!(len >= 1, "prefix requires len >= 1");
        ProcSetRef::Prefix { len }
    }

    /// The ring segment of `len` machines starting at `start` on a ring
    /// of `m` machines — the paper's overlapping replication `I_k(u)`.
    /// Non-wrapping and full segments are normalized to
    /// [`Interval`](ProcSetRef::Interval).
    ///
    /// # Panics
    /// Panics if `len == 0`, `len > m` or `start >= m`.
    pub fn ring(start: usize, len: usize, m: usize) -> Self {
        assert!(
            len >= 1 && len <= m,
            "ring interval length must be in 1..=m"
        );
        assert!(start < m, "ring interval start must be < m");
        if len == m {
            ProcSetRef::Interval { lo: 0, hi: m - 1 }
        } else if start + len <= m {
            ProcSetRef::Interval {
                lo: start,
                hi: start + len - 1,
            }
        } else {
            ProcSetRef::Ring { start, len, m }
        }
    }

    /// The full machine set `{0, …, m−1}`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn full(m: usize) -> Self {
        ProcSetRef::prefix(m)
    }

    /// Number of machines in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            ProcSetRef::Interval { lo, hi } => hi - lo + 1,
            ProcSetRef::Ring { len, .. } => len,
            ProcSetRef::Prefix { len } => len,
            ProcSetRef::Explicit(s) => s.len(),
        }
    }

    /// True when the set is empty (only possible for `Explicit`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(*self, ProcSetRef::Explicit(s) if s.is_empty())
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        match *self {
            ProcSetRef::Interval { lo, .. } => Some(lo),
            // Wrapping segments always contain machine 0.
            ProcSetRef::Ring { .. } => Some(0),
            ProcSetRef::Prefix { .. } => Some(0),
            ProcSetRef::Explicit(s) => s.first().copied(),
        }
    }

    /// Largest member, if any.
    pub fn max(&self) -> Option<usize> {
        match *self {
            ProcSetRef::Interval { hi, .. } => Some(hi),
            // Wrapping segments always contain machine m−1.
            ProcSetRef::Ring { m, .. } => Some(m - 1),
            ProcSetRef::Prefix { len } => Some(len - 1),
            ProcSetRef::Explicit(s) => s.last().copied(),
        }
    }

    /// Membership test — O(1) for compact variants, binary search for
    /// `Explicit`.
    pub fn contains(&self, machine: usize) -> bool {
        match *self {
            ProcSetRef::Interval { lo, hi } => lo <= machine && machine <= hi,
            ProcSetRef::Ring { start, len, m } => {
                machine < m && (machine >= start || machine < start + len - m)
            }
            ProcSetRef::Prefix { len } => machine < len,
            ProcSetRef::Explicit(s) => s.binary_search(&machine).is_ok(),
        }
    }

    /// The `i`-th member in increasing order — O(1) for every variant.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn nth(&self, i: usize) -> usize {
        assert!(i < self.len(), "member index {i} out of range");
        match *self {
            ProcSetRef::Interval { lo, .. } => lo + i,
            ProcSetRef::Ring { start, len, m } => {
                // Ascending order lists the wrapped low run first.
                let wrapped = start + len - m;
                if i < wrapped {
                    i
                } else {
                    start + (i - wrapped)
                }
            }
            ProcSetRef::Prefix { .. } => i,
            ProcSetRef::Explicit(s) => s[i],
        }
    }

    /// Iterates the members in strictly increasing order.
    pub fn iter(&self) -> ProcSetRefIter<'a> {
        match *self {
            ProcSetRef::Interval { lo, hi } => ProcSetRefIter::Ranges {
                first: lo..hi + 1,
                second: 0..0,
            },
            ProcSetRef::Ring { start, len, m } => ProcSetRefIter::Ranges {
                first: 0..start + len - m,
                second: start..m,
            },
            ProcSetRef::Prefix { len } => ProcSetRefIter::Ranges {
                first: 0..len,
                second: 0..0,
            },
            ProcSetRef::Explicit(s) => ProcSetRefIter::Slice(s.iter()),
        }
    }

    /// If the set is a contiguous interval `{lo, …, hi}`, returns
    /// `Some((lo, hi))` — the compact twin of
    /// [`ProcSet::as_contiguous`].
    pub fn as_contiguous(&self) -> Option<(usize, usize)> {
        match *self {
            ProcSetRef::Interval { lo, hi } => Some((lo, hi)),
            ProcSetRef::Ring { .. } => None,
            ProcSetRef::Prefix { len } => Some((0, len - 1)),
            ProcSetRef::Explicit(s) => {
                let (&lo, &hi) = (s.first()?, s.last()?);
                (hi - lo + 1 == s.len()).then_some((lo, hi))
            }
        }
    }

    /// Materializes the view as an owned [`ProcSet`].
    pub fn to_procset(&self) -> ProcSet {
        ProcSet::from_sorted(self.iter().collect())
    }
}

/// An owned [`ProcSetRef`]: the same four compact shapes, with the
/// explicit fallback owning its member slice.
///
/// `ProcSetRef` borrows from its stream and dies at the next pull,
/// which is exactly right on the hot dispatch path but useless for
/// handing a set to another thread. `CompactProcSet` is the `Send`
/// counterpart the sharded engine puts in its routing messages: compact
/// shapes stay allocation-free `Copy`-sized payloads, and only explicit
/// sets pay for a boxed slice. Equality is semantic, matching
/// [`ProcSetRef`].
#[derive(Debug, Clone)]
pub enum CompactProcSet {
    /// The contiguous interval `{lo, …, hi}` (inclusive, `lo ≤ hi`).
    Interval {
        /// Smallest member.
        lo: usize,
        /// Largest member.
        hi: usize,
    },
    /// A wrapping ring segment — same invariants as
    /// [`ProcSetRef::Ring`].
    Ring {
        /// First machine of the segment (before wrapping).
        start: usize,
        /// Number of machines in the segment.
        len: usize,
        /// Ring size.
        m: usize,
    },
    /// The prefix `{0, …, len−1}` (`len ≥ 1`).
    Prefix {
        /// Number of machines in the prefix.
        len: usize,
    },
    /// Fallback: an owned sorted, strictly-increasing member slice.
    Explicit(Box<[usize]>),
}

impl CompactProcSet {
    /// Lends the set back as a borrowed view.
    pub fn as_view(&self) -> ProcSetRef<'_> {
        match *self {
            CompactProcSet::Interval { lo, hi } => ProcSetRef::Interval { lo, hi },
            CompactProcSet::Ring { start, len, m } => ProcSetRef::Ring { start, len, m },
            CompactProcSet::Prefix { len } => ProcSetRef::Prefix { len },
            CompactProcSet::Explicit(ref s) => ProcSetRef::Explicit(s),
        }
    }
}

impl From<ProcSetRef<'_>> for CompactProcSet {
    fn from(v: ProcSetRef<'_>) -> Self {
        match v {
            ProcSetRef::Interval { lo, hi } => CompactProcSet::Interval { lo, hi },
            ProcSetRef::Ring { start, len, m } => CompactProcSet::Ring { start, len, m },
            ProcSetRef::Prefix { len } => CompactProcSet::Prefix { len },
            ProcSetRef::Explicit(s) => CompactProcSet::Explicit(s.into()),
        }
    }
}

impl PartialEq for CompactProcSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_view() == other.as_view()
    }
}

impl Eq for CompactProcSet {}

/// Iterator over a [`ProcSetRef`]'s members in increasing order.
#[derive(Debug, Clone)]
pub enum ProcSetRefIter<'a> {
    /// Up to two contiguous runs, yielded first-then-second.
    Ranges {
        /// Low run (possibly empty).
        first: std::ops::Range<usize>,
        /// High run (possibly empty).
        second: std::ops::Range<usize>,
    },
    /// Members borrowed from an explicit sorted slice.
    Slice(std::slice::Iter<'a, usize>),
}

impl Iterator for ProcSetRefIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            ProcSetRefIter::Ranges { first, second } => first.next().or_else(|| second.next()),
            ProcSetRefIter::Slice(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            ProcSetRefIter::Ranges { first, second } => first.len() + second.len(),
            ProcSetRefIter::Slice(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcSetRefIter<'_> {}

impl PartialEq for ProcSetRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for ProcSetRef<'_> {}

impl PartialEq<ProcSet> for ProcSetRef<'_> {
    fn eq(&self, other: &ProcSet) -> bool {
        self.iter().eq(other.as_slice().iter().copied())
    }
}

impl PartialEq<ProcSetRef<'_>> for ProcSet {
    fn eq(&self, other: &ProcSetRef<'_>) -> bool {
        other == self
    }
}

impl PartialEq<&ProcSet> for ProcSetRef<'_> {
    fn eq(&self, other: &&ProcSet) -> bool {
        *self == **other
    }
}

impl fmt::Display for ProcSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, j) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "M{}", j + 1)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_view_matches_procset() {
        let v = ProcSetRef::interval(2, 5);
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(v, ProcSet::interval(2, 5));
        assert_eq!(v.as_contiguous(), Some((2, 5)));
        assert_eq!(v.min(), Some(2));
        assert_eq!(v.max(), Some(5));
    }

    #[test]
    fn ring_normalizes_non_wrapping_to_interval() {
        assert_eq!(
            ProcSetRef::ring(1, 3, 6),
            ProcSetRef::Interval { lo: 1, hi: 3 }
        );
        assert_eq!(
            ProcSetRef::ring(0, 6, 6),
            ProcSetRef::Interval { lo: 0, hi: 5 }
        );
        // Full set from a nonzero start also normalizes.
        assert!(matches!(
            ProcSetRef::ring(3, 6, 6),
            ProcSetRef::Interval { lo: 0, hi: 5 }
        ));
    }

    #[test]
    fn wrapping_ring_iterates_ascending() {
        let v = ProcSetRef::ring(4, 3, 6); // {4,5,0}
        assert!(matches!(v, ProcSetRef::Ring { .. }));
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 4, 5]);
        assert_eq!(v, ProcSet::ring_interval(4, 3, 6));
        assert_eq!(v.min(), Some(0));
        assert_eq!(v.max(), Some(5));
        assert_eq!(v.as_contiguous(), None);
        assert!(v.contains(0) && v.contains(4) && v.contains(5));
        assert!(!v.contains(1) && !v.contains(3) && !v.contains(6));
    }

    #[test]
    fn prefix_is_an_initial_segment() {
        let v = ProcSetRef::prefix(3);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(v, ProcSet::interval(0, 2));
        assert_eq!(v.as_contiguous(), Some((0, 2)));
        assert_eq!(ProcSetRef::full(4), ProcSet::full(4));
    }

    #[test]
    fn explicit_view_borrows_the_slice() {
        let s = ProcSet::new(vec![1, 4, 9]);
        let v = ProcSetRef::Explicit(s.as_slice());
        assert_eq!(v.len(), 3);
        assert_eq!(v, s);
        assert!(v.contains(4) && !v.contains(3));
        assert_eq!(v.as_contiguous(), None);
        assert_eq!(
            ProcSetRef::Explicit(&[5, 6, 7]).as_contiguous(),
            Some((5, 7))
        );
    }

    #[test]
    fn nth_agrees_with_iteration_order() {
        for v in [
            ProcSetRef::interval(3, 7),
            ProcSetRef::ring(5, 4, 7),
            ProcSetRef::prefix(5),
            ProcSetRef::Explicit(&[0, 2, 9]),
        ] {
            let members: Vec<usize> = v.iter().collect();
            for (i, &j) in members.iter().enumerate() {
                assert_eq!(v.nth(i), j, "{v:?} at {i}");
            }
        }
    }

    #[test]
    fn equality_is_semantic_across_variants() {
        assert_eq!(ProcSetRef::prefix(4), ProcSetRef::interval(0, 3));
        assert_eq!(
            ProcSetRef::interval(1, 2),
            ProcSetRef::Explicit(&[1, 2][..])
        );
        assert_ne!(ProcSetRef::prefix(4), ProcSetRef::interval(0, 4));
    }

    #[test]
    fn to_procset_round_trips() {
        let v = ProcSetRef::ring(4, 4, 6); // {4,5,0,1}
        assert_eq!(v.to_procset(), ProcSet::ring_interval(4, 4, 6));
        assert_eq!(v.to_procset().compact_view(), ProcSetRef::ring(4, 4, 6));
    }

    #[test]
    fn display_matches_procset_style() {
        assert_eq!(ProcSetRef::interval(2, 4).to_string(), "{M3,M4,M5}");
        assert_eq!(
            ProcSetRef::ring(4, 3, 6).to_string(),
            ProcSet::ring_interval(4, 3, 6).to_string()
        );
    }

    #[test]
    fn empty_explicit_view() {
        let v = ProcSetRef::Explicit(&[]);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.min(), None);
        assert_eq!(v.iter().next(), None);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn interval_rejects_inverted_bounds() {
        let _ = ProcSetRef::interval(3, 2);
    }

    #[test]
    fn compact_procset_round_trips_every_variant() {
        for v in [
            ProcSetRef::interval(3, 7),
            ProcSetRef::ring(5, 4, 7),
            ProcSetRef::prefix(5),
            ProcSetRef::Explicit(&[0, 2, 9]),
        ] {
            let owned = CompactProcSet::from(v);
            assert_eq!(owned.as_view(), v, "{v:?}");
            assert_eq!(owned, CompactProcSet::from(owned.as_view()));
        }
    }

    #[test]
    fn compact_procset_equality_is_semantic() {
        assert_eq!(
            CompactProcSet::Prefix { len: 3 },
            CompactProcSet::from(ProcSetRef::interval(0, 2))
        );
        assert_ne!(
            CompactProcSet::Prefix { len: 3 },
            CompactProcSet::Interval { lo: 0, hi: 3 }
        );
    }
}
