//! Time representation and floating-point comparison helpers.
//!
//! Times are `f64`. The paper's constructions only involve dyadic rationals
//! (integers for unit-task adversaries; powers of two for the `δ`/`ε`
//! padding of Theorem 10), for which `f64` arithmetic on sums is exact, so
//! tie detection in EFT (`C_{j,i−1} ≤ t_min`) is reliable with plain
//! comparisons. Stochastic workloads (Poisson arrivals) produce ties with
//! probability zero. A small tolerance is still provided for validation
//! code that accumulates long sums.

/// Scheduling time. Non-negative finite `f64` by convention.
pub type Time = f64;

/// Absolute tolerance used by validation helpers when comparing
/// accumulated times.
pub const TIME_EPS: Time = 1e-9;

/// Returns `true` when `a` and `b` are equal up to [`TIME_EPS`],
/// relative to their magnitude for large values.
#[inline]
pub fn time_eq(a: Time, b: Time) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= TIME_EPS * scale
}

/// Returns `true` when `a ≤ b` up to [`TIME_EPS`] (scaled).
#[inline]
pub fn time_le(a: Time, b: Time) -> bool {
    a <= b || time_eq(a, b)
}

/// Returns `true` when `a < b` strictly beyond the tolerance.
#[inline]
pub fn time_lt(a: Time, b: Time) -> bool {
    a < b && !time_eq(a, b)
}

/// Total order for times, treating NaN as an error.
///
/// # Panics
/// Panics if either value is NaN — times in this crate are always finite.
#[inline]
pub fn time_cmp(a: Time, b: Time) -> std::cmp::Ordering {
    a.partial_cmp(&b)
        .expect("times must not be NaN in scheduling computations")
}

/// Maximum of two times (NaN-free).
#[inline]
pub fn time_max(a: Time, b: Time) -> Time {
    if time_cmp(a, b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

/// Minimum of two times (NaN-free).
#[inline]
pub fn time_min(a: Time, b: Time) -> Time {
    if time_cmp(a, b) == std::cmp::Ordering::Greater {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn eq_within_tolerance() {
        assert!(time_eq(1.0, 1.0 + 1e-12));
        assert!(!time_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn eq_scales_with_magnitude() {
        // 1e9 + 1e-4 is within 1e-9 relative tolerance of 1e9.
        assert!(time_eq(1e9, 1e9 + 1e-4));
        assert!(!time_eq(1e9, 1e9 + 10.0));
    }

    #[test]
    fn le_and_lt_are_consistent() {
        assert!(time_le(1.0, 1.0));
        assert!(time_le(1.0, 2.0));
        assert!(!time_lt(1.0, 1.0 + 1e-12));
        assert!(time_lt(1.0, 1.1));
    }

    #[test]
    fn cmp_orders_times() {
        assert_eq!(time_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(time_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(time_cmp(1.5, 1.5), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cmp_rejects_nan() {
        let _ = time_cmp(f64::NAN, 1.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(time_max(1.0, 2.0), 2.0);
        assert_eq!(time_max(2.0, 1.0), 2.0);
        assert_eq!(time_min(1.0, 2.0), 1.0);
        assert_eq!(time_min(2.0, 1.0), 1.0);
    }
}
