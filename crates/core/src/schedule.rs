//! Schedules and their metrics.
//!
//! A schedule `Π` maps each task `Tᵢ` to `(μᵢ, σᵢ)`: the machine running it
//! and its start time. Completion is `Cᵢ = σᵢ + pᵢ` and the flow time is
//! `Fᵢ = Cᵢ − rᵢ`. Validation checks the three feasibility conditions:
//! starts after release, machine inside the processing set, and no two
//! tasks overlapping on a machine (no preemption, unit capacity).

use crate::error::CoreError;
use crate::instance::Instance;
use crate::machine::MachineId;
use crate::task::TaskId;
use crate::time::{time_cmp, Time};

/// One task's placement: machine and start time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Machine `μᵢ` executing the task.
    pub machine: MachineId,
    /// Start time `σᵢ ≥ rᵢ`.
    pub start: Time,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(machine: MachineId, start: Time) -> Self {
        Assignment { machine, start }
    }
}

/// A complete schedule: one assignment per task, aligned with the
/// instance's task indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    assignments: Vec<Assignment>,
}

impl Schedule {
    /// Wraps a vector of assignments (index `i` = task `Tᵢ`).
    pub fn new(assignments: Vec<Assignment>) -> Self {
        Schedule { assignments }
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no task is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The raw assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Assignment of one task.
    pub fn assignment(&self, id: TaskId) -> Assignment {
        self.assignments[id.0]
    }

    /// Start time `σᵢ`.
    pub fn start(&self, id: TaskId) -> Time {
        self.assignments[id.0].start
    }

    /// Machine `μᵢ`.
    pub fn machine(&self, id: TaskId) -> MachineId {
        self.assignments[id.0].machine
    }

    /// Completion time `Cᵢ = σᵢ + pᵢ`.
    pub fn completion(&self, id: TaskId, inst: &Instance) -> Time {
        self.assignments[id.0].start + inst.task(id).ptime
    }

    /// Flow time `Fᵢ = Cᵢ − rᵢ`.
    pub fn flow_time(&self, id: TaskId, inst: &Instance) -> Time {
        self.completion(id, inst) - inst.task(id).release
    }

    /// Stretch of a task: `Fᵢ / pᵢ` — the slowdown factor relative to
    /// running alone (Bender et al.'s companion metric to max-flow).
    pub fn stretch(&self, id: TaskId, inst: &Instance) -> Time {
        self.flow_time(id, inst) / inst.task(id).ptime
    }

    /// Maximum stretch over all tasks (0 for empty schedules).
    pub fn max_stretch(&self, inst: &Instance) -> Time {
        (0..self.len())
            .map(|i| self.stretch(TaskId(i), inst))
            .max_by(|a, b| time_cmp(*a, *b))
            .unwrap_or(0.0)
    }

    /// All flow times, aligned with task indices.
    pub fn flow_times(&self, inst: &Instance) -> Vec<Time> {
        (0..self.len())
            .map(|i| self.flow_time(TaskId(i), inst))
            .collect()
    }

    /// Maximum flow time `Fmax = maxᵢ Fᵢ` (the paper's objective).
    /// Returns 0 for empty schedules.
    pub fn fmax(&self, inst: &Instance) -> Time {
        (0..self.len())
            .map(|i| self.flow_time(TaskId(i), inst))
            .max_by(|a, b| time_cmp(*a, *b))
            .unwrap_or(0.0)
    }

    /// Weighted maximum flow time `maxᵢ wᵢ·Fᵢ` — the Azar–Touitou
    /// objective. Equal to [`fmax`](Schedule::fmax) when every task has
    /// the default weight 1. Returns 0 for empty schedules.
    pub fn weighted_fmax(&self, inst: &Instance) -> Time {
        (0..self.len())
            .map(|i| inst.task(TaskId(i)).weight * self.flow_time(TaskId(i), inst))
            .max_by(|a, b| time_cmp(*a, *b))
            .unwrap_or(0.0)
    }

    /// The task attaining `Fmax`, if any.
    pub fn argmax_flow(&self, inst: &Instance) -> Option<TaskId> {
        (0..self.len())
            .map(TaskId)
            .max_by(|&a, &b| time_cmp(self.flow_time(a, inst), self.flow_time(b, inst)))
    }

    /// Mean flow time (0 for empty schedules).
    pub fn mean_flow(&self, inst: &Instance) -> Time {
        if self.is_empty() {
            return 0.0;
        }
        let total: Time = (0..self.len())
            .map(|i| self.flow_time(TaskId(i), inst))
            .sum();
        total / self.len() as Time
    }

    /// Makespan `Cmax = maxᵢ Cᵢ` (0 for empty schedules).
    pub fn makespan(&self, inst: &Instance) -> Time {
        (0..self.len())
            .map(|i| self.completion(TaskId(i), inst))
            .max_by(|a, b| time_cmp(*a, *b))
            .unwrap_or(0.0)
    }

    /// Tasks grouped per machine, each group sorted by start time.
    /// Index `j` of the result holds machine `Mⱼ₊₁`'s tasks.
    pub fn machine_timelines(&self, inst: &Instance) -> Vec<Vec<TaskId>> {
        let mut lanes: Vec<Vec<TaskId>> = vec![Vec::new(); inst.machines()];
        for (i, a) in self.assignments.iter().enumerate() {
            lanes[a.machine.index()].push(TaskId(i));
        }
        for lane in &mut lanes {
            lane.sort_by(|&a, &b| time_cmp(self.start(a), self.start(b)));
        }
        lanes
    }

    /// Validates the schedule against its instance. Checks, in order:
    /// assignment count, release-time respect, processing-set membership,
    /// and per-machine non-overlap.
    pub fn validate(&self, inst: &Instance) -> Result<(), CoreError> {
        if self.assignments.len() != inst.len() {
            if self.assignments.len() < inst.len() {
                return Err(CoreError::UnscheduledTask {
                    task: TaskId(self.assignments.len()),
                });
            }
            return Err(CoreError::ExtraAssignments {
                expected: inst.len(),
                got: self.assignments.len(),
            });
        }
        for (id, task, set) in inst.iter() {
            let a = self.assignments[id.0];
            if a.start < task.release - crate::time::TIME_EPS {
                return Err(CoreError::StartedBeforeRelease {
                    task: id,
                    start: a.start,
                    release: task.release,
                });
            }
            if !set.contains(a.machine.index()) {
                return Err(CoreError::OutsideProcessingSet {
                    task: id,
                    machine: a.machine,
                });
            }
        }
        for (j, lane) in self.machine_timelines(inst).into_iter().enumerate() {
            for w in lane.windows(2) {
                let (a, b) = (w[0], w[1]);
                let a_end = self.completion(a, inst);
                if self.start(b) < a_end - crate::time::TIME_EPS {
                    return Err(CoreError::MachineOverlap {
                        machine: MachineId(j),
                        first: a,
                        second: b,
                    });
                }
            }
        }
        Ok(())
    }

    /// Sum of idle time across machines between time 0 and the makespan.
    /// Useful for diagnosing scheduler behaviour in experiments.
    pub fn total_idle(&self, inst: &Instance) -> Time {
        let horizon = self.makespan(inst);
        let busy: Time = inst.tasks().iter().map(|t| t.ptime).sum();
        (horizon * inst.machines() as Time - busy).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procset::ProcSet;
    use crate::task::Task;

    fn small_instance() -> Instance {
        // 2 machines; T1 (r=0,p=2) anywhere, T2 (r=0,p=1) only M2,
        // T3 (r=1,p=1) anywhere.
        Instance::new(
            2,
            vec![
                Task::new(0.0, 2.0),
                Task::new(0.0, 1.0),
                Task::new(1.0, 1.0),
            ],
            vec![ProcSet::full(2), ProcSet::singleton(1), ProcSet::full(2)],
        )
        .unwrap()
    }

    fn valid_schedule() -> Schedule {
        Schedule::new(vec![
            Assignment::new(MachineId(0), 0.0), // T1 on M1 [0,2)
            Assignment::new(MachineId(1), 0.0), // T2 on M2 [0,1)
            Assignment::new(MachineId(1), 1.0), // T3 on M2 [1,2)
        ])
    }

    #[test]
    fn metrics_on_valid_schedule() {
        let inst = small_instance();
        let s = valid_schedule();
        s.validate(&inst).unwrap();
        assert_eq!(s.completion(TaskId(0), &inst), 2.0);
        assert_eq!(s.flow_time(TaskId(0), &inst), 2.0);
        assert_eq!(s.flow_time(TaskId(2), &inst), 1.0);
        assert_eq!(s.fmax(&inst), 2.0);
        assert_eq!(s.makespan(&inst), 2.0);
        assert_eq!(s.argmax_flow(&inst), Some(TaskId(0)));
        assert!((s.mean_flow(&inst) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_fmax_reduces_to_fmax_at_unit_weight() {
        let inst = small_instance();
        let s = valid_schedule();
        assert_eq!(s.weighted_fmax(&inst), s.fmax(&inst));
        // Boost T3 (flow 1) to weight 5: it now dominates T1 (flow 2).
        let weighted = Instance::new(
            2,
            vec![
                Task::new(0.0, 2.0),
                Task::new(0.0, 1.0),
                Task::weighted(1.0, 1.0, 5.0),
            ],
            vec![ProcSet::full(2), ProcSet::singleton(1), ProcSet::full(2)],
        )
        .unwrap();
        assert_eq!(s.weighted_fmax(&weighted), 5.0);
    }

    #[test]
    fn stretch_is_flow_over_processing_time() {
        let inst = small_instance();
        let s = valid_schedule();
        // T1: flow 2, p 2 → stretch 1. T3: flow 1, p 1 → 1.
        assert_eq!(s.stretch(TaskId(0), &inst), 1.0);
        assert_eq!(s.max_stretch(&inst), 1.0);
        // Delay T3 to start at 3: flow 3, stretch 3.
        let mut delayed = valid_schedule();
        delayed.assignments[2].start = 3.0;
        assert_eq!(delayed.stretch(TaskId(2), &inst), 3.0);
        assert_eq!(delayed.max_stretch(&inst), 3.0);
    }

    #[test]
    fn validate_rejects_early_start() {
        let inst = small_instance();
        let mut s = valid_schedule();
        s.assignments[2].start = 0.5; // T3 released at 1.0
        assert!(matches!(
            s.validate(&inst),
            Err(CoreError::StartedBeforeRelease {
                task: TaskId(2),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_wrong_machine() {
        let inst = small_instance();
        let mut s = valid_schedule();
        s.assignments[1].machine = MachineId(0); // T2 restricted to M2
        assert!(matches!(
            s.validate(&inst),
            Err(CoreError::OutsideProcessingSet {
                task: TaskId(1),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_overlap() {
        let inst = small_instance();
        let mut s = valid_schedule();
        s.assignments[2] = Assignment::new(MachineId(1), 0.5); // overlaps T2 — and starts before release
                                                               // move release check out of the way by putting start at exactly 1.0
                                                               // but on the same machine as the long task on M1:
        s.assignments[2] = Assignment::new(MachineId(0), 1.0); // overlaps T1 [0,2)
        assert!(matches!(
            s.validate(&inst),
            Err(CoreError::MachineOverlap {
                first: TaskId(0),
                second: TaskId(2),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_missing_assignment() {
        let inst = small_instance();
        let s = Schedule::new(vec![Assignment::new(MachineId(0), 0.0)]);
        assert!(matches!(
            s.validate(&inst),
            Err(CoreError::UnscheduledTask { .. })
        ));
    }

    #[test]
    fn validate_rejects_extra_assignments() {
        let inst = small_instance();
        let mut asg = valid_schedule().assignments().to_vec();
        asg.push(Assignment::new(MachineId(0), 5.0));
        let s = Schedule::new(asg);
        assert!(matches!(
            s.validate(&inst),
            Err(CoreError::ExtraAssignments { .. })
        ));
    }

    #[test]
    fn back_to_back_tasks_do_not_overlap() {
        // Completion exactly equals next start: legal.
        let inst =
            Instance::unrestricted(1, vec![Task::new(0.0, 1.0), Task::new(0.0, 1.0)]).unwrap();
        let s = Schedule::new(vec![
            Assignment::new(MachineId(0), 0.0),
            Assignment::new(MachineId(0), 1.0),
        ]);
        s.validate(&inst).unwrap();
    }

    #[test]
    fn machine_timelines_sorted() {
        let inst = small_instance();
        let s = valid_schedule();
        let lanes = s.machine_timelines(&inst);
        assert_eq!(lanes[0], vec![TaskId(0)]);
        assert_eq!(lanes[1], vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn empty_schedule_metrics() {
        let inst = Instance::unrestricted(2, vec![]).unwrap();
        let s = Schedule::new(vec![]);
        s.validate(&inst).unwrap();
        assert_eq!(s.fmax(&inst), 0.0);
        assert_eq!(s.mean_flow(&inst), 0.0);
        assert_eq!(s.argmax_flow(&inst), None);
    }

    #[test]
    fn total_idle_accounts_for_gaps() {
        let inst = small_instance();
        let s = valid_schedule();
        // Makespan 2, 2 machines → capacity 4; busy work = 2+1+1 = 4 → idle 0.
        assert_eq!(s.total_idle(&inst), 0.0);
    }
}
