//! Schedule profiles (`w_t` in the paper's Theorem 8 analysis).
//!
//! For an immediate-dispatch schedule, the *profile* at time `t` is the
//! vector `w_t(j) = max(0, C_{j}(t) − t)`: the amount of allocated work on
//! machine `Mⱼ` still to be processed at time `t`, counting only tasks
//! released strictly before `t`. The proof of Theorem 8 shows the
//! EFT-Min profile under the interval adversary converges to the *stable
//! profile* `w_τ(j) = min(m − j, m − k)` (one-based `j`), at which point
//! some task necessarily suffers flow `m − k + 1`.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::time::{time_lt, Time};

/// Computes the profile `w_t(j)` for all machines, counting tasks with
/// `rᵢ < t` (strictly: the paper inspects the profile *just before* the
/// adversary releases the batch at `t`).
pub fn profile_at(schedule: &Schedule, inst: &Instance, t: Time) -> Vec<Time> {
    let mut completion = vec![0.0_f64; inst.machines()];
    for (id, task, _) in inst.iter() {
        if time_lt(task.release, t) {
            let a = schedule.assignment(id);
            let c = a.start + task.ptime;
            let j = a.machine.index();
            if c > completion[j] {
                completion[j] = c;
            }
        }
    }
    completion.iter().map(|&c| (c - t).max(0.0)).collect()
}

/// The stable profile `w_τ` of Theorem 8 for `m` machines and interval
/// size `k`: `w_τ(j) = min(m − j, m − k)` with one-based `j` — a plateau of
/// height `m − k` on machines `M₁ … M_k`, then a staircase decreasing to 0
/// on `Mₘ`.
pub fn stable_profile(m: usize, k: usize) -> Vec<Time> {
    assert!(k >= 1 && k <= m, "need 1 <= k <= m");
    (1..=m).map(|j| ((m - j).min(m - k)) as Time).collect()
}

/// Pointwise comparison of two profiles with the paper's Definition 1:
/// returns `Less` when `a` is strictly behind `b` (`a ≤ b` pointwise with
/// at least one strict), `Equal` when identical, `Greater` when `a`
/// strictly ahead, and `None` when incomparable.
pub fn compare_profiles(a: &[Time], b: &[Time]) -> Option<std::cmp::Ordering> {
    assert_eq!(a.len(), b.len(), "profiles must cover the same machines");
    let mut le = true;
    let mut ge = true;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            ge = false;
        }
        if x > y {
            le = false;
        }
    }
    match (le, ge) {
        (true, true) => Some(std::cmp::Ordering::Equal),
        (true, false) => Some(std::cmp::Ordering::Less),
        (false, true) => Some(std::cmp::Ordering::Greater),
        (false, false) => None,
    }
}

/// Total waiting work `Σⱼ w_t(j)` of a profile.
pub fn total_waiting(profile: &[Time]) -> Time {
    profile.iter().sum()
}

/// The *weighted distance* of the paper's Theorem 9 analysis:
/// `ϕ_t(j) = 2^{w_τ(j)} · (m − k + 1 − w_t(j))`, summed over machines.
/// Lemma 5 shows Φ is non-increasing under the interval adversary and
/// strictly decreases whenever some staircase task misses its last
/// machine; once `Φ ≤ 0`, some machine holds at least `m − k + 1` of
/// waiting work.
pub fn weighted_distance(profile: &[Time], m: usize, k: usize) -> f64 {
    assert_eq!(profile.len(), m, "profile must cover all machines");
    let tau = stable_profile(m, k);
    profile
        .iter()
        .zip(&tau)
        .map(|(&w, &wt)| 2.0_f64.powf(wt) * ((m - k + 1) as f64 - w))
        .sum()
}

/// True when a profile is non-increasing in the machine index —
/// the invariant of the paper's Lemma 2 for EFT-Min under the
/// Theorem 8 adversary.
pub fn is_non_increasing(profile: &[Time]) -> bool {
    profile
        .windows(2)
        .all(|w| w[1] <= w[0] + crate::time::TIME_EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;
    use crate::procset::ProcSet;
    use crate::schedule::Assignment;
    use crate::task::Task;

    #[test]
    fn stable_profile_matches_paper_shape() {
        // m=6, k=3 → w_τ = [3,3,3,2,1,0] (plateau then staircase).
        assert_eq!(stable_profile(6, 3), vec![3.0, 3.0, 3.0, 2.0, 1.0, 0.0]);
        // k=1 → pure staircase m-j.
        assert_eq!(stable_profile(4, 1), vec![3.0, 2.0, 1.0, 0.0]);
        // k=m → all zero.
        assert_eq!(stable_profile(4, 4), vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn profile_counts_only_earlier_releases() {
        // M1 runs T1 [0,2); T2 released at 1 on M2 [1,2).
        let inst = Instance::new(
            2,
            vec![Task::new(0.0, 2.0), Task::new(1.0, 1.0)],
            vec![ProcSet::full(2), ProcSet::full(2)],
        )
        .unwrap();
        let s = Schedule::new(vec![
            Assignment::new(MachineId(0), 0.0),
            Assignment::new(MachineId(1), 1.0),
        ]);
        // At t=1, only T1 counts (released at 0 < 1): w = [1, 0].
        assert_eq!(profile_at(&s, &inst, 1.0), vec![1.0, 0.0]);
        // At t=1.5 both count: w = [0.5, 0.5].
        assert_eq!(profile_at(&s, &inst, 1.5), vec![0.5, 0.5]);
        // At t=5 everything finished.
        assert_eq!(profile_at(&s, &inst, 5.0), vec![0.0, 0.0]);
    }

    #[test]
    fn compare_profiles_follows_definition_1() {
        use std::cmp::Ordering::*;
        assert_eq!(compare_profiles(&[1.0, 2.0], &[1.0, 2.0]), Some(Equal));
        assert_eq!(compare_profiles(&[0.0, 2.0], &[1.0, 2.0]), Some(Less));
        assert_eq!(compare_profiles(&[2.0, 2.0], &[1.0, 2.0]), Some(Greater));
        assert_eq!(compare_profiles(&[0.0, 3.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn non_increasing_check() {
        assert!(is_non_increasing(&[3.0, 3.0, 1.0, 0.0]));
        assert!(!is_non_increasing(&[1.0, 2.0]));
        assert!(is_non_increasing(&[]));
    }

    #[test]
    fn total_waiting_sums() {
        // [3,3,3,2,1,0] sums to 12.
        assert_eq!(total_waiting(&stable_profile(6, 3)), 12.0);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= m")]
    fn stable_profile_rejects_bad_k() {
        let _ = stable_profile(3, 0);
    }

    #[test]
    fn weighted_distance_zero_profile() {
        // Empty machines: ϕ(j) = 2^{w_τ(j)}·(m−k+1); for m=6, k=3:
        // Σ 2^{[3,3,3,2,1,0]}·4 = (8+8+8+4+2+1)·4 = 124.
        let w = vec![0.0; 6];
        assert_eq!(weighted_distance(&w, 6, 3), 124.0);
    }

    #[test]
    fn weighted_distance_at_stable_profile_is_positive() {
        // At w_τ itself, each term is 2^{w_τ}·(m−k+1−w_τ) > 0.
        let m = 6;
        let k = 3;
        let tau = stable_profile(m, k);
        let phi = weighted_distance(&tau, m, k);
        assert!(phi > 0.0);
        // Hand value: Σ 2^{[3,3,3,2,1,0]}·(4−[3,3,3,2,1,0])
        //            = 8+8+8+4·2+2·3+1·4 = 42.
        assert_eq!(phi, 42.0);
    }

    #[test]
    fn weighted_distance_nonpositive_implies_deep_backlog() {
        // If Φ ≤ 0, some w(j) ≥ m−k+1 (contrapositive of all-below).
        let m = 4;
        let k = 2;
        let w = vec![3.0, 3.0, 3.0, 3.0]; // all at m−k+1
        assert!(weighted_distance(&w, m, k) <= 0.0);
    }

    #[test]
    #[should_panic(expected = "cover all machines")]
    fn weighted_distance_checks_length() {
        let _ = weighted_distance(&[0.0; 3], 4, 2);
    }
}
