//! ASCII Gantt rendering of schedules.
//!
//! Used to regenerate the paper's schedule illustrations (Figures 2, 3
//! and 7) in a terminal. Each machine is a row; time advances to the
//! right in fixed-width cells.

use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::task::TaskId;
use crate::time::Time;

/// Options controlling Gantt rendering.
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Time units per character cell (1.0 works for unit tasks).
    pub resolution: Time,
    /// Inclusive end of the rendered window; `None` renders to the
    /// makespan.
    pub until: Option<Time>,
    /// Label cells with the one-based task index modulo 10 instead of `#`.
    pub numbered: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            resolution: 1.0,
            until: None,
            numbered: true,
        }
    }
}

/// Renders a schedule as ASCII art, one row per machine.
///
/// Cells show the last digit of the occupying task's one-based index
/// (or `#` when `numbered` is off); idle cells show `.`. A cell is deemed
/// occupied by the task running at the cell's midpoint, so resolutions
/// coarser than the shortest task may visually drop tasks — pick
/// `resolution ≤ min pᵢ` for faithful output.
pub fn render(schedule: &Schedule, inst: &Instance, opts: &GanttOptions) -> String {
    let end = opts.until.unwrap_or_else(|| schedule.makespan(inst));
    let cells = ((end / opts.resolution).ceil() as usize).max(1);
    let lanes = schedule.machine_timelines(inst);
    let mut out = String::new();

    // Header ruler: mark every 5th cell.
    out.push_str("      ");
    for c in 0..cells {
        let t = c as Time * opts.resolution;
        if c % 5 == 0 {
            out.push_str(&format!("{:<5}", format_time(t)));
        }
    }
    out.push('\n');

    for (j, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("M{:<4} ", j + 1));
        let mut row = vec!['.'; cells];
        for &tid in lane {
            let start = schedule.start(tid);
            let finish = schedule.completion(tid, inst);
            for (c, slot) in row.iter_mut().enumerate() {
                let mid = (c as Time + 0.5) * opts.resolution;
                if mid >= start && mid < finish {
                    *slot = cell_char(tid, opts.numbered);
                }
            }
        }
        out.extend(row);
        out.push('\n');
    }
    out
}

fn cell_char(tid: TaskId, numbered: bool) -> char {
    if numbered {
        char::from_digit((tid.paper_index() % 10) as u32, 10).unwrap()
    } else {
        '#'
    }
}

fn format_time(t: Time) -> String {
    if t.fract() == 0.0 {
        format!("{}", t as i64)
    } else {
        format!("{t:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineId;
    use crate::schedule::Assignment;
    use crate::task::Task;

    fn demo() -> (Instance, Schedule) {
        let inst = Instance::unrestricted(
            2,
            vec![
                Task::new(0.0, 2.0),
                Task::new(0.0, 1.0),
                Task::new(1.0, 1.0),
            ],
        )
        .unwrap();
        let s = Schedule::new(vec![
            Assignment::new(MachineId(0), 0.0),
            Assignment::new(MachineId(1), 0.0),
            Assignment::new(MachineId(1), 1.0),
        ]);
        (inst, s)
    }

    #[test]
    fn renders_rows_per_machine() {
        let (inst, s) = demo();
        let art = render(&s, &inst, &GanttOptions::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3); // ruler + 2 machines
        assert!(lines[1].starts_with("M1"));
        assert!(lines[2].starts_with("M2"));
        // M1 runs T1 for 2 cells; M2 runs T2 then T3.
        assert!(lines[1].contains("11"));
        assert!(lines[2].contains("23"));
    }

    #[test]
    fn idle_cells_are_dots() {
        let inst = Instance::unrestricted(1, vec![Task::new(2.0, 1.0)]).unwrap();
        let s = Schedule::new(vec![Assignment::new(MachineId(0), 2.0)]);
        let art = render(&s, &inst, &GanttOptions::default());
        let row = art.lines().nth(1).unwrap();
        assert!(row.contains(".."), "expected leading idle cells in {row:?}");
        assert!(row.ends_with('1'));
    }

    #[test]
    fn until_extends_window() {
        let (inst, s) = demo();
        let art = render(
            &s,
            &inst,
            &GanttOptions {
                until: Some(4.0),
                ..Default::default()
            },
        );
        let row = art.lines().nth(1).unwrap();
        // 4 cells after the label.
        assert_eq!(row.split_whitespace().last().unwrap().len(), 4);
    }

    #[test]
    fn unnumbered_uses_hash() {
        let (inst, s) = demo();
        let art = render(
            &s,
            &inst,
            &GanttOptions {
                numbered: false,
                ..Default::default()
            },
        );
        assert!(art.contains('#'));
    }

    #[test]
    fn empty_schedule_renders_single_idle_cell() {
        let inst = Instance::unrestricted(1, vec![]).unwrap();
        let s = Schedule::new(vec![]);
        let art = render(&s, &inst, &GanttOptions::default());
        assert!(art.lines().nth(1).unwrap().ends_with('.'));
    }
}
