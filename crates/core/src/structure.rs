//! Structured processing-set families (Section 3 of the paper).
//!
//! The paper studies four structures over the *family* of processing sets
//! `{M₁, …, Mₙ}`:
//!
//! - **interval**: every set is a contiguous interval of machine indices,
//!   or a wrap-around ring segment `{j ≤ a} ∪ {j ≥ b}`;
//! - **nested**: any two sets are disjoint or one contains the other
//!   (a laminar family);
//! - **inclusive**: any two sets are comparable by inclusion (a chain);
//! - **disjoint**: any two sets are equal or disjoint (a partition-like
//!   family).
//!
//! The reduction graph (paper Figure 1) is:
//!
//! ```text
//! inclusive ─┐
//!            ├─> nested ──> interval ──> general
//! disjoint ──┘
//! ```
//!
//! inclusive and disjoint families are nested; every nested family can be
//! turned into an interval family by reordering machines
//! ([`nested_to_interval_order`] computes such a permutation).

use crate::procset::ProcSet;

/// The structure classes of the paper, ordered from most to least
/// constrained along the Figure 1 reduction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcSetStructure {
    /// Any two sets comparable by inclusion (`Mᵢ ⊆ Mⱼ` or `Mⱼ ⊆ Mᵢ`).
    Inclusive,
    /// Any two sets equal or disjoint.
    Disjoint,
    /// Any two sets disjoint or one included in the other (laminar).
    Nested,
    /// Every set is a (possibly wrap-around) interval of machine indices.
    Interval,
    /// No detected structure.
    General,
}

impl std::fmt::Display for ProcSetStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcSetStructure::Inclusive => "inclusive",
            ProcSetStructure::Disjoint => "disjoint",
            ProcSetStructure::Nested => "nested",
            ProcSetStructure::Interval => "interval",
            ProcSetStructure::General => "general",
        };
        f.write_str(s)
    }
}

/// Full classification of a family: which structure predicates hold.
///
/// Several predicates can hold simultaneously (e.g. a family of identical
/// sets is inclusive *and* disjoint *and* nested). [`StructureReport::most_specific`]
/// picks the strongest label for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructureReport {
    /// All sets pairwise comparable by inclusion.
    pub inclusive: bool,
    /// All sets pairwise equal-or-disjoint.
    pub disjoint: bool,
    /// Laminar family.
    pub nested: bool,
    /// All sets are contiguous intervals (no machine reordering applied).
    pub interval: bool,
    /// All sets are contiguous or wrap-around ring intervals.
    pub ring_interval: bool,
    /// All sets share one size `k` (`Some(k)`), or `None` if sizes vary
    /// or the family is empty.
    pub fixed_size: Option<usize>,
}

impl StructureReport {
    /// The strongest structure label that applies (Figure 1 order).
    pub fn most_specific(&self) -> ProcSetStructure {
        if self.inclusive {
            ProcSetStructure::Inclusive
        } else if self.disjoint {
            ProcSetStructure::Disjoint
        } else if self.nested {
            ProcSetStructure::Nested
        } else if self.interval || self.ring_interval {
            ProcSetStructure::Interval
        } else {
            ProcSetStructure::General
        }
    }
}

/// True when any two sets of the family are comparable by inclusion.
/// `O(n log n + n·m)` after sorting by size: on a chain, sorting by size
/// makes each set a subset of the next equal-or-larger one.
pub fn is_inclusive(sets: &[ProcSet]) -> bool {
    let mut order: Vec<&ProcSet> = sets.iter().collect();
    order.sort_by_key(|s| s.len());
    order.windows(2).all(|w| w[0].is_subset_of(w[1]))
}

/// True when any two sets of the family are equal or disjoint.
pub fn is_disjoint_family(sets: &[ProcSet]) -> bool {
    // Deduplicate (families repeat sets heavily in key-value workloads),
    // then check pairwise disjointness of the distinct sets via a machine
    // ownership map: each machine may belong to at most one distinct set.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    let mut owner: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (i, s) in distinct.iter().enumerate() {
        for &j in s.as_slice() {
            if let Some(&prev) = owner.get(&j) {
                if prev != i {
                    return false;
                }
            }
            owner.insert(j, i);
        }
    }
    true
}

/// True when the family is laminar: any two sets are disjoint or one
/// contains the other.
pub fn is_nested(sets: &[ProcSet]) -> bool {
    // Sort by decreasing size; each set must be contained in, or disjoint
    // from, every earlier (larger-or-equal) set. Pairwise check is O(n²·m)
    // worst case but families are deduplicated first, and distinct laminar
    // families over m machines have at most 2m sets.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    distinct.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for i in 0..distinct.len() {
        for j in (i + 1)..distinct.len() {
            let (big, small) = (distinct[i], distinct[j]);
            if !small.is_subset_of(big) && !small.is_disjoint_from(big) {
                return false;
            }
        }
    }
    true
}

/// True when every set is a contiguous interval of machine indices
/// (no wrap-around).
pub fn is_interval_family(sets: &[ProcSet]) -> bool {
    sets.iter().all(|s| s.as_contiguous_interval().is_some())
}

/// True when every set is a contiguous or wrap-around ring interval on a
/// ring of `m` machines (the paper's full interval definition).
pub fn is_ring_interval_family(sets: &[ProcSet], m: usize) -> bool {
    sets.iter().all(|s| s.as_ring_interval(m).is_some())
}

/// If all sets have the same size `k`, returns `Some(k)`.
pub fn fixed_size(sets: &[ProcSet]) -> Option<usize> {
    let first = sets.first()?.len();
    sets.iter().all(|s| s.len() == first).then_some(first)
}

/// Classifies a family against every predicate at once.
///
/// ```
/// use flowsched_core::ProcSet;
/// use flowsched_core::structure::{classify, ProcSetStructure};
///
/// let fam = [ProcSet::new(vec![0]), ProcSet::new(vec![0, 1])];
/// let report = classify(&fam, 4);
/// assert!(report.inclusive && report.nested); // Figure 1 edge
/// assert_eq!(report.most_specific(), ProcSetStructure::Inclusive);
/// ```
pub fn classify(sets: &[ProcSet], m: usize) -> StructureReport {
    StructureReport {
        inclusive: is_inclusive(sets),
        disjoint: is_disjoint_family(sets),
        nested: is_nested(sets),
        interval: is_interval_family(sets),
        ring_interval: is_ring_interval_family(sets, m),
        fixed_size: fixed_size(sets),
    }
}

/// Computes a machine permutation `perm` (new index = `perm[old index]`)
/// under which every set of a *nested* family becomes a contiguous
/// interval — the constructive content of the paper's remark that nested
/// (hence inclusive and disjoint) families are special cases of interval
/// families.
///
/// The laminar forest is traversed depth-first; machines inside each node
/// are laid out consecutively. Machines not mentioned by any set keep
/// arbitrary trailing positions.
///
/// Returns `None` if the family is not nested.
pub fn nested_to_interval_order(sets: &[ProcSet], m: usize) -> Option<Vec<usize>> {
    if !is_nested(sets) {
        return None;
    }
    // Distinct sets, sorted by decreasing size → parents before children.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    distinct.sort_by_key(|s| std::cmp::Reverse(s.len()));

    // Build the laminar forest: parent of a set is the smallest strict
    // superset among the distinct sets.
    let n = distinct.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..n {
        // Candidate parents appear earlier in the size-sorted order; the
        // closest (smallest) strict superset is the last one that contains
        // set i, scanning from i-1 down to 0.
        let mut parent = None;
        for j in (0..i).rev() {
            if distinct[i].is_subset_of(distinct[j]) && distinct[i] != distinct[j] {
                parent = Some(j);
                break;
            }
        }
        // Equal-size duplicates were removed; equal sets cannot appear.
        match parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }

    let mut perm = vec![usize::MAX; m];
    let mut next = 0usize;

    // Depth-first layout: assign children's machines first (each child is
    // a sub-interval), then the machines owned directly by this node.
    fn layout(
        node: usize,
        distinct: &[&ProcSet],
        children: &[Vec<usize>],
        perm: &mut [usize],
        next: &mut usize,
    ) {
        for &c in &children[node] {
            layout(c, distinct, children, perm, next);
        }
        for &machine in distinct[node].as_slice() {
            if perm[machine] == usize::MAX {
                perm[machine] = *next;
                *next += 1;
            }
        }
    }
    for &r in &roots {
        layout(r, &distinct, &children, &mut perm, &mut next);
    }
    // Unmentioned machines go last.
    for slot in perm.iter_mut() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, m);
    Some(perm)
}

/// Applies a machine permutation (`new = perm[old]`) to a family,
/// producing the renamed sets.
pub fn apply_machine_permutation(sets: &[ProcSet], perm: &[usize]) -> Vec<ProcSet> {
    sets.iter()
        .map(|s| s.as_slice().iter().map(|&j| perm[j]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: &[usize]) -> ProcSet {
        ProcSet::new(v.to_vec())
    }

    #[test]
    fn inclusive_chain_detected() {
        let fam = [ps(&[0]), ps(&[0, 1]), ps(&[0, 1, 2, 3])];
        assert!(is_inclusive(&fam));
        assert!(is_nested(&fam));
    }

    #[test]
    fn non_inclusive_detected() {
        let fam = [ps(&[0, 1]), ps(&[2, 3])];
        assert!(!is_inclusive(&fam));
        assert!(is_disjoint_family(&fam));
        assert!(is_nested(&fam));
    }

    #[test]
    fn disjoint_allows_repeats() {
        let fam = [ps(&[0, 1]), ps(&[0, 1]), ps(&[2])];
        assert!(is_disjoint_family(&fam));
    }

    #[test]
    fn overlapping_not_disjoint() {
        let fam = [ps(&[0, 1]), ps(&[1, 2])];
        assert!(!is_disjoint_family(&fam));
        assert!(!is_nested(&fam));
    }

    #[test]
    fn nested_laminar_family() {
        let fam = [
            ps(&[0, 1, 2, 3]),
            ps(&[0, 1]),
            ps(&[2, 3]),
            ps(&[0]),
            ps(&[2]),
        ];
        assert!(is_nested(&fam));
        assert!(!is_inclusive(&fam));
        assert!(!is_disjoint_family(&fam));
    }

    #[test]
    fn interval_family_detection() {
        let fam = [ps(&[0, 1, 2]), ps(&[3, 4])];
        assert!(is_interval_family(&fam));
        let fam2 = [ps(&[0, 2])];
        assert!(!is_interval_family(&fam2));
    }

    #[test]
    fn ring_family_accepts_wraparound() {
        let fam = [
            ProcSet::ring_interval(4, 3, 6),
            ProcSet::ring_interval(0, 3, 6),
        ];
        assert!(is_ring_interval_family(&fam, 6));
        assert!(!is_interval_family(&fam)); // {4,5,0} is not contiguous
    }

    #[test]
    fn fixed_size_detection() {
        assert_eq!(fixed_size(&[ps(&[0, 1]), ps(&[2, 3])]), Some(2));
        assert_eq!(fixed_size(&[ps(&[0, 1]), ps(&[2])]), None);
        assert_eq!(fixed_size(&[]), None);
    }

    #[test]
    fn classify_reports_reduction_graph() {
        // Inclusive families are nested (Figure 1 edge).
        let fam = [ps(&[0]), ps(&[0, 1])];
        let rep = classify(&fam, 4);
        assert!(rep.inclusive && rep.nested);
        assert_eq!(rep.most_specific(), ProcSetStructure::Inclusive);

        // Disjoint families are nested.
        let fam = [ps(&[0, 1]), ps(&[2, 3])];
        let rep = classify(&fam, 4);
        assert!(rep.disjoint && rep.nested);
        assert_eq!(rep.most_specific(), ProcSetStructure::Disjoint);

        // General family.
        let fam = [ps(&[0, 2]), ps(&[1, 2])];
        let rep = classify(&fam, 4);
        assert_eq!(rep.most_specific(), ProcSetStructure::General);
    }

    #[test]
    fn nested_to_interval_reorders() {
        // A laminar family over 6 machines that is NOT an interval family
        // under the identity order.
        let fam = [ps(&[0, 3, 5]), ps(&[0, 5]), ps(&[1, 2]), ps(&[2])];
        assert!(is_nested(&fam));
        assert!(!is_interval_family(&fam));
        let perm = nested_to_interval_order(&fam, 6).unwrap();
        let renamed = apply_machine_permutation(&fam, &perm);
        assert!(
            is_interval_family(&renamed),
            "renamed family {renamed:?} not intervals"
        );
        // The permutation must be a bijection on 0..6.
        let mut seen = [false; 6];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn nested_to_interval_rejects_non_nested() {
        let fam = [ps(&[0, 1]), ps(&[1, 2])];
        assert!(nested_to_interval_order(&fam, 3).is_none());
    }

    #[test]
    fn nested_to_interval_handles_duplicates_and_unused_machines() {
        let fam = [ps(&[4, 2]), ps(&[4, 2]), ps(&[4])];
        let perm = nested_to_interval_order(&fam, 7).unwrap();
        let renamed = apply_machine_permutation(&fam, &perm);
        assert!(is_interval_family(&renamed));
    }

    #[test]
    fn empty_family_is_everything() {
        let fam: [ProcSet; 0] = [];
        assert!(is_inclusive(&fam));
        assert!(is_disjoint_family(&fam));
        assert!(is_nested(&fam));
        assert!(is_interval_family(&fam));
    }
}
