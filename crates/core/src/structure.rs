//! Structured processing-set families (Section 3 of the paper).
//!
//! The paper studies four structures over the *family* of processing sets
//! `{M₁, …, Mₙ}`:
//!
//! - **interval**: every set is a contiguous interval of machine indices,
//!   or a wrap-around ring segment `{j ≤ a} ∪ {j ≥ b}`;
//! - **nested**: any two sets are disjoint or one contains the other
//!   (a laminar family);
//! - **inclusive**: any two sets are comparable by inclusion (a chain);
//! - **disjoint**: any two sets are equal or disjoint (a partition-like
//!   family).
//!
//! The reduction graph (paper Figure 1) is:
//!
//! ```text
//! inclusive ─┐
//!            ├─> nested ──> interval ──> general
//! disjoint ──┘
//! ```
//!
//! inclusive and disjoint families are nested; every nested family can be
//! turned into an interval family by reordering machines
//! ([`nested_to_interval_order`] computes such a permutation).

use crate::compact::ProcSetRef;
use crate::procset::ProcSet;

/// The structure classes of the paper, ordered from most to least
/// constrained along the Figure 1 reduction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcSetStructure {
    /// Any two sets comparable by inclusion (`Mᵢ ⊆ Mⱼ` or `Mⱼ ⊆ Mᵢ`).
    Inclusive,
    /// Any two sets equal or disjoint.
    Disjoint,
    /// Any two sets disjoint or one included in the other (laminar).
    Nested,
    /// Every set is a (possibly wrap-around) interval of machine indices.
    Interval,
    /// No detected structure.
    General,
}

impl std::fmt::Display for ProcSetStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcSetStructure::Inclusive => "inclusive",
            ProcSetStructure::Disjoint => "disjoint",
            ProcSetStructure::Nested => "nested",
            ProcSetStructure::Interval => "interval",
            ProcSetStructure::General => "general",
        };
        f.write_str(s)
    }
}

/// Full classification of a family: which structure predicates hold.
///
/// Several predicates can hold simultaneously (e.g. a family of identical
/// sets is inclusive *and* disjoint *and* nested). [`StructureReport::most_specific`]
/// picks the strongest label for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructureReport {
    /// All sets pairwise comparable by inclusion.
    pub inclusive: bool,
    /// All sets pairwise equal-or-disjoint.
    pub disjoint: bool,
    /// Laminar family.
    pub nested: bool,
    /// All sets are contiguous intervals (no machine reordering applied).
    pub interval: bool,
    /// All sets are contiguous or wrap-around ring intervals.
    pub ring_interval: bool,
    /// All sets share one size `k` (`Some(k)`), or `None` if sizes vary
    /// or the family is empty.
    pub fixed_size: Option<usize>,
}

impl StructureReport {
    /// The strongest structure label that applies (Figure 1 order).
    pub fn most_specific(&self) -> ProcSetStructure {
        if self.inclusive {
            ProcSetStructure::Inclusive
        } else if self.disjoint {
            ProcSetStructure::Disjoint
        } else if self.nested {
            ProcSetStructure::Nested
        } else if self.interval || self.ring_interval {
            ProcSetStructure::Interval
        } else {
            ProcSetStructure::General
        }
    }
}

/// True when any two sets of the family are comparable by inclusion.
/// `O(n log n + n·m)` after sorting by size: on a chain, sorting by size
/// makes each set a subset of the next equal-or-larger one.
pub fn is_inclusive(sets: &[ProcSet]) -> bool {
    let mut order: Vec<&ProcSet> = sets.iter().collect();
    order.sort_by_key(|s| s.len());
    order.windows(2).all(|w| w[0].is_subset_of(w[1]))
}

/// True when any two sets of the family are equal or disjoint.
pub fn is_disjoint_family(sets: &[ProcSet]) -> bool {
    // Deduplicate (families repeat sets heavily in key-value workloads),
    // then check pairwise disjointness of the distinct sets via a machine
    // ownership map: each machine may belong to at most one distinct set.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    let mut owner: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (i, s) in distinct.iter().enumerate() {
        for &j in s.as_slice() {
            if let Some(&prev) = owner.get(&j) {
                if prev != i {
                    return false;
                }
            }
            owner.insert(j, i);
        }
    }
    true
}

/// True when the family is laminar: any two sets are disjoint or one
/// contains the other.
pub fn is_nested(sets: &[ProcSet]) -> bool {
    // Sort by decreasing size; each set must be contained in, or disjoint
    // from, every earlier (larger-or-equal) set. Pairwise check is O(n²·m)
    // worst case but families are deduplicated first, and distinct laminar
    // families over m machines have at most 2m sets.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    distinct.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for i in 0..distinct.len() {
        for j in (i + 1)..distinct.len() {
            let (big, small) = (distinct[i], distinct[j]);
            if !small.is_subset_of(big) && !small.is_disjoint_from(big) {
                return false;
            }
        }
    }
    true
}

/// True when every set is a contiguous interval of machine indices
/// (no wrap-around).
pub fn is_interval_family(sets: &[ProcSet]) -> bool {
    sets.iter().all(|s| s.as_contiguous_interval().is_some())
}

/// True when every set is a contiguous or wrap-around ring interval on a
/// ring of `m` machines (the paper's full interval definition).
pub fn is_ring_interval_family(sets: &[ProcSet], m: usize) -> bool {
    sets.iter().all(|s| s.as_ring_interval(m).is_some())
}

/// If all sets have the same size `k`, returns `Some(k)`.
pub fn fixed_size(sets: &[ProcSet]) -> Option<usize> {
    let first = sets.first()?.len();
    sets.iter().all(|s| s.len() == first).then_some(first)
}

/// Classifies a family against every predicate at once.
///
/// ```
/// use flowsched_core::ProcSet;
/// use flowsched_core::structure::{classify, ProcSetStructure};
///
/// let fam = [ProcSet::new(vec![0]), ProcSet::new(vec![0, 1])];
/// let report = classify(&fam, 4);
/// assert!(report.inclusive && report.nested); // Figure 1 edge
/// assert_eq!(report.most_specific(), ProcSetStructure::Inclusive);
/// ```
pub fn classify(sets: &[ProcSet], m: usize) -> StructureReport {
    StructureReport {
        inclusive: is_inclusive(sets),
        disjoint: is_disjoint_family(sets),
        nested: is_nested(sets),
        interval: is_interval_family(sets),
        ring_interval: is_ring_interval_family(sets, m),
        fixed_size: fixed_size(sets),
    }
}

/// Distinct-set budget of the [`StructureClassifier`]: once a stream has
/// shown more than this many *distinct* explicit member sets, the
/// pairwise predicates (inclusive / disjoint / nested) are declared
/// failed rather than tracked further — bounding the per-arrival cost.
/// Structured workloads (the paper's interval, inclusive, disjoint
/// families) reuse a small palette of sets, so the cap only bites on
/// families that were headed to `General` anyway.
pub const CLASSIFIER_DISTINCT_CAP: usize = 64;

/// How a new set relates to a previously-seen distinct set — the
/// pairwise lattice step of the incremental classifier.
enum Relation {
    /// No common machine.
    Disjoint,
    /// One set contains the other (strictly, since equal sets are
    /// deduplicated before relating).
    Contained,
    /// Proper overlap: common machines but neither contains the other.
    Overlap,
}

/// Merge-walk over two sorted member lists.
fn relate(a: &[usize], b: &[usize]) -> Relation {
    let (mut i, mut j, mut common) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    if common == 0 {
        Relation::Disjoint
    } else if common == a.len() || common == b.len() {
        Relation::Contained
    } else {
        Relation::Overlap
    }
}

/// Shape flags of one explicit member slice: `(interval, ring_interval)`.
/// The slice is sorted strictly increasing (a [`ProcSetRef::Explicit`]
/// invariant).
fn explicit_shape(slice: &[usize], m: usize) -> (bool, bool) {
    let (first, last) = (slice[0], slice[slice.len() - 1]);
    if last - first + 1 == slice.len() {
        return (true, true);
    }
    // A wrap-around ring segment reads as a prefix run, one gap, and a
    // suffix run ending at m−1.
    if first == 0 && last == m - 1 {
        let gaps = slice.windows(2).filter(|w| w[1] != w[0] + 1).count();
        if gaps == 1 {
            return (false, true);
        }
    }
    (false, false)
}

/// Incremental, online counterpart of [`classify`]: a running
/// interval-hull / width / disjointness lattice over the
/// [`ProcSetRef`]s a stream has shown so far, designed for the dispatch
/// hot path.
///
/// Per arrival the cost is O(|set|) for the shape and width checks plus
/// — only while some pairwise predicate is still alive — one merge-walk
/// against each previously-seen *distinct* set (capped at
/// [`CLASSIFIER_DISTINCT_CAP`]; structured families reuse a small
/// palette, so almost every arrival is a table hit and does no pairwise
/// work at all). Nothing is ever re-scanned: every flag is monotone
/// (starts `true`, can only fall), so [`report`](Self::report) after
/// `n` observations equals the batch [`classify`] of those `n` sets,
/// modulo the cap.
///
/// The only non-monotone report field is `fixed_size`, which can move
/// `Some(k) → None` when a second width appears — which is why
/// consumers watch [`revision`](Self::revision) rather than individual
/// flags: it bumps exactly when the report changes in any way.
#[derive(Debug, Clone)]
pub struct StructureClassifier {
    m: usize,
    seen: u64,
    revision: u64,
    inclusive: bool,
    disjoint: bool,
    nested: bool,
    interval: bool,
    ring_interval: bool,
    size: Option<usize>,
    size_varies: bool,
    /// Distinct member sets seen so far (sorted, materialized), live
    /// only while a pairwise predicate still holds.
    distinct: Vec<Vec<usize>>,
    scratch: Vec<usize>,
}

impl StructureClassifier {
    /// Classifier for streams over `m` machines; before any observation
    /// the report matches the batch classification of an empty family
    /// (all predicates hold, no fixed size).
    pub fn new(m: usize) -> Self {
        StructureClassifier {
            m,
            seen: 0,
            revision: 0,
            inclusive: true,
            disjoint: true,
            nested: true,
            interval: true,
            ring_interval: true,
            size: None,
            size_varies: false,
            distinct: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of sets observed so far.
    pub fn arrivals(&self) -> u64 {
        self.seen
    }

    /// Bumped every time [`report`](Self::report) changes — consumers
    /// re-resolve on a revision change instead of diffing reports.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The current classification of everything observed so far.
    pub fn report(&self) -> StructureReport {
        StructureReport {
            inclusive: self.inclusive,
            disjoint: self.disjoint,
            nested: self.nested,
            interval: self.interval,
            ring_interval: self.ring_interval,
            fixed_size: if self.size_varies { None } else { self.size },
        }
    }

    /// Folds one observed processing set into the lattice.
    pub fn observe(&mut self, set: ProcSetRef<'_>) {
        let before = self.report();
        self.seen += 1;
        // Width lattice: one width → Some(k); a second width is final.
        let len = set.len();
        match self.size {
            None if !self.size_varies => self.size = Some(len),
            Some(k) if k != len => {
                self.size = None;
                self.size_varies = true;
            }
            _ => {}
        }
        // Shape lattice.
        let (iv, ring) = match set {
            ProcSetRef::Interval { .. } | ProcSetRef::Prefix { .. } => (true, true),
            // Ring views are always genuinely wrapping (non-wrapping
            // rings normalize to Interval), so they break plain
            // interval-ness but keep the ring family.
            ProcSetRef::Ring { .. } => (false, true),
            ProcSetRef::Explicit(slice) => explicit_shape(slice, self.m),
        };
        self.interval &= iv;
        self.ring_interval &= ring;
        // Pairwise lattice, only while something is left to lose.
        if self.inclusive || self.disjoint || self.nested {
            self.scratch.clear();
            self.scratch.extend(set.iter());
            let duplicate = self.distinct.contains(&self.scratch);
            if !duplicate {
                if self.distinct.len() >= CLASSIFIER_DISTINCT_CAP {
                    self.inclusive = false;
                    self.disjoint = false;
                    self.nested = false;
                } else {
                    for d in &self.distinct {
                        match relate(d, &self.scratch) {
                            Relation::Disjoint => self.inclusive = false,
                            Relation::Contained => self.disjoint = false,
                            Relation::Overlap => {
                                self.inclusive = false;
                                self.disjoint = false;
                                self.nested = false;
                            }
                        }
                    }
                    let materialized = std::mem::take(&mut self.scratch);
                    self.distinct.push(materialized);
                }
            }
            if !(self.inclusive || self.disjoint || self.nested) {
                // Nothing left for the table to decide — free it.
                self.distinct = Vec::new();
            }
        }
        if self.report() != before {
            self.revision += 1;
        }
    }
}

/// Computes a machine permutation `perm` (new index = `perm[old index]`)
/// under which every set of a *nested* family becomes a contiguous
/// interval — the constructive content of the paper's remark that nested
/// (hence inclusive and disjoint) families are special cases of interval
/// families.
///
/// The laminar forest is traversed depth-first; machines inside each node
/// are laid out consecutively. Machines not mentioned by any set keep
/// arbitrary trailing positions.
///
/// Returns `None` if the family is not nested.
pub fn nested_to_interval_order(sets: &[ProcSet], m: usize) -> Option<Vec<usize>> {
    if !is_nested(sets) {
        return None;
    }
    // Distinct sets, sorted by decreasing size → parents before children.
    let mut distinct: Vec<&ProcSet> = Vec::new();
    'outer: for s in sets {
        for d in &distinct {
            if *d == s {
                continue 'outer;
            }
        }
        distinct.push(s);
    }
    distinct.sort_by_key(|s| std::cmp::Reverse(s.len()));

    // Build the laminar forest: parent of a set is the smallest strict
    // superset among the distinct sets.
    let n = distinct.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for i in 0..n {
        // Candidate parents appear earlier in the size-sorted order; the
        // closest (smallest) strict superset is the last one that contains
        // set i, scanning from i-1 down to 0.
        let mut parent = None;
        for j in (0..i).rev() {
            if distinct[i].is_subset_of(distinct[j]) && distinct[i] != distinct[j] {
                parent = Some(j);
                break;
            }
        }
        // Equal-size duplicates were removed; equal sets cannot appear.
        match parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }

    let mut perm = vec![usize::MAX; m];
    let mut next = 0usize;

    // Depth-first layout: assign children's machines first (each child is
    // a sub-interval), then the machines owned directly by this node.
    fn layout(
        node: usize,
        distinct: &[&ProcSet],
        children: &[Vec<usize>],
        perm: &mut [usize],
        next: &mut usize,
    ) {
        for &c in &children[node] {
            layout(c, distinct, children, perm, next);
        }
        for &machine in distinct[node].as_slice() {
            if perm[machine] == usize::MAX {
                perm[machine] = *next;
                *next += 1;
            }
        }
    }
    for &r in &roots {
        layout(r, &distinct, &children, &mut perm, &mut next);
    }
    // Unmentioned machines go last.
    for slot in perm.iter_mut() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    debug_assert_eq!(next, m);
    Some(perm)
}

/// Applies a machine permutation (`new = perm[old]`) to a family,
/// producing the renamed sets.
pub fn apply_machine_permutation(sets: &[ProcSet], perm: &[usize]) -> Vec<ProcSet> {
    sets.iter()
        .map(|s| s.as_slice().iter().map(|&j| perm[j]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: &[usize]) -> ProcSet {
        ProcSet::new(v.to_vec())
    }

    #[test]
    fn inclusive_chain_detected() {
        let fam = [ps(&[0]), ps(&[0, 1]), ps(&[0, 1, 2, 3])];
        assert!(is_inclusive(&fam));
        assert!(is_nested(&fam));
    }

    #[test]
    fn non_inclusive_detected() {
        let fam = [ps(&[0, 1]), ps(&[2, 3])];
        assert!(!is_inclusive(&fam));
        assert!(is_disjoint_family(&fam));
        assert!(is_nested(&fam));
    }

    #[test]
    fn disjoint_allows_repeats() {
        let fam = [ps(&[0, 1]), ps(&[0, 1]), ps(&[2])];
        assert!(is_disjoint_family(&fam));
    }

    #[test]
    fn overlapping_not_disjoint() {
        let fam = [ps(&[0, 1]), ps(&[1, 2])];
        assert!(!is_disjoint_family(&fam));
        assert!(!is_nested(&fam));
    }

    #[test]
    fn nested_laminar_family() {
        let fam = [
            ps(&[0, 1, 2, 3]),
            ps(&[0, 1]),
            ps(&[2, 3]),
            ps(&[0]),
            ps(&[2]),
        ];
        assert!(is_nested(&fam));
        assert!(!is_inclusive(&fam));
        assert!(!is_disjoint_family(&fam));
    }

    #[test]
    fn interval_family_detection() {
        let fam = [ps(&[0, 1, 2]), ps(&[3, 4])];
        assert!(is_interval_family(&fam));
        let fam2 = [ps(&[0, 2])];
        assert!(!is_interval_family(&fam2));
    }

    #[test]
    fn ring_family_accepts_wraparound() {
        let fam = [
            ProcSet::ring_interval(4, 3, 6),
            ProcSet::ring_interval(0, 3, 6),
        ];
        assert!(is_ring_interval_family(&fam, 6));
        assert!(!is_interval_family(&fam)); // {4,5,0} is not contiguous
    }

    #[test]
    fn fixed_size_detection() {
        assert_eq!(fixed_size(&[ps(&[0, 1]), ps(&[2, 3])]), Some(2));
        assert_eq!(fixed_size(&[ps(&[0, 1]), ps(&[2])]), None);
        assert_eq!(fixed_size(&[]), None);
    }

    #[test]
    fn classify_reports_reduction_graph() {
        // Inclusive families are nested (Figure 1 edge).
        let fam = [ps(&[0]), ps(&[0, 1])];
        let rep = classify(&fam, 4);
        assert!(rep.inclusive && rep.nested);
        assert_eq!(rep.most_specific(), ProcSetStructure::Inclusive);

        // Disjoint families are nested.
        let fam = [ps(&[0, 1]), ps(&[2, 3])];
        let rep = classify(&fam, 4);
        assert!(rep.disjoint && rep.nested);
        assert_eq!(rep.most_specific(), ProcSetStructure::Disjoint);

        // General family.
        let fam = [ps(&[0, 2]), ps(&[1, 2])];
        let rep = classify(&fam, 4);
        assert_eq!(rep.most_specific(), ProcSetStructure::General);
    }

    #[test]
    fn nested_to_interval_reorders() {
        // A laminar family over 6 machines that is NOT an interval family
        // under the identity order.
        let fam = [ps(&[0, 3, 5]), ps(&[0, 5]), ps(&[1, 2]), ps(&[2])];
        assert!(is_nested(&fam));
        assert!(!is_interval_family(&fam));
        let perm = nested_to_interval_order(&fam, 6).unwrap();
        let renamed = apply_machine_permutation(&fam, &perm);
        assert!(
            is_interval_family(&renamed),
            "renamed family {renamed:?} not intervals"
        );
        // The permutation must be a bijection on 0..6.
        let mut seen = [false; 6];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn nested_to_interval_rejects_non_nested() {
        let fam = [ps(&[0, 1]), ps(&[1, 2])];
        assert!(nested_to_interval_order(&fam, 3).is_none());
    }

    #[test]
    fn nested_to_interval_handles_duplicates_and_unused_machines() {
        let fam = [ps(&[4, 2]), ps(&[4, 2]), ps(&[4])];
        let perm = nested_to_interval_order(&fam, 7).unwrap();
        let renamed = apply_machine_permutation(&fam, &perm);
        assert!(is_interval_family(&renamed));
    }

    #[test]
    fn empty_family_is_everything() {
        let fam: [ProcSet; 0] = [];
        assert!(is_inclusive(&fam));
        assert!(is_disjoint_family(&fam));
        assert!(is_nested(&fam));
        assert!(is_interval_family(&fam));
    }

    /// Feeds a family set-by-set and checks the incremental report
    /// equals the batch classification after every prefix.
    fn check_incremental_matches_batch(fam: &[ProcSet], m: usize) {
        let mut cls = StructureClassifier::new(m);
        assert_eq!(cls.report(), classify(&[], m), "empty prefix");
        for i in 0..fam.len() {
            cls.observe(fam[i].view());
            assert_eq!(
                cls.report(),
                classify(&fam[..=i], m),
                "prefix of {} sets of {fam:?}",
                i + 1
            );
        }
        assert_eq!(cls.arrivals(), fam.len() as u64);
    }

    #[test]
    fn classifier_matches_batch_on_representative_families() {
        // Inclusive chain (with repeats).
        check_incremental_matches_batch(&[ps(&[0]), ps(&[0, 1]), ps(&[0]), ps(&[0, 1, 2, 3])], 6);
        // Disjoint blocks.
        check_incremental_matches_batch(&[ps(&[0, 1]), ps(&[2, 3]), ps(&[0, 1]), ps(&[4])], 6);
        // Laminar but neither inclusive nor disjoint.
        check_incremental_matches_batch(
            &[ps(&[0, 1, 2, 3]), ps(&[0, 1]), ps(&[2, 3]), ps(&[0])],
            6,
        );
        // Intervals that overlap (kills the pairwise predicates, keeps
        // interval-ness).
        check_incremental_matches_batch(&[ps(&[0, 1, 2]), ps(&[1, 2, 3]), ps(&[2, 3, 4])], 6);
        // Ring segments: wrap-around kills interval, keeps ring.
        check_incremental_matches_batch(
            &[
                ProcSet::ring_interval(4, 3, 6),
                ProcSet::ring_interval(0, 3, 6),
            ],
            6,
        );
        // Structure break mid-stream: disjoint blocks, then an
        // overlapping straggler, then scattered sets.
        check_incremental_matches_batch(
            &[ps(&[0, 1]), ps(&[2, 3]), ps(&[1, 2]), ps(&[0, 3, 5])],
            6,
        );
        // Width change only: fixed_size Some(2) → None.
        check_incremental_matches_batch(&[ps(&[0, 1]), ps(&[2, 3]), ps(&[4])], 6);
    }

    #[test]
    fn classifier_revision_bumps_exactly_on_report_changes() {
        let mut cls = StructureClassifier::new(8);
        cls.observe(ps(&[0, 1]).view());
        let r1 = cls.revision(); // fixed_size appeared
        assert!(r1 > 0);
        cls.observe(ps(&[0, 1]).view()); // duplicate: nothing changes
        assert_eq!(cls.revision(), r1);
        cls.observe(ps(&[2, 3]).view()); // inclusive falls
        let r2 = cls.revision();
        assert!(r2 > r1);
        cls.observe(ps(&[1, 2]).view()); // overlap: disjoint/nested fall
        assert!(cls.revision() > r2);
    }

    #[test]
    fn classifier_cap_fails_pairwise_predicates_closed() {
        // More distinct singletons than the cap: pairwise predicates
        // must come back false (fail-closed), shape flags survive.
        let mut cls = StructureClassifier::new(CLASSIFIER_DISTINCT_CAP + 8);
        for j in 0..=CLASSIFIER_DISTINCT_CAP {
            cls.observe(ps(&[j]).view());
        }
        let rep = cls.report();
        assert!(!rep.inclusive && !rep.disjoint && !rep.nested);
        assert!(rep.interval && rep.ring_interval);
        assert_eq!(rep.fixed_size, Some(1));
    }
}
