//! Scheduling instances: machines + released tasks + processing sets.

use crate::error::CoreError;
use crate::procset::ProcSet;
use crate::task::{Task, TaskId};
use crate::time::{time_cmp, Time};

/// A complete instance of `P | online-rᵢ, Mᵢ | Fmax`.
///
/// Tasks are indexed `0..n` and sorted by non-decreasing release time
/// (the paper's convention `i < j ⇒ rᵢ ≤ rⱼ`); online schedulers consume
/// them in index order. Each task has a processing set; an instance built
/// without explicit sets uses the full machine set (no restriction,
/// plain `P | online-rᵢ | Fmax`).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    m: usize,
    tasks: Vec<Task>,
    sets: Vec<ProcSet>,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// Validation enforces: at least one machine, finite non-negative
    /// releases sorted non-decreasingly, strictly positive processing
    /// times, and non-empty in-range processing sets (`sets.len()` must
    /// equal `tasks.len()`).
    pub fn new(m: usize, tasks: Vec<Task>, sets: Vec<ProcSet>) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::NoMachines);
        }
        assert_eq!(
            tasks.len(),
            sets.len(),
            "each task needs exactly one processing set"
        );
        for (i, t) in tasks.iter().enumerate() {
            if !t.release.is_finite() || t.release < 0.0 {
                return Err(CoreError::InvalidReleaseTime {
                    task: TaskId(i),
                    r: t.release,
                });
            }
            if !t.ptime.is_finite() || t.ptime <= 0.0 {
                return Err(CoreError::NonPositiveProcessingTime {
                    task: TaskId(i),
                    p: t.ptime,
                });
            }
            if i > 0 && t.release < tasks[i - 1].release {
                return Err(CoreError::UnsortedReleases {
                    first_violation: TaskId(i),
                });
            }
        }
        for (i, s) in sets.iter().enumerate() {
            if s.is_empty() {
                return Err(CoreError::EmptyProcessingSet { task: TaskId(i) });
            }
            if let Some(max) = s.max() {
                if max >= m {
                    return Err(CoreError::MachineOutOfRange {
                        task: TaskId(i),
                        machine: max,
                        m,
                    });
                }
            }
        }
        Ok(Instance { m, tasks, sets })
    }

    /// Builds an unrestricted instance (every task may run anywhere).
    pub fn unrestricted(m: usize, tasks: Vec<Task>) -> Result<Self, CoreError> {
        let full = ProcSet::full(m);
        let sets = vec![full; tasks.len()];
        Instance::new(m, tasks, sets)
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.m
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the instance has no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks, in release order.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The processing sets, aligned with [`tasks`](Self::tasks).
    #[inline]
    pub fn sets(&self) -> &[ProcSet] {
        &self.sets
    }

    /// Task accessor.
    #[inline]
    pub fn task(&self, id: TaskId) -> Task {
        self.tasks[id.0]
    }

    /// Processing-set accessor.
    #[inline]
    pub fn set(&self, id: TaskId) -> &ProcSet {
        &self.sets[id.0]
    }

    /// Iterates `(TaskId, Task, &ProcSet)` triples in release order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, Task, &ProcSet)> {
        self.tasks
            .iter()
            .zip(self.sets.iter())
            .enumerate()
            .map(|(i, (&t, s))| (TaskId(i), t, s))
    }

    /// Total work `Σ pᵢ`.
    pub fn total_work(&self) -> Time {
        self.tasks.iter().map(|t| t.ptime).sum()
    }

    /// Maximum processing time `p_max` over all tasks (0 for empty).
    pub fn pmax(&self) -> Time {
        self.tasks
            .iter()
            .map(|t| t.ptime)
            .max_by(|a, b| time_cmp(*a, *b))
            .unwrap_or(0.0)
    }

    /// `p_max,i`: the maximum processing time among the first `i+1` tasks,
    /// as used in the paper's Lemma 1. Returns the running prefix maxima.
    pub fn pmax_prefix(&self) -> Vec<Time> {
        let mut out = Vec::with_capacity(self.tasks.len());
        let mut cur: Time = 0.0;
        for t in &self.tasks {
            if t.ptime > cur {
                cur = t.ptime;
            }
            out.push(cur);
        }
        out
    }

    /// True when all tasks are unit tasks (`pᵢ = 1`).
    pub fn is_unit(&self) -> bool {
        self.tasks.iter().all(|t| t.ptime == 1.0)
    }

    /// True when no task is actually restricted (all sets are the full
    /// machine set).
    pub fn is_unrestricted(&self) -> bool {
        self.sets.iter().all(|s| s.len() == self.m)
    }

    /// Largest release time (0 for an empty instance).
    pub fn horizon(&self) -> Time {
        self.tasks.last().map(|t| t.release).unwrap_or(0.0)
    }

    /// The instance under a machine renaming (`new index = perm[old]`).
    /// Tasks and releases are untouched; only processing sets are
    /// renamed. Together with
    /// [`structure::nested_to_interval_order`](crate::structure::nested_to_interval_order)
    /// this realizes the paper's Figure 1 reduction constructively:
    /// scheduling a nested instance is scheduling an interval instance
    /// under the right machine names.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..m`.
    pub fn remap_machines(&self, perm: &[usize]) -> Instance {
        assert_eq!(perm.len(), self.m, "permutation must cover all machines");
        let mut seen = vec![false; self.m];
        for &p in perm {
            assert!(p < self.m && !seen[p], "not a permutation of 0..m");
            seen[p] = true;
        }
        let sets = crate::structure::apply_machine_permutation(&self.sets, perm);
        Instance::new(self.m, self.tasks.clone(), sets)
            .expect("renaming machines preserves validity")
    }
}

/// Incremental builder for [`Instance`]. Tasks may be pushed in any order;
/// [`build`](InstanceBuilder::build) sorts them by release time (stably,
/// preserving submission order among equal releases, which matters for
/// adversary constructions where same-instant ordering is significant).
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    m: usize,
    tasks: Vec<Task>,
    sets: Vec<ProcSet>,
}

impl InstanceBuilder {
    /// Starts a builder for an `m`-machine cluster.
    pub fn new(m: usize) -> Self {
        InstanceBuilder {
            m,
            tasks: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// Adds a task with an explicit processing set.
    pub fn push(&mut self, task: Task, set: ProcSet) -> &mut Self {
        self.tasks.push(task);
        self.sets.push(set);
        self
    }

    /// Adds an unrestricted task.
    pub fn push_unrestricted(&mut self, task: Task) -> &mut Self {
        let full = ProcSet::full(self.m);
        self.push(task, full)
    }

    /// Adds a unit task restricted to `set`, released at `release`.
    pub fn push_unit(&mut self, release: Time, set: ProcSet) -> &mut Self {
        self.push(Task::unit(release), set)
    }

    /// Number of tasks pushed so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task has been pushed.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalizes the instance: stable-sorts by release time and validates.
    pub fn build(self) -> Result<Instance, CoreError> {
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by(|&a, &b| time_cmp(self.tasks[a].release, self.tasks[b].release));
        let tasks: Vec<Task> = order.iter().map(|&i| self.tasks[i]).collect();
        let sets: Vec<ProcSet> = order.iter().map(|&i| self.sets[i].clone()).collect();
        Instance::new(self.m, tasks, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: Time, p: Time) -> Task {
        Task::new(r, p)
    }

    #[test]
    fn unrestricted_instance_builds() {
        let inst = Instance::unrestricted(3, vec![t(0.0, 1.0), t(1.0, 2.0)]).unwrap();
        assert_eq!(inst.machines(), 3);
        assert_eq!(inst.len(), 2);
        assert!(inst.is_unrestricted());
        assert_eq!(inst.total_work(), 3.0);
        assert_eq!(inst.pmax(), 2.0);
        assert_eq!(inst.horizon(), 1.0);
    }

    #[test]
    fn rejects_zero_machines() {
        assert_eq!(
            Instance::unrestricted(0, vec![]).unwrap_err(),
            CoreError::NoMachines
        );
    }

    #[test]
    fn rejects_unsorted_releases() {
        let e = Instance::unrestricted(2, vec![t(1.0, 1.0), t(0.5, 1.0)]).unwrap_err();
        assert_eq!(
            e,
            CoreError::UnsortedReleases {
                first_violation: TaskId(1)
            }
        );
    }

    #[test]
    fn rejects_nonpositive_ptime() {
        let e = Instance::unrestricted(2, vec![t(0.0, 0.0)]).unwrap_err();
        assert!(matches!(e, CoreError::NonPositiveProcessingTime { .. }));
    }

    #[test]
    fn rejects_negative_release() {
        let e = Instance::unrestricted(2, vec![t(-1.0, 1.0)]).unwrap_err();
        assert!(matches!(e, CoreError::InvalidReleaseTime { .. }));
    }

    #[test]
    fn rejects_empty_set() {
        let e = Instance::new(2, vec![t(0.0, 1.0)], vec![ProcSet::empty()]).unwrap_err();
        assert!(matches!(e, CoreError::EmptyProcessingSet { .. }));
    }

    #[test]
    fn rejects_out_of_range_machine() {
        let e = Instance::new(2, vec![t(0.0, 1.0)], vec![ProcSet::singleton(5)]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::MachineOutOfRange {
                machine: 5,
                m: 2,
                ..
            }
        ));
    }

    #[test]
    fn builder_sorts_stably() {
        let mut b = InstanceBuilder::new(4);
        // Two tasks at the same release, pushed in a meaningful order, plus
        // one earlier task pushed last.
        b.push_unit(2.0, ProcSet::singleton(0));
        b.push_unit(2.0, ProcSet::singleton(1));
        b.push_unit(1.0, ProcSet::singleton(2));
        let inst = b.build().unwrap();
        assert_eq!(inst.task(TaskId(0)).release, 1.0);
        assert_eq!(inst.set(TaskId(0)), &ProcSet::singleton(2));
        // Stability: among the 2.0 releases, push order preserved.
        assert_eq!(inst.set(TaskId(1)), &ProcSet::singleton(0));
        assert_eq!(inst.set(TaskId(2)), &ProcSet::singleton(1));
    }

    #[test]
    fn pmax_prefix_is_running_max() {
        let inst = Instance::unrestricted(2, vec![t(0.0, 2.0), t(1.0, 1.0), t(2.0, 5.0)]).unwrap();
        assert_eq!(inst.pmax_prefix(), vec![2.0, 2.0, 5.0]);
    }

    #[test]
    fn is_unit_detects_unit_instances() {
        let inst = Instance::unrestricted(2, vec![t(0.0, 1.0), t(3.0, 1.0)]).unwrap();
        assert!(inst.is_unit());
        let inst2 = Instance::unrestricted(2, vec![t(0.0, 1.5)]).unwrap();
        assert!(!inst2.is_unit());
    }

    #[test]
    fn iter_yields_aligned_triples() {
        let inst = Instance::new(
            3,
            vec![t(0.0, 1.0), t(1.0, 2.0)],
            vec![ProcSet::singleton(0), ProcSet::interval(1, 2)],
        )
        .unwrap();
        let v: Vec<_> = inst.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, TaskId(0));
        assert_eq!(v[1].2, &ProcSet::interval(1, 2));
    }

    #[test]
    fn remap_machines_renames_sets_only() {
        let inst = Instance::new(
            3,
            vec![t(0.0, 1.0), t(1.0, 2.0)],
            vec![ProcSet::singleton(0), ProcSet::interval(1, 2)],
        )
        .unwrap();
        // 0→2, 1→0, 2→1.
        let renamed = inst.remap_machines(&[2, 0, 1]);
        assert_eq!(renamed.tasks(), inst.tasks());
        assert_eq!(renamed.set(TaskId(0)), &ProcSet::singleton(2));
        assert_eq!(renamed.set(TaskId(1)), &ProcSet::new(vec![0, 1]));
    }

    #[test]
    fn remap_makes_nested_instances_interval() {
        use crate::structure;
        // A scattered laminar family becomes contiguous intervals under
        // the computed permutation — the Figure 1 edge, end to end.
        let sets = vec![
            ProcSet::new(vec![0, 3, 5]),
            ProcSet::new(vec![0, 5]),
            ProcSet::new(vec![1, 2]),
        ];
        let inst = Instance::new(6, vec![t(0.0, 1.0), t(0.0, 1.0), t(0.0, 1.0)], sets).unwrap();
        assert!(!structure::is_interval_family(inst.sets()));
        let perm = structure::nested_to_interval_order(inst.sets(), 6).unwrap();
        let renamed = inst.remap_machines(&perm);
        assert!(structure::is_interval_family(renamed.sets()));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn remap_rejects_non_permutation() {
        let inst = Instance::unrestricted(2, vec![t(0.0, 1.0)]).unwrap();
        let _ = inst.remap_machines(&[0, 0]);
    }

    #[test]
    fn empty_instance_ok() {
        let inst = Instance::unrestricted(1, vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.pmax(), 0.0);
        assert_eq!(inst.total_work(), 0.0);
    }
}
