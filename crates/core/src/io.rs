//! JSON-friendly (de)serialization of instances and schedules.
//!
//! The model types keep their invariants behind private fields, so
//! serialization goes through explicit mirror structs and reloading
//! re-runs full validation — a corrupted or hand-edited file can never
//! produce an invalid [`Instance`] or mismatched [`Schedule`].

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::instance::Instance;
use crate::machine::MachineId;
use crate::procset::ProcSet;
use crate::schedule::{Assignment, Schedule};
use crate::task::Task;
use crate::time::Time;

/// Serializable mirror of an [`Instance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceData {
    /// Machine count.
    pub machines: usize,
    /// `(release, processing time, processing set)` per task, in release
    /// order.
    pub tasks: Vec<TaskData>,
}

/// One serialized task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskData {
    /// Release time.
    pub release: Time,
    /// Processing time.
    pub ptime: Time,
    /// Zero-based machine indices of the processing set.
    pub set: Vec<usize>,
}

/// Serializable mirror of a [`Schedule`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleData {
    /// `(machine, start)` per task, aligned with the instance's order.
    pub assignments: Vec<(usize, Time)>,
}

impl From<&Instance> for InstanceData {
    fn from(inst: &Instance) -> Self {
        InstanceData {
            machines: inst.machines(),
            tasks: inst
                .iter()
                .map(|(_, t, s)| TaskData {
                    release: t.release,
                    ptime: t.ptime,
                    set: s.as_slice().to_vec(),
                })
                .collect(),
        }
    }
}

impl TryFrom<InstanceData> for Instance {
    type Error = CoreError;

    fn try_from(data: InstanceData) -> Result<Self, CoreError> {
        let tasks: Vec<Task> = data
            .tasks
            .iter()
            .map(|t| Task::new(t.release, t.ptime))
            .collect();
        let sets: Vec<ProcSet> = data
            .tasks
            .into_iter()
            .map(|t| ProcSet::new(t.set))
            .collect();
        Instance::new(data.machines, tasks, sets)
    }
}

impl From<&Schedule> for ScheduleData {
    fn from(s: &Schedule) -> Self {
        ScheduleData {
            assignments: s
                .assignments()
                .iter()
                .map(|a| (a.machine.index(), a.start))
                .collect(),
        }
    }
}

impl From<ScheduleData> for Schedule {
    fn from(data: ScheduleData) -> Self {
        Schedule::new(
            data.assignments
                .into_iter()
                .map(|(j, start)| Assignment::new(MachineId(j), start))
                .collect(),
        )
    }
}

/// Serializes an instance to JSON.
pub fn instance_to_json(inst: &Instance) -> String {
    serde_json::to_string_pretty(&InstanceData::from(inst)).expect("plain data serializes")
}

/// Parses and validates an instance from JSON.
pub fn instance_from_json(json: &str) -> Result<Instance, String> {
    let data: InstanceData = serde_json::from_str(json).map_err(|e| e.to_string())?;
    Instance::try_from(data).map_err(|e| e.to_string())
}

/// Serializes a schedule to JSON.
pub fn schedule_to_json(s: &Schedule) -> String {
    serde_json::to_string_pretty(&ScheduleData::from(s)).expect("plain data serializes")
}

/// Parses a schedule from JSON and validates it against its instance.
pub fn schedule_from_json(json: &str, inst: &Instance) -> Result<Schedule, String> {
    let data: ScheduleData = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let schedule = Schedule::from(data);
    schedule.validate(inst).map_err(|e| e.to_string())?;
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn demo() -> (Instance, Schedule) {
        let mut b = InstanceBuilder::new(3);
        b.push(Task::new(0.0, 2.0), ProcSet::interval(0, 1));
        b.push(Task::new(0.5, 1.0), ProcSet::singleton(2));
        let inst = b.build().unwrap();
        let s = Schedule::new(vec![
            Assignment::new(MachineId(0), 0.0),
            Assignment::new(MachineId(2), 0.5),
        ]);
        (inst, s)
    }

    #[test]
    fn instance_round_trips() {
        let (inst, _) = demo();
        let json = instance_to_json(&inst);
        let back = instance_from_json(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn schedule_round_trips_with_validation() {
        let (inst, s) = demo();
        let json = schedule_to_json(&s);
        let back = schedule_from_json(&json, &inst).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn invalid_instance_json_is_rejected() {
        // Processing set references machine 9 of a 2-machine cluster.
        let json = r#"{"machines":2,"tasks":[{"release":0.0,"ptime":1.0,"set":[9]}]}"#;
        let err = instance_from_json(json).unwrap_err();
        assert!(err.contains("machine index 9"), "{err}");
    }

    #[test]
    fn unsorted_instance_json_is_rejected() {
        let json = r#"{"machines":1,"tasks":[
            {"release":5.0,"ptime":1.0,"set":[0]},
            {"release":1.0,"ptime":1.0,"set":[0]}]}"#;
        let err = instance_from_json(json).unwrap_err();
        assert!(err.contains("non-decreasing"), "{err}");
    }

    #[test]
    fn infeasible_schedule_json_is_rejected() {
        let (inst, s) = demo();
        let mut data = ScheduleData::from(&s);
        data.assignments[1].0 = 0; // task 2 is restricted to M3
        let json = serde_json::to_string(&data).unwrap();
        let err = schedule_from_json(&json, &inst).unwrap_err();
        assert!(err.contains("outside its processing set"), "{err}");
    }

    #[test]
    fn garbage_json_is_an_error_not_a_panic() {
        assert!(instance_from_json("{not json").is_err());
        let (inst, _) = demo();
        assert!(schedule_from_json("[]", &inst).is_err());
    }
}
