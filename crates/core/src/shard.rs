//! Machine sharding: contiguous ownership partitions for parallel
//! dispatch.
//!
//! The paper's structured families make the machine set *decomposable*:
//! a disjoint family (Cor. 1), a blocked interval family, or any family
//! whose interval hulls do not straddle a boundary splits the cluster
//! into segments that never exchange work — every processing set lies
//! entirely inside one segment, so EFT's dispatch decision for a task
//! (Equation (2)) reads and writes only that segment's completion
//! times. A [`ShardPlan`] captures such a decomposition as a sorted
//! list of cut points; the sharded engine
//! (`flowsched_parallel::sharded`) runs one dispatcher per shard and
//! merges results in arrival order, reproducing the sequential engine
//! bit for bit.
//!
//! Plans are built either analytically (a generator that knows its
//! block layout calls [`ShardPlan::blocks`]) or from observed interval
//! hulls ([`ShardPlan::from_hulls`] — the union of overlapping hulls is
//! itself an interval, so hull-connected components are always
//! contiguous and every set, whatever its internal shape, stays within
//! its component). Families that do not decompose — overlapping
//! random-position intervals, wrap-around rings, inclusive chains —
//! collapse to [`ShardPlan::single`], which the engine runs inline.
//!
//! Determinism contract: a plan depends only on the family (and the
//! requested shard cap), never on the thread count, so the same plan
//! replayed under any number of workers routes every task identically.

use crate::compact::ProcSetRef;

/// Default cap on logical shards. Per-shard dispatcher state is O(shard
/// width), so the cap bounds total state at ~one extra completion
/// vector; 16 comfortably covers the core counts this crate targets
/// while keeping single-digit-machine shards (which would thrash the
/// routing queues) merged away.
pub const DEFAULT_MAX_SHARDS: usize = 16;

/// A partition of machines `{0, …, m−1}` into contiguous shards.
///
/// Shard `s` owns the half-open machine range
/// `[starts[s], starts[s+1])` (the last shard ends at `m`). Every
/// processing set routed through the plan must lie entirely inside one
/// shard — [`route`](ShardPlan::route) enforces this and panics on a
/// straddling set, because silently mis-routing would corrupt the
/// bitwise-equivalence guarantee rather than merely slow things down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    m: usize,
    /// Ascending shard start indices; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl ShardPlan {
    /// The trivial plan: one shard owning every machine. Always valid;
    /// the sharded engine runs it inline with zero threading overhead.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn single(m: usize) -> Self {
        assert!(m > 0, "need at least one machine");
        ShardPlan { m, starts: vec![0] }
    }

    /// A plan with explicit cut points. `starts` must begin with 0 and
    /// be strictly increasing below `m`.
    ///
    /// # Panics
    /// Panics on an empty, unsorted, or out-of-range cut list.
    pub fn from_cuts(m: usize, starts: Vec<usize>) -> Self {
        assert!(m > 0, "need at least one machine");
        assert_eq!(starts.first(), Some(&0), "first shard must start at 0");
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "shard starts must be strictly increasing"
        );
        assert!(
            *starts.last().unwrap() < m,
            "shard starts must stay below m"
        );
        ShardPlan { m, starts }
    }

    /// The blocked plan for a disjoint family of `block`-wide sets
    /// (`DisjointBlocks(k)` workloads): cut at every block boundary,
    /// then coalesce adjacent blocks down to at most `max_shards`.
    ///
    /// # Panics
    /// Panics if `m == 0`, `block == 0` or `max_shards == 0`.
    pub fn blocks(m: usize, block: usize, max_shards: usize) -> Self {
        assert!(block > 0, "block width must be positive");
        let starts = (0..m).step_by(block).collect();
        ShardPlan::from_cuts(m, starts).coalesced(max_shards)
    }

    /// Builds the finest valid plan from the interval hulls
    /// `(min, max)` of a family's sets, coalesced to at most
    /// `max_shards`: a machine boundary is a valid cut iff no hull
    /// spans it. Overlapping sets have overlapping hulls, so
    /// hull-connected sets always land in one shard — the plan is
    /// conservative and correct for *any* set shapes, holes included.
    ///
    /// # Panics
    /// Panics if `m == 0`, `max_shards == 0`, or a hull is inverted or
    /// out of range.
    pub fn from_hulls(
        m: usize,
        hulls: impl IntoIterator<Item = (usize, usize)>,
        max_shards: usize,
    ) -> Self {
        assert!(m > 0, "need at least one machine");
        // cuttable[c] ⇔ no hull spans the boundary between machines
        // c−1 and c (boundary 0 is the plan start, always kept).
        let mut cuttable = vec![true; m];
        for (lo, hi) in hulls {
            assert!(
                lo <= hi && hi < m,
                "hull ({lo}, {hi}) out of range for m = {m}"
            );
            for c in &mut cuttable[lo + 1..=hi] {
                *c = false;
            }
        }
        let starts = (0..m).filter(|&c| c == 0 || cuttable[c]).collect();
        ShardPlan::from_cuts(m, starts).coalesced(max_shards)
    }

    /// Merges adjacent shards until at most `max_shards` remain,
    /// keeping shard widths balanced (greedy `⌈m/max⌉` target). The
    /// result depends only on the input plan and the cap — not on any
    /// runtime property — so it preserves the determinism contract.
    ///
    /// # Panics
    /// Panics if `max_shards == 0`.
    pub fn coalesced(&self, max_shards: usize) -> Self {
        assert!(max_shards > 0, "need at least one shard");
        if self.shards() <= max_shards {
            return self.clone();
        }
        let target = self.m.div_ceil(max_shards);
        let mut starts = vec![0usize];
        for &c in &self.starts[1..] {
            if c - starts.last().unwrap() >= target {
                starts.push(c);
            }
        }
        ShardPlan { m: self.m, starts }
    }

    /// Number of machines the plan covers.
    pub fn machines(&self) -> usize {
        self.m
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// True when the plan has exactly one shard (the inline path).
    pub fn is_single(&self) -> bool {
        self.starts.len() == 1
    }

    /// First machine owned by shard `s`.
    pub fn start_of(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Number of machines owned by shard `s`.
    pub fn len_of(&self, s: usize) -> usize {
        let end = self.starts.get(s + 1).copied().unwrap_or(self.m);
        end - self.starts[s]
    }

    /// The shard owning machine `j`.
    ///
    /// # Panics
    /// Panics if `j >= m`.
    pub fn shard_of(&self, j: usize) -> usize {
        assert!(j < self.m, "machine {j} out of range for m = {}", self.m);
        match self.starts.binary_search(&j) {
            Ok(s) => s,
            Err(ins) => ins - 1,
        }
    }

    /// Routes a processing set to its owning shard.
    ///
    /// # Panics
    /// Panics if the set is empty, references a machine out of range,
    /// or straddles a shard boundary — a straddling set means the plan
    /// does not match the family, and dispatching it anyway would break
    /// the sequential-equivalence guarantee.
    pub fn route(&self, set: &ProcSetRef<'_>) -> usize {
        let lo = set.min().expect("cannot route an empty processing set");
        let hi = set.max().expect("cannot route an empty processing set");
        let s = self.shard_of(lo);
        let end = self.starts.get(s + 1).copied().unwrap_or(self.m);
        assert!(
            hi < end,
            "processing set [{lo}, {hi}] straddles the shard boundary at \
             {end} — the shard plan does not cover this family"
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_owns_everything() {
        let p = ShardPlan::single(7);
        assert_eq!(p.shards(), 1);
        assert!(p.is_single());
        assert_eq!(p.len_of(0), 7);
        assert_eq!(p.route(&ProcSetRef::interval(0, 6)), 0);
        assert_eq!(p.route(&ProcSetRef::ring(5, 3, 7)), 0);
    }

    #[test]
    fn blocks_cut_on_block_boundaries() {
        let p = ShardPlan::blocks(12, 4, 16);
        assert_eq!(p.shards(), 3);
        assert_eq!(
            (0..3)
                .map(|s| (p.start_of(s), p.len_of(s)))
                .collect::<Vec<_>>(),
            vec![(0, 4), (4, 4), (8, 4)]
        );
        assert_eq!(p.route(&ProcSetRef::interval(4, 7)), 1);
        assert_eq!(p.route(&ProcSetRef::interval(8, 8)), 2);
    }

    #[test]
    fn blocks_coalesce_to_the_cap() {
        let p = ShardPlan::blocks(64, 4, 4);
        assert_eq!(p.shards(), 4);
        // Every original 4-block must still sit inside one shard.
        for b in 0..16 {
            let set = ProcSetRef::interval(4 * b, 4 * b + 3);
            let s = p.route(&set);
            assert!(p.start_of(s) <= 4 * b && 4 * b + 3 < p.start_of(s) + p.len_of(s));
        }
    }

    #[test]
    fn from_hulls_respects_overlap() {
        // {0..2} and {2..4} overlap (share machine 2) → one component;
        // {5..7} is separate.
        let p = ShardPlan::from_hulls(8, [(0, 2), (2, 4), (5, 7)], 16);
        assert_eq!(
            p.route(&ProcSetRef::interval(0, 2)),
            p.route(&ProcSetRef::interval(2, 4))
        );
        assert_ne!(
            p.route(&ProcSetRef::interval(0, 2)),
            p.route(&ProcSetRef::interval(5, 7))
        );
    }

    #[test]
    fn from_hulls_keeps_holey_sets_whole() {
        // An explicit set {1, 5} has hull (1, 5): no cut may fall in
        // (1, 5] even though machines 2–4 are untouched.
        let p = ShardPlan::from_hulls(8, [(1, 5), (6, 7)], 16);
        let holey = [1usize, 5];
        let s = p.route(&ProcSetRef::Explicit(&holey));
        assert_eq!(s, p.shard_of(1));
        assert_eq!(s, p.shard_of(5), "hull (1,5) must not be split");
        assert_ne!(s, p.route(&ProcSetRef::interval(6, 7)));
    }

    #[test]
    fn wrapping_hull_forces_single_component() {
        // A wrap-around ring set has hull (0, m−1): nothing can be cut.
        let ring = ProcSetRef::ring(6, 3, 8);
        let p = ShardPlan::from_hulls(8, [(ring.min().unwrap(), ring.max().unwrap()), (2, 3)], 16);
        assert!(p.is_single());
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let p = ShardPlan::from_cuts(10, vec![0, 3, 7]);
        for j in 0..10 {
            let s = p.shard_of(j);
            assert!(
                p.start_of(s) <= j && j < p.start_of(s) + p.len_of(s),
                "machine {j}"
            );
        }
    }

    #[test]
    fn coalesce_is_idempotent_below_cap() {
        let p = ShardPlan::from_cuts(10, vec![0, 3, 7]);
        assert_eq!(p.coalesced(8), p);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn straddling_set_is_rejected() {
        let p = ShardPlan::from_cuts(8, vec![0, 4]);
        p.route(&ProcSetRef::interval(2, 5));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_cuts_rejected() {
        let _ = ShardPlan::from_cuts(8, vec![0, 4, 4]);
    }
}
