//! Service-time (processing-time) distributions.
//!
//! The paper's simulations use unit tasks; real key-value stores serve
//! requests with variable service times (the "requests vary in size" of
//! the introduction). These distributions extend the workload model; the
//! exponential case additionally unlocks closed-form M/M/c validation of
//! the simulator (see [`crate::queueing`]).

use rand::Rng;

/// A service-time distribution with unit mean by default, scalable via
/// [`ServiceDist::scaled`].
///
/// ```
/// use flowsched_stats::service::ServiceDist;
///
/// let mix = ServiceDist::mice_and_elephants();
/// assert!((mix.mean() - 1.0).abs() < 1e-12);  // same mean as unit tasks
/// assert!(mix.scv() > 2.0);                   // far more variable
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceDist {
    /// Constant service time (the paper's unit tasks, generalized).
    Deterministic(f64),
    /// Exponential with the given mean (memoryless — M/M/c territory).
    Exponential {
        /// Mean service time (`1/μ`).
        mean: f64,
    },
    /// Two-point mixture: `short` with probability `1 − p_long`, `long`
    /// with probability `p_long` — the classic "mice and elephants" mix
    /// behind tail-latency pathologies.
    Bimodal {
        /// Short service time.
        short: f64,
        /// Long service time.
        long: f64,
        /// Probability of drawing `long`.
        p_long: f64,
    },
}

impl ServiceDist {
    /// Unit-mean deterministic service (the paper's default).
    pub fn unit() -> Self {
        ServiceDist::Deterministic(1.0)
    }

    /// Unit-mean exponential service.
    pub fn exp_unit() -> Self {
        ServiceDist::Exponential { mean: 1.0 }
    }

    /// A unit-mean mice-and-elephants mix: 90% × 0.5, 10% × 5.5.
    pub fn mice_and_elephants() -> Self {
        ServiceDist::Bimodal {
            short: 0.5,
            long: 5.5,
            p_long: 0.1,
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDist::Deterministic(p) => p,
            ServiceDist::Exponential { mean } => mean,
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => short * (1.0 - p_long) + long * p_long,
        }
    }

    /// The squared coefficient of variation (variance / mean²) — 0 for
    /// deterministic, 1 for exponential; drives tail behaviour.
    pub fn scv(&self) -> f64 {
        match *self {
            ServiceDist::Deterministic(_) => 0.0,
            ServiceDist::Exponential { .. } => 1.0,
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => {
                let m = self.mean();
                let ex2 = short * short * (1.0 - p_long) + long * long * p_long;
                (ex2 - m * m) / (m * m)
            }
        }
    }

    /// The same shape with the mean multiplied by `factor`.
    ///
    /// # Panics
    /// Panics unless `factor > 0`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        match *self {
            ServiceDist::Deterministic(p) => ServiceDist::Deterministic(p * factor),
            ServiceDist::Exponential { mean } => ServiceDist::Exponential {
                mean: mean * factor,
            },
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => ServiceDist::Bimodal {
                short: short * factor,
                long: long * factor,
                p_long,
            },
        }
    }

    /// Samples one service time (strictly positive).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            ServiceDist::Deterministic(p) => p,
            ServiceDist::Exponential { mean } => {
                let u: f64 = rng.random();
                -(1.0 - u).ln() * mean
            }
            ServiceDist::Bimodal {
                short,
                long,
                p_long,
            } => {
                if rng.random::<f64>() < p_long {
                    long
                } else {
                    short
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::rng::seeded_rng;

    fn empirical_mean(dist: ServiceDist, n: usize, seed: u64) -> f64 {
        let mut rng = seeded_rng(seed);
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        mean(&xs)
    }

    #[test]
    fn deterministic_is_constant() {
        let mut rng = seeded_rng(1);
        let d = ServiceDist::Deterministic(2.5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 2.5);
        }
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = ServiceDist::Exponential { mean: 0.5 };
        let m = empirical_mean(d, 200_000, 2);
        assert!((m - 0.5).abs() < 0.01, "{m}");
        assert_eq!(d.scv(), 1.0);
    }

    #[test]
    fn bimodal_mean_and_scv() {
        let d = ServiceDist::mice_and_elephants();
        assert!((d.mean() - 1.0).abs() < 1e-12);
        // E[X²] = 0.9·0.25 + 0.1·30.25 = 3.25 → scv = 2.25.
        assert!((d.scv() - 2.25).abs() < 1e-12);
        let m = empirical_mean(d, 200_000, 3);
        assert!((m - 1.0).abs() < 0.02, "{m}");
    }

    #[test]
    fn scaled_scales_the_mean_only() {
        let d = ServiceDist::exp_unit().scaled(3.0);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.scv(), 1.0);
        let b = ServiceDist::mice_and_elephants().scaled(2.0);
        assert!((b.mean() - 2.0).abs() < 1e-12);
        assert!(
            (b.scv() - 2.25).abs() < 1e-12,
            "scv invariant under scaling"
        );
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = seeded_rng(4);
        for d in [
            ServiceDist::unit(),
            ServiceDist::exp_unit(),
            ServiceDist::mice_and_elephants(),
        ] {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ServiceDist::unit().scaled(0.0);
    }
}
