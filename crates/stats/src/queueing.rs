//! Closed-form queueing formulas (M/M/1, M/M/c via Erlang C).
//!
//! FIFO on identical machines with a central queue *is* an M/M/c queue
//! when arrivals are Poisson and service exponential — and by the paper's
//! Proposition 1, EFT produces the very same schedule. These formulas
//! therefore validate the entire simulation stack end-to-end: a
//! simulated unrestricted cluster's mean flow time must match the
//! analytic mean response time (enforced in `tests/queueing_validation.rs`).

/// Erlang C: the probability that an arriving job waits in an M/M/c
/// queue with offered load `a = λ/μ` and `c` servers (requires `a < c`
/// for stability).
///
/// # Panics
/// Panics unless `c ≥ 1` and `0 ≤ a < c`.
pub fn erlang_c(c: usize, a: f64) -> f64 {
    assert!(c >= 1, "need at least one server");
    assert!(
        a >= 0.0 && a < c as f64,
        "offered load must satisfy 0 <= a < c"
    );
    if a == 0.0 {
        return 0.0;
    }
    // Numerically stable iterative form of the Erlang B recursion, then
    // the standard B→C conversion.
    let mut b = 1.0; // Erlang B with 0 servers
    for j in 1..=c {
        b = a * b / (j as f64 + a * b);
    }
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Mean response (sojourn) time of an M/M/c queue with arrival rate
/// `lambda` and per-server service rate `mu`.
///
/// ```
/// use flowsched_stats::queueing::{mm1_mean_response, mmc_mean_response};
///
/// // One server at 50% load: response = 1/(μ−λ) = 2.
/// assert_eq!(mm1_mean_response(0.5, 1.0), 2.0);
/// // More servers at the same per-server load respond faster.
/// assert!(mmc_mean_response(2.0, 1.0, 4) < mmc_mean_response(0.5, 1.0, 1));
/// ```
///
/// # Panics
/// Panics unless the queue is stable (`λ < c·μ`).
pub fn mmc_mean_response(lambda: f64, mu: f64, c: usize) -> f64 {
    assert!(lambda >= 0.0 && mu > 0.0);
    let a = lambda / mu;
    assert!(a < c as f64, "unstable queue: λ/μ = {a} ≥ c = {c}");
    let wait = erlang_c(c, a) / (c as f64 * mu - lambda);
    wait + 1.0 / mu
}

/// Mean response time of an M/M/1 queue (`1/(μ − λ)`).
///
/// # Panics
/// Panics unless `λ < μ`.
pub fn mm1_mean_response(lambda: f64, mu: f64) -> f64 {
    assert!(lambda < mu, "unstable queue");
    1.0 / (mu - lambda)
}

/// Mean response time of an M/D/1 queue (Pollaczek–Khinchine with
/// deterministic service of length `1/μ`).
///
/// # Panics
/// Panics unless `λ < μ`.
pub fn md1_mean_response(lambda: f64, mu: f64) -> f64 {
    assert!(lambda < mu, "unstable queue");
    let rho = lambda / mu;
    // W = ρ/(2μ(1−ρ)); response = W + 1/μ.
    rho / (2.0 * mu * (1.0 - rho)) + 1.0 / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_is_rho() {
        // For c = 1, P(wait) = ρ.
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, rho) - rho).abs() < 1e-12, "rho={rho}");
        }
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic table value: c = 2, a = 1 → C = 1/3.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_and_mmc_agree_for_one_server() {
        let (lambda, mu) = (0.6, 1.0);
        assert!((mm1_mean_response(lambda, mu) - mmc_mean_response(lambda, mu, 1)).abs() < 1e-12);
    }

    #[test]
    fn mm1_closed_form() {
        assert_eq!(mm1_mean_response(0.5, 1.0), 2.0);
    }

    #[test]
    fn mmc_decreases_with_servers() {
        let lambda = 1.5;
        let mu = 1.0;
        let r2 = mmc_mean_response(lambda, mu, 2);
        let r4 = mmc_mean_response(lambda, mu, 4);
        let r8 = mmc_mean_response(lambda, mu, 8);
        assert!(r2 > r4 && r4 > r8);
        // With many servers, response approaches pure service time 1/μ.
        assert!((r8 - 1.0).abs() < 0.05, "{r8}");
    }

    #[test]
    fn md1_is_better_than_mm1() {
        // Deterministic service halves the waiting term.
        let (lambda, mu) = (0.8, 1.0);
        let md1 = md1_mean_response(lambda, mu);
        let mm1 = mm1_mean_response(lambda, mu);
        assert!(md1 < mm1);
        // W_MD1 = W_MM1/2: response relationship.
        let w_mm1 = mm1 - 1.0;
        let w_md1 = md1 - 1.0;
        assert!((w_md1 - w_mm1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_load_is_pure_service() {
        assert_eq!(mmc_mean_response(0.0, 2.0, 3), 0.5);
        assert_eq!(erlang_c(3, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_mmc_rejected() {
        let _ = mmc_mean_response(3.0, 1.0, 2);
    }
}
