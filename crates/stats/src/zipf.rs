//! Zipf popularity distribution over machines (Section 7.1 of the paper).
//!
//! With `m` machines and shape `s ≥ 0`, machine `Mⱼ` (one-based `j`) is
//! requested with probability `P(Eⱼ) = 1/(jˢ · H_{m,s})`, where `H_{m,s}`
//! is the m-th generalized harmonic number of order `s`. `s = 0`
//! degenerates to the uniform distribution; `s > 0` yields a monotonically
//! decreasing load over machine indices (the paper's *Worst-case*), and a
//! uniformly random permutation of the weights models realistic clusters
//! (*Shuffled case*).

use rand::Rng;

use crate::permutation::random_permutation;

/// Generalized harmonic number `H_{m,s} = Σ_{j=1..m} j^{-s}`.
pub fn harmonic_generalized(m: usize, s: f64) -> f64 {
    (1..=m).map(|j| (j as f64).powf(-s)).sum()
}

/// The paper's three popularity-bias cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasCase {
    /// `s = 0`: all machines equally popular.
    Uniform,
    /// `s > 0` with weights in natural order: `M₁` most popular.
    WorstCase,
    /// `s > 0` with weights randomly permuted.
    Shuffled,
}

impl std::fmt::Display for BiasCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BiasCase::Uniform => "Uniform",
            BiasCase::WorstCase => "Worst-case",
            BiasCase::Shuffled => "Shuffled",
        };
        f.write_str(s)
    }
}

/// A Zipf distribution over `m` machines with precomputed CDF for `O(log m)`
/// sampling.
///
/// ```
/// use flowsched_stats::zipf::Zipf;
///
/// let z = Zipf::new(3, 1.0); // weights ∝ 1, 1/2, 1/3
/// let h = 1.0 + 0.5 + 1.0 / 3.0;
/// assert!((z.prob(0) - 1.0 / h).abs() < 1e-12);
/// assert!((z.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    probs: Vec<f64>,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution in natural (worst-case) order: machine 0
    /// (the paper's `M₁`) gets the largest weight.
    ///
    /// # Panics
    /// Panics if `m == 0` or `s < 0` or `s` is not finite.
    pub fn new(m: usize, s: f64) -> Self {
        assert!(m > 0, "Zipf needs at least one machine");
        assert!(s >= 0.0 && s.is_finite(), "shape must be finite and >= 0");
        let h = harmonic_generalized(m, s);
        let probs: Vec<f64> = (1..=m).map(|j| (j as f64).powf(-s) / h).collect();
        Self::from_probs(probs)
    }

    /// Builds a distribution from explicit probabilities (they are
    /// normalized defensively).
    pub fn from_probs(mut probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty());
        let total: f64 = probs.iter().sum();
        assert!(total > 0.0, "probabilities must sum to a positive value");
        for p in &mut probs {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cdf.push(acc);
        }
        // Clamp the last entry so sampling never falls off the end.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { probs, cdf }
    }

    /// Builds one of the paper's three bias cases. `Shuffled` consumes
    /// randomness from `rng` to pick the permutation; the other cases
    /// leave `rng` untouched.
    pub fn bias_case(m: usize, s: f64, case: BiasCase, rng: &mut impl Rng) -> Self {
        match case {
            BiasCase::Uniform => Zipf::new(m, 0.0),
            BiasCase::WorstCase => Zipf::new(m, s),
            BiasCase::Shuffled => Zipf::new(m, s).shuffled(rng),
        }
    }

    /// Returns the same weights under a uniformly random machine
    /// permutation (the paper's Shuffled case).
    pub fn shuffled(&self, rng: &mut impl Rng) -> Self {
        let perm = random_permutation(self.probs.len(), rng);
        self.permuted(&perm)
    }

    /// Applies an explicit permutation: machine `perm[j]` receives the
    /// weight previously held by machine `j`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.probs.len());
        let mut probs = vec![0.0; self.probs.len()];
        for (j, &p) in self.probs.iter().enumerate() {
            probs[perm[j]] = p;
        }
        Zipf::from_probs(probs)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the distribution is over zero machines (never —
    /// construction forbids it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability `P(Eⱼ)` of machine index `j` (zero-based).
    pub fn prob(&self, j: usize) -> f64 {
        self.probs[j]
    }

    /// All probabilities, zero-based machine order.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Largest single-machine probability — the no-replication load bound
    /// is `λ ≤ 1 / maxⱼ P(Eⱼ)` (Section 7.2).
    pub fn max_prob(&self) -> f64 {
        self.probs.iter().cloned().fold(0.0, f64::max)
    }

    /// Samples a machine index (zero-based) by inverse CDF.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.probs.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn harmonic_matches_known_values() {
        assert!((harmonic_generalized(1, 2.0) - 1.0).abs() < 1e-12);
        // H_{3,1} = 1 + 1/2 + 1/3
        assert!((harmonic_generalized(3, 1.0) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        // s = 0 → H = m
        assert_eq!(harmonic_generalized(5, 0.0), 5.0);
    }

    #[test]
    fn zero_shape_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for j in 0..4 {
            assert!((z.prob(j) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(10, 1.3);
        let total: f64 = z.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for w in z.probs().windows(2) {
            assert!(w[0] > w[1], "worst-case order must be decreasing");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn sampling_matches_probabilities() {
        let z = Zipf::new(5, 1.0);
        let mut rng = seeded_rng(123);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for j in 0..5 {
            let emp = counts[j] as f64 / n as f64;
            assert!(
                (emp - z.prob(j)).abs() < 0.01,
                "machine {j}: empirical {emp} vs {p}",
                p = z.prob(j)
            );
        }
    }

    #[test]
    fn shuffled_preserves_multiset() {
        let z = Zipf::new(6, 1.0);
        let mut rng = seeded_rng(7);
        let sh = z.shuffled(&mut rng);
        let mut a: Vec<f64> = z.probs().to_vec();
        let mut b: Vec<f64> = sh.probs().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn permuted_moves_weights() {
        let z = Zipf::new(3, 1.0);
        // perm sends 0→2, 1→0, 2→1.
        let p = z.permuted(&[2, 0, 1]);
        assert!((p.prob(2) - z.prob(0)).abs() < 1e-12);
        assert!((p.prob(0) - z.prob(1)).abs() < 1e-12);
        assert!((p.prob(1) - z.prob(2)).abs() < 1e-12);
    }

    #[test]
    fn bias_cases() {
        let mut rng = seeded_rng(9);
        let u = Zipf::bias_case(4, 1.0, BiasCase::Uniform, &mut rng);
        assert!((u.prob(0) - 0.25).abs() < 1e-12);
        let w = Zipf::bias_case(4, 1.0, BiasCase::WorstCase, &mut rng);
        assert!(w.prob(0) > w.prob(3));
        let s = Zipf::bias_case(4, 1.0, BiasCase::Shuffled, &mut rng);
        let total: f64 = s.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_prob_is_first_in_worst_case() {
        let z = Zipf::new(8, 0.8);
        assert!((z.max_prob() - z.prob(0)).abs() < 1e-15);
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 5.0); // extreme bias
        let mut rng = seeded_rng(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
