//! Poisson arrival process (Section 7.1: "tasks are released according to
//! a Poisson process with parameter λ").
//!
//! Inter-arrival gaps are exponential with mean `1/λ`, sampled by inverse
//! transform: `−ln(U)/λ` with `U ~ Uniform(0,1]`.

use rand::Rng;

/// A Poisson process generator producing an increasing stream of arrival
/// times.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    now: f64,
}

impl PoissonProcess {
    /// Creates a process with rate `λ > 0` starting at time 0.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "Poisson rate must be > 0");
        PoissonProcess { rate, now: 0.0 }
    }

    /// The process rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current time (last emitted arrival, or 0 initially).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Samples one exponential inter-arrival gap without advancing.
    pub fn sample_gap(&self, rng: &mut impl Rng) -> f64 {
        // rng.random::<f64>() ∈ [0,1); use 1−u ∈ (0,1] so ln never sees 0.
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }

    /// Advances to and returns the next arrival time.
    pub fn next_arrival(&mut self, rng: &mut impl Rng) -> f64 {
        self.now += self.sample_gap(rng);
        self.now
    }

    /// Generates the first `n` arrival times from the current instant.
    pub fn take(&mut self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival(rng)).collect()
    }

    /// Generates all arrivals up to (and excluding) `horizon`.
    pub fn until(&mut self, horizon: f64, rng: &mut impl Rng) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let gap = self.sample_gap(rng);
            if self.now + gap >= horizon {
                return out;
            }
            self.now += gap;
            out.push(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;
    use crate::rng::seeded_rng;

    #[test]
    fn arrivals_are_increasing() {
        let mut p = PoissonProcess::new(2.0);
        let mut rng = seeded_rng(1);
        let xs = p.take(1000, &mut rng);
        for w in xs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        let mut p = PoissonProcess::new(4.0);
        let mut rng = seeded_rng(2);
        let xs = p.take(100_000, &mut rng);
        let gaps: Vec<f64> = std::iter::once(xs[0])
            .chain(xs.windows(2).map(|w| w[1] - w[0]))
            .collect();
        let g = mean(&gaps);
        assert!((g - 0.25).abs() < 0.01, "mean gap {g} vs 0.25");
    }

    #[test]
    fn count_in_unit_time_is_about_lambda() {
        let mut rng = seeded_rng(3);
        let mut total = 0usize;
        let reps = 2000;
        for _ in 0..reps {
            let mut p = PoissonProcess::new(15.0);
            total += p.until(1.0, &mut rng).len();
        }
        let avg = total as f64 / reps as f64;
        assert!((avg - 15.0).abs() < 0.5, "avg count {avg} vs λ=15");
    }

    #[test]
    fn until_respects_horizon() {
        let mut p = PoissonProcess::new(10.0);
        let mut rng = seeded_rng(4);
        let xs = p.until(5.0, &mut rng);
        assert!(xs.iter().all(|&t| t < 5.0));
        assert!(!xs.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut p1 = PoissonProcess::new(1.0);
        let mut p2 = PoissonProcess::new(1.0);
        let mut r1 = seeded_rng(5);
        let mut r2 = seeded_rng(5);
        assert_eq!(p1.take(10, &mut r1), p2.take(10, &mut r2));
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0);
    }
}
