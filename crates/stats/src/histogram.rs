//! Fixed-bin histograms for flow-time distributions and experiment
//! diagnostics.

/// A histogram over `[lo, hi)` with equal-width bins. Values outside the
//  range are counted in saturating edge bins.
///
/// Beyond plain counts, every bin (and both edge bins) tracks the
/// minimum and maximum value it received, and the histogram keeps the
/// running sum of all recorded values. That is what lets
/// [`Histogram::quantile`] interpolate *within* a bin — the r-th order
/// statistic in a bin of known `[min, max]` spread is pinned exactly
/// whenever the bin holds ≤ 2 samples or all-equal samples — and what a
/// Prometheus-style exporter needs (`_sum` next to the cumulative
/// buckets).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Smallest value recorded in each bin (meaningless where count 0).
    mins: Vec<f64>,
    /// Largest value recorded in each bin (meaningless where count 0).
    maxs: Vec<f64>,
    total: u64,
    sum: f64,
    underflow: u64,
    overflow: u64,
    /// `[min, max]` of the underflow mass (meaningless when empty).
    under_range: (f64, f64),
    /// `[min, max]` of the overflow mass (meaningless when empty).
    over_range: (f64, f64),
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins ≥ 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            mins: vec![f64::INFINITY; bins],
            maxs: vec![f64::NEG_INFINITY; bins],
            total: 0,
            sum: 0.0,
            underflow: 0,
            overflow: 0,
            under_range: (f64::INFINITY, f64::NEG_INFINITY),
            over_range: (f64::INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Records a value.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
            self.under_range = (self.under_range.0.min(x), self.under_range.1.max(x));
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            self.over_range = (self.over_range.0.min(x), self.over_range.1.max(x));
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.mins[idx] = self.mins[idx].min(x);
        self.maxs[idx] = self.maxs[idx].max(x);
    }

    /// Records many values.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Folds another histogram into this one. Counts add, per-bin ranges
    /// widen, the sum accumulates — merging shard histograms in any
    /// grouping yields the same result as recording every value into one
    /// histogram (up to float summation order in [`Histogram::sum`]).
    ///
    /// # Panics
    /// Panics if the two histograms disagree on range or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.lo, self.hi, self.counts.len()),
            (other.lo, other.hi, other.counts.len()),
            "histogram merge requires identical ranges and bin counts"
        );
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.mins[i] = self.mins[i].min(other.mins[i]);
            self.maxs[i] = self.maxs[i].max(other.maxs[i]);
        }
        self.total += other.total;
        self.sum += other.sum;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.under_range = (
            self.under_range.0.min(other.under_range.0),
            self.under_range.1.max(other.under_range.1),
        );
        self.over_range = (
            self.over_range.0.min(other.over_range.0),
            self.over_range.1.max(other.over_range.1),
        );
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of every recorded value (out-of-range included).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Count of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// `(min, max)` of the values recorded in bin `i`, `None` when the
    /// bin is empty.
    pub fn bin_range(&self, i: usize) -> Option<(f64, f64)> {
        (self.counts[i] > 0).then(|| (self.mins[i], self.maxs[i]))
    }

    /// The `[lo, hi)` range the bins cover.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Smallest value recorded, `None` when empty.
    pub fn min_value(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        if self.underflow > 0 {
            return Some(self.under_range.0);
        }
        self.mins
            .iter()
            .zip(&self.counts)
            .find(|&(_, &c)| c > 0)
            .map(|(&v, _)| v)
            .or(Some(self.over_range.0))
    }

    /// Largest value recorded, `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        if self.overflow > 0 {
            return Some(self.over_range.1);
        }
        self.maxs
            .iter()
            .zip(&self.counts)
            .rev()
            .find(|&(_, &c)| c > 0)
            .map(|(&v, _)| v)
            .or(Some(self.under_range.1))
    }

    /// The value of the `r`-th order statistic (0-based), interpolated
    /// linearly within the bin it falls in between the bin's recorded
    /// minimum and maximum. Exact whenever the bin holds one sample, two
    /// samples (the min and the max *are* the order statistics), or
    /// all-equal samples — which covers edge-aligned integer workloads
    /// and sparse continuous ones alike; off by at most the bin's
    /// observed spread (≤ one bin width) otherwise. Underflow and
    /// overflow interpolate within their own recorded `[min, max]`, so
    /// the extreme ranks (e.g. `quantile(1.0)` = the true maximum) are
    /// exact even out of range.
    fn value_at_rank(&self, r: u64) -> f64 {
        debug_assert!(r < self.total);
        let interp = |pos: u64, count: u64, min: f64, max: f64| -> f64 {
            if count <= 1 || max <= min {
                min
            } else {
                min + (max - min) * pos as f64 / (count - 1) as f64
            }
        };
        let mut cum = self.underflow;
        if r < cum {
            return interp(r, self.underflow, self.under_range.0, self.under_range.1);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if r < cum + c {
                return interp(r - cum, c, self.mins[i], self.maxs[i]);
            }
            cum += c;
        }
        interp(r - cum, self.overflow, self.over_range.0, self.over_range.1)
    }

    /// Quantile `q ∈ [0,1]` with linear interpolation between order
    /// statistics (type-7, mirroring
    /// [`descriptive::quantile`](crate::descriptive::quantile)), read
    /// from the bins instead of a sorted sample. Each order statistic is
    /// resolved by [within-bin interpolation](Self::value_at_rank): the
    /// result is bit-exact against the sorted-sample quantile whenever
    /// every bin the ranks touch holds ≤ 2 samples or all-equal samples,
    /// and within the touched bins' observed spread (≤ one bin width)
    /// otherwise. Returns `None` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let h = q * (self.total - 1) as f64;
        let lo = h.floor() as u64;
        let hi = h.ceil() as u64;
        let vlo = self.value_at_rank(lo);
        Some(if lo == hi {
            vlo
        } else {
            let vhi = self.value_at_rank(hi);
            vlo + (h - lo as f64) * (vhi - vlo)
        })
    }

    /// A terminal sparkline of the histogram (one char per bin).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let lvl = ((c as f64 / max as f64) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[lvl]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5); // bin 0
        h.record(9.99); // bin 9
        h.record(5.0); // bin 5
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.sum(), 0.5 + 9.99 + 5.0);
        assert_eq!(h.bin_range(5), Some((5.0, 5.0)));
        assert_eq!(h.bin_range(1), None);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(99.0);
        h.record(1.0); // hi edge counts as overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.min_value(), Some(-5.0));
        assert_eq!(h.max_value(), Some(99.0));
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn sparkline_has_one_char_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record_all(&[0.5, 0.6, 2.5]);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn empty_sparkline_is_blank() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.sparkline(), "    ");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    fn quantile_is_exact_for_edge_aligned_samples() {
        use crate::descriptive::quantile;
        // Integer samples in a unit-width histogram sit exactly on bin
        // lower edges, so the histogram quantile must equal the sorted
        // sample quantile bit for bit, interpolation included.
        let samples = [3.0, 1.0, 1.0, 7.0, 2.0, 2.0, 2.0, 5.0];
        let mut h = Histogram::new(0.0, 16.0, 16);
        h.record_all(&samples);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(quantile(&samples, q)), "q = {q}");
        }
    }

    #[test]
    fn quantile_is_exact_when_bins_hold_at_most_two_samples() {
        use crate::descriptive::quantile;
        // Continuous samples, no two more than a pair per bin: within-bin
        // interpolation recovers every order statistic exactly, so the
        // histogram quantile matches the sorted-sample quantile bit for
        // bit even though nothing sits on a bin edge.
        let samples = [0.31, 0.37, 1.62, 2.85, 2.91, 5.44, 7.03, 9.76];
        let mut h = Histogram::new(0.0, 16.0, 16);
        h.record_all(&samples);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(quantile(&samples, q)), "q = {q}");
        }
    }

    #[test]
    fn crowded_bin_quantile_stays_within_the_bin_spread() {
        use crate::descriptive::quantile;
        // Five samples crowd one bin: interior ranks interpolate between
        // the bin's min and max, so the error is bounded by the observed
        // spread, not the full bin width.
        let samples = [1.1, 1.15, 1.2, 1.3, 1.45, 6.5];
        let mut h = Histogram::new(0.0, 8.0, 8);
        h.record_all(&samples);
        for q in [0.2, 0.4, 0.6, 0.8] {
            let est = h.quantile(q).unwrap();
            let exact = quantile(&samples, q);
            assert!(
                (est - exact).abs() <= 1.45 - 1.1 + 1e-12,
                "q = {q}: {est} vs {exact}"
            );
        }
        // Bin boundaries of the crowd are exact (rank min / rank max).
        assert_eq!(h.quantile(0.0), Some(1.1));
        assert_eq!(h.quantile(1.0), Some(6.5));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_of_out_of_range_samples_is_exact() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(-3.0);
        h.record(99.0);
        // Out-of-range mass keeps its observed [min, max]: the extreme
        // ranks report the true values instead of clamping to the range.
        assert_eq!(h.quantile(0.0), Some(-3.0));
        assert_eq!(h.quantile(1.0), Some(99.0));
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let samples_a = [0.5, 1.5, 1.6, 3.25, -1.0];
        let samples_b = [0.75, 9.0, 12.0, 1.55];
        let mut merged = Histogram::new(0.0, 8.0, 8);
        merged.record_all(&samples_a);
        let mut other = Histogram::new(0.0, 8.0, 8);
        other.record_all(&samples_b);
        merged.merge(&other);

        let mut whole = Histogram::new(0.0, 8.0, 8);
        whole.record_all(&samples_a);
        whole.record_all(&samples_b);

        assert_eq!(merged.counts(), whole.counts());
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.underflow(), whole.underflow());
        assert_eq!(merged.overflow(), whole.overflow());
        for i in 0..8 {
            assert_eq!(merged.bin_range(i), whole.bin_range(i), "bin {i}");
        }
        assert_eq!(merged.min_value(), whole.min_value());
        assert_eq!(merged.max_value(), whole.max_value());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q = {q}");
        }
    }

    #[test]
    #[should_panic(expected = "identical ranges")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 8.0, 8);
        let b = Histogram::new(0.0, 8.0, 4);
        a.merge(&b);
    }
}
