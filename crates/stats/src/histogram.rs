//! Fixed-bin histograms for flow-time distributions and experiment
//! diagnostics.

/// A histogram over `[lo, hi)` with equal-width bins. Values outside the
//  range are counted in saturating edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins ≥ 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a value.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Records many values.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// The `[lo, hi)` range the bins cover.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The value of the `r`-th order statistic (0-based), approximated
    /// by the lower edge of the bin it falls in (underflow ↦ `lo`,
    /// overflow ↦ `hi`). Exact whenever every recorded value sits on a
    /// bin lower edge — e.g. integer samples in a unit-width histogram.
    fn value_at_rank(&self, r: u64) -> f64 {
        debug_assert!(r < self.total);
        let mut cum = self.underflow;
        if r < cum {
            return self.lo;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if r < cum {
                return self.bin_edges(i).0;
            }
        }
        self.hi
    }

    /// Quantile `q ∈ [0,1]` with linear interpolation between order
    /// statistics (type-7, mirroring
    /// [`descriptive::quantile`](crate::descriptive::quantile)), read
    /// from the bins instead of a sorted sample. Each order statistic is
    /// approximated by its bin's lower edge, so the result is exact when
    /// all samples lie on bin edges and within range, and off by at most
    /// one bin width otherwise (more for out-of-range samples, which
    /// clamp to the range). Returns `None` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let h = q * (self.total - 1) as f64;
        let lo = h.floor() as u64;
        let hi = h.ceil() as u64;
        let vlo = self.value_at_rank(lo);
        Some(if lo == hi {
            vlo
        } else {
            let vhi = self.value_at_rank(hi);
            vlo + (h - lo as f64) * (vhi - vlo)
        })
    }

    /// A terminal sparkline of the histogram (one char per bin).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| {
                let lvl = ((c as f64 / max as f64) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[lvl]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5); // bin 0
        h.record(9.99); // bin 9
        h.record(5.0); // bin 5
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(99.0);
        h.record(1.0); // hi edge counts as overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn sparkline_has_one_char_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record_all(&[0.5, 0.6, 2.5]);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn empty_sparkline_is_blank() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.sparkline(), "    ");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    fn quantile_is_exact_for_edge_aligned_samples() {
        use crate::descriptive::quantile;
        // Integer samples in a unit-width histogram sit exactly on bin
        // lower edges, so the histogram quantile must equal the sorted
        // sample quantile bit for bit, interpolation included.
        let samples = [3.0, 1.0, 1.0, 7.0, 2.0, 2.0, 2.0, 5.0];
        let mut h = Histogram::new(0.0, 16.0, 16);
        h.record_all(&samples);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(quantile(&samples, q)), "q = {q}");
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_clamps_out_of_range_samples() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(-3.0); // ↦ lo
        h.record(99.0); // ↦ hi
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }
}
