//! Random permutations (Fisher–Yates) and permutation algebra, used by
//! the Shuffled popularity case and by the nested→interval machine
//! reordering.

use rand::Rng;

/// Uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Applies `perm` to a slice: output position `perm[i]` receives
/// `values[i]`.
///
/// # Panics
/// Panics if lengths differ or `perm` is not a permutation (debug builds
/// assert bijectivity).
pub fn apply_permutation<T: Clone>(values: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(values.len(), perm.len());
    debug_assert!(is_permutation(perm));
    let mut out: Vec<Option<T>> = vec![None; values.len()];
    for (i, &p) in perm.iter().enumerate() {
        out[p] = Some(values[i].clone());
    }
    out.into_iter()
        .map(|x| x.expect("perm must be bijective"))
        .collect()
}

/// Inverse permutation: `invert(p)[p[i]] == i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    debug_assert!(is_permutation(perm));
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Checks that a slice is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn random_permutation_is_bijective() {
        let mut rng = seeded_rng(1);
        for n in [0, 1, 2, 10, 100] {
            let p = random_permutation(n, &mut rng);
            assert!(is_permutation(&p), "not a permutation for n={n}: {p:?}");
        }
    }

    #[test]
    fn random_permutation_is_roughly_uniform() {
        // Over 6000 draws of S_3, each of the 6 permutations should appear
        // about 1000 times.
        let mut rng = seeded_rng(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..6000 {
            let p = random_permutation(3, &mut rng);
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&_, &c) in counts.iter() {
            assert!((800..1200).contains(&c), "skewed count {c}");
        }
    }

    #[test]
    fn apply_moves_values() {
        let vals = ['a', 'b', 'c'];
        let perm = [2usize, 0, 1];
        assert_eq!(apply_permutation(&vals, &perm), vec!['b', 'c', 'a']);
    }

    #[test]
    fn invert_round_trips() {
        let mut rng = seeded_rng(3);
        let p = random_permutation(20, &mut rng);
        let inv = invert_permutation(&p);
        let vals: Vec<usize> = (0..20).collect();
        let shuffled = apply_permutation(&vals, &p);
        let restored = apply_permutation(&shuffled, &inv);
        assert_eq!(restored, vals);
    }

    #[test]
    fn is_permutation_detects_problems() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
