//! Descriptive statistics. The paper aggregates runs with medians
//! (Fig. 10: median over 100 permutations; Fig. 11: median over 10
//! repetitions); quantiles use the common linear-interpolation estimator.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator); 0 for fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Quantile `q ∈ [0,1]` with linear interpolation between order
/// statistics (type-7 estimator, the default of R and NumPy).
///
/// # Panics
/// Panics on empty input or `q` outside `[0,1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (`quantile(xs, 0.5)`).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Five-point summary plus mean/std of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        Summary {
            n: xs.len(),
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
            mean: mean(xs),
            std_dev: std_dev(xs),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}±{:.3}",
            self.n, self.min, self.q1, self.median, self.q3, self.max, self.mean, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([1,2,3,4]) with n-1 = ((−1.5)²+(−0.5)²+0.5²+1.5²)/3 = 5/3
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
        // known sample std dev of this classic dataset: sqrt(32/7)
        assert!((s.std_dev - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        let shown = s.to_string();
        assert!(shown.contains("n=8"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }
}
