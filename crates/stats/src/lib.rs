//! # flowsched-stats
//!
//! Statistics and random-process substrate for the paper's Section 7
//! experiments:
//!
//! - [`zipf`]: the Zipf popularity distribution `P(Eⱼ) = 1/(jˢ·H_{m,s})`
//!   over machines, with the paper's three bias cases (Uniform,
//!   Worst-case, Shuffled).
//! - [`poisson`]: Poisson arrival process with rate `λ` (tasks per time
//!   unit), via exponential inter-arrival sampling.
//! - [`descriptive`]: means, medians, quantiles — the paper reports
//!   medians over repetitions.
//! - [`permutation`]: uniform random permutations (Shuffled case) and
//!   permutation algebra.
//! - [`service`]: service-time distributions (deterministic /
//!   exponential / bimodal) extending the paper's unit tasks.
//! - [`queueing`]: M/M/1, M/D/1 and M/M/c (Erlang C) closed forms used to
//!   validate the simulator end-to-end.
//! - [`rng`]: deterministic seed derivation so every experiment is
//!   reproducible from a single root seed.

pub mod descriptive;
pub mod histogram;
pub mod permutation;
pub mod poisson;
pub mod queueing;
pub mod rng;
pub mod service;
pub mod zipf;

pub use descriptive::{mean, median, quantile, std_dev, variance, Summary};
pub use permutation::{apply_permutation, invert_permutation, random_permutation};
pub use poisson::PoissonProcess;
pub use queueing::{erlang_c, md1_mean_response, mm1_mean_response, mmc_mean_response};
pub use rng::{derive_rng, seeded_rng};
pub use service::ServiceDist;
pub use zipf::{harmonic_generalized, BiasCase, Zipf};
