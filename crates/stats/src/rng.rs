//! Deterministic RNG construction and seed derivation.
//!
//! Every stochastic experiment in this workspace takes a `u64` seed; runs
//! are bit-reproducible given the same seed. Independent streams (one per
//! repetition, per permutation, per sweep point) are derived with a
//! SplitMix64 mix of `(root_seed, stream_id)` so streams do not overlap
//! even for adjacent ids.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG from a root seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed))
}

/// Derives an independent RNG stream `stream` from a root seed.
/// `derive_rng(s, a)` and `derive_rng(s, b)` are statistically independent
/// for `a ≠ b`.
pub fn derive_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        splitmix64(seed) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_are_distinct() {
        let mut a = derive_rng(7, 0);
        let mut b = derive_rng(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_stream_reproducible() {
        let mut a = derive_rng(7, 3);
        let mut b = derive_rng(7, 3);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak avalanche: {flipped} bits"
        );
    }
}
