//! A bounded single-producer single-consumer channel.
//!
//! The sharded engine moves task batches to workers and result batches
//! back over exactly-one-producer/exactly-one-consumer links, and needs
//! the queue *bounded* so a fast producer exerts backpressure instead
//! of buffering the whole stream (the constant-memory guarantee of the
//! streaming core must survive parallelism). `std::sync::mpsc` offers
//! either unbounded channels or rendezvous-ish `sync_channel`; this is
//! the same idea specialised to what the engine relies on:
//!
//! - capacity-bounded `send` that blocks, plus [`try_send`] for callers
//!   that must not block (the merger drains results instead);
//! - `recv` that returns `None` once the producer is gone and the queue
//!   is drained — the disconnect signal doubles as worker-panic
//!   detection, because a panicking worker drops its `Sender` on
//!   unwind;
//! - endpoints are **not** clonable, keeping the SPSC discipline a type
//!   level fact.
//!
//! Built on `Mutex<VecDeque>` with two condvars (not-empty, not-full)
//! in the style of *Rust Atomics and Locks* — `std` only, as everywhere
//! in this crate.
//!
//! [`try_send`]: Sender::try_send

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item is pushed or the sender disconnects.
    not_empty: Condvar,
    /// Signalled when an item is popped or the receiver disconnects.
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: usize,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Creates a channel holding at most `cap` in-flight items.
///
/// # Panics
/// Panics if `cap == 0`.
pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap),
            cap,
            sender_alive: true,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Why a [`Sender::try_send`] failed; the value comes back in both
/// cases.
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The queue is at capacity; retry after the receiver drains.
    Full(T),
    /// The receiver is gone; no send can ever succeed again.
    Closed(T),
}

/// The producing endpoint. Dropping it closes the channel once the
/// queue drains.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks until the item is enqueued, or returns it back if the
    /// receiver disconnected.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        loop {
            if !inner.receiver_alive {
                return Err(value);
            }
            if inner.queue.len() < inner.cap {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .expect("spsc lock poisoned");
        }
    }

    /// Enqueues without blocking, or reports why it cannot.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        if !inner.receiver_alive {
            return Err(TrySendError::Closed(value));
        }
        if inner.queue.len() >= inner.cap {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        inner.sender_alive = false;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

/// The consuming endpoint. Dropping it makes all further sends fail
/// fast (the producer sees `Closed` and can abandon work).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks for the next item; `None` means the sender is gone *and*
    /// the queue is drained — the channel will never yield again.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Some(v);
            }
            if !inner.sender_alive {
                return None;
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .expect("spsc lock poisoned");
        }
    }

    /// Pops the next item if one is ready, without blocking. `None`
    /// means "nothing right now" — use [`recv`](Receiver::recv) to
    /// distinguish empty from closed.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        let v = inner.queue.pop_front();
        drop(inner);
        if v.is_some() {
            self.shared.not_full.notify_one();
        }
        v
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("spsc lock poisoned");
        inner.receiver_alive = false;
        drop(inner);
        self.shared.not_full.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ships_items_in_order() {
        let (tx, rx) = channel(4);
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..1000u32 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
        producer.join().unwrap();
    }

    #[test]
    fn capacity_bounds_the_queue() {
        let (tx, rx) = channel(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).expect("slot freed");
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn dropped_sender_closes_after_drain() {
        let (tx, rx) = channel::<u32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn dropped_receiver_fails_sends_fast() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
        match tx.try_send(2) {
            Err(TrySendError::Closed(2)) => {}
            other => panic!("expected Closed(2), got {other:?}"),
        }
    }

    #[test]
    fn blocking_send_wakes_on_drain() {
        let (tx, rx) = channel(1);
        tx.send(0u32).unwrap();
        let producer = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        producer.join().unwrap().expect("receiver alive");
    }
}
