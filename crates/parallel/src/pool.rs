//! A persistent worker pool for heterogeneous jobs.
//!
//! Built in the style of *Rust Atomics and Locks*: a bounded set of worker
//! threads pulling boxed closures from a `crossbeam` MPMC channel. The
//! free functions in the crate root are preferable for homogeneous sweeps;
//! the pool exists for long-lived pipelines (e.g. an experiment driver
//! overlapping simulation, LP solving and aggregation).

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;

use crossbeam::channel::{Receiver, Sender, unbounded};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state used to implement `wait_idle`.
struct PoolState {
    pending: AtomicUsize,
    panicked: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size thread pool.
///
/// Jobs are executed in submission order per the channel's FIFO semantics
/// (across workers, completion order is arbitrary). Dropping the pool
/// waits for queued jobs to finish.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<PoolState>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let state = Arc::new(PoolState {
            pending: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    for job in rx.iter() {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
                        if outcome.is_err() {
                            state.panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let _guard = state.idle_lock.lock();
                            state.idle_cv.notify_all();
                        }
                    }
                })
            })
            .collect();
        ThreadPool { tx: Some(tx), workers, state }
    }

    /// Pool with one worker per available core.
    pub fn with_default_threads() -> Self {
        ThreadPool::new(crate::default_threads())
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job.
    ///
    /// # Panics
    /// Panics if called after the pool started shutting down (cannot
    /// happen through the safe API).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        self.tx
            .as_ref()
            .expect("pool is alive while the handle exists")
            .send(Box::new(job))
            .expect("workers hold the receiver while the pool is alive");
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.state.pending.load(Ordering::Acquire)
    }

    /// Number of jobs that panicked so far.
    pub fn panicked_jobs(&self) -> usize {
        self.state.panicked.load(Ordering::Relaxed)
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.state.idle_lock.lock();
        while self.state.pending.load(Ordering::Acquire) > 0 {
            self.state.idle_cv.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain remaining jobs and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn drop_drains_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_job_does_not_kill_pool() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        pool.execute(|| panic!("job failure"));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(1);
        pool.wait_idle();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }
}
