//! A persistent worker pool for heterogeneous jobs.
//!
//! Built in the style of *Rust Atomics and Locks*: a bounded set of
//! worker threads pulling boxed closures from a shared `Mutex<VecDeque>`
//! queue with a `Condvar` for wake-ups (`std` only — the build
//! environment is offline, so no external channel crates). The free
//! functions in the crate root are preferable for homogeneous sweeps;
//! the pool exists for long-lived pipelines (e.g. an experiment driver
//! overlapping simulation, LP solving and aggregation).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The job queue proper, guarded by one mutex.
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared state between the pool handle and its workers.
struct PoolState {
    queue: Mutex<Queue>,
    job_cv: Condvar,
    pending: AtomicUsize,
    panicked: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size thread pool.
///
/// Jobs start in submission order (FIFO queue; across workers,
/// completion order is arbitrary). Dropping the pool waits for queued
/// jobs to finish.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    state: Arc<PoolState>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        let state = Arc::new(PoolState {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        ThreadPool { workers, state }
    }

    /// Pool with one worker per available core.
    pub fn with_default_threads() -> Self {
        ThreadPool::new(crate::default_threads())
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let mut queue = self.state.queue.lock().expect("pool queue poisoned");
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.state.job_cv.notify_one();
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.state.pending.load(Ordering::Acquire)
    }

    /// Number of jobs that panicked so far.
    pub fn panicked_jobs(&self) -> usize {
        self.state.panicked.load(Ordering::Relaxed)
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.state.idle_lock.lock().expect("idle lock poisoned");
        while self.state.pending.load(Ordering::Acquire) > 0 {
            guard = self.state.idle_cv.wait(guard).expect("idle lock poisoned");
        }
    }
}

fn worker_loop(state: &PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = state.job_cv.wait(queue).expect("pool queue poisoned");
            }
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
        if outcome.is_err() {
            state.panicked.fetch_add(1, Ordering::Relaxed);
        }
        if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = state.idle_lock.lock().expect("idle lock poisoned");
            state.idle_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Raising the shutdown flag lets workers drain remaining jobs
        // and exit once the queue is empty.
        {
            let mut queue = self.state.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.state.job_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn drop_drains_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_job_does_not_kill_pool() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        pool.execute(|| panic!("job failure"));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(pool.panicked_jobs(), 1);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(1);
        pool.wait_idle();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }
}
