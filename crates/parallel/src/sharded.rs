//! The sharded dispatch runtime: route arrivals to per-shard
//! dispatchers over bounded queues, merge results in arrival order.
//!
//! [`run_sharded`] is the transport layer of the parallel streaming
//! engine. It owns everything concurrent — routing, batching,
//! backpressure, the in-order merge — and nothing algorithmic: the
//! caller supplies one dispatcher closure per shard (in practice an EFT
//! kernel from `flowsched-algos`, which this crate must not depend on)
//! and a merge closure that sees `(seq, task, assignment)` in **strict
//! arrival order**, exactly as the sequential engine's sink does.
//!
//! # Ownership protocol
//!
//! A [`ShardPlan`] fixes a contiguous machine range per shard; shard
//! `s` runs on worker `s % workers` and its dispatcher sees machines
//! renumbered to `0..len_of(s)` (sets are rebased on the way in, the
//! chosen machine is rebased back on the way out). Because the plan
//! guarantees every processing set fits inside one shard, no two
//! workers ever touch the same machine's state and no cross-shard
//! synchronization exists at all.
//!
//! # Why the merged run is bitwise-identical to sequential
//!
//! - The plan is a function of the *family*, never of the thread count,
//!   so routing is deterministic.
//! - Each worker processes its batches in send order, so shard `s`'s
//!   dispatcher sees exactly the subsequence of arrivals it would see
//!   sequentially, in the same order — and EFT's decision for a task
//!   depends only on its own shard's completion state (the paper's
//!   Equation (2) restricted to `Mᵢ`).
//! - The merge closure runs on the calling thread in global `seq`
//!   order, gated by a reorder buffer, so order-sensitive folds
//!   (float summation in `SimReport`, recorder traces) observe the
//!   sequential event order.
//!
//! # Backpressure and deadlock-freedom
//!
//! All links are bounded [`spsc`](crate::spsc) queues moving
//! `Vec`-batches. The router only ever *blocks* on a worker that
//! provably has work in flight (its input queue is full, or the
//! merge head was already flushed to it), so every blocking wait is
//! matched by a worker that will produce; a worker that dies mid-run
//! drops its result sender on unwind and the router panics instead of
//! hanging. In-flight state is capped at O(workers × queue × batch) —
//! the constant-memory property of the streaming core survives.
//!
//! # Wall-clock observability
//!
//! [`run_sharded_probed`] is the same engine with a
//! [`PipelineProbe`](flowsched_obs::pipeline::PipelineProbe) threaded
//! through every stage: router batch assembly ([`Stage::Route`]),
//! blocking on a full SPSC queue ([`Stage::EnqueueWait`], which also
//! covers the result-draining done while waiting), worker blocking on
//! an empty input queue ([`Stage::DequeueWait`]), per-batch kernel
//! execution ([`Stage::Dispatch`]), and the in-order merge
//! ([`Stage::Merge`]) — plus reorder-buffer depth, backpressure-stall,
//! and forced-flush gauges. [`run_sharded`] passes
//! [`NoopPipeline`](flowsched_obs::pipeline::NoopPipeline), whose
//! `ENABLED = false` folds every probe (including the clock reads)
//! away, so the unprobed engine is byte-for-byte the pre-observability
//! engine and schedules are never perturbed.

use std::collections::VecDeque;

use flowsched_core::compact::{CompactProcSet, ProcSetRef};
use flowsched_core::machine::MachineId;
use flowsched_core::schedule::Assignment;
use flowsched_core::shard::ShardPlan;
use flowsched_core::stream::ArrivalStream;
use flowsched_core::task::Task;

use flowsched_obs::pipeline::{NoopPipeline, PipelineProbe, Stage, StageTimer};

use crate::pool::ThreadPool;
use crate::spsc::{self, TrySendError};

/// Tuning knobs for [`run_sharded`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Worker thread budget; the engine uses `min(threads, shards)`
    /// and runs inline (no threads at all) when that is ≤ 1.
    pub threads: usize,
    /// Tasks per routed batch. Batching amortizes the per-message lock
    /// traffic; dispatch per task is ~100 ns, so 256 keeps queue
    /// overhead a small fraction without hurting pipelining.
    pub batch: usize,
    /// Batches each bounded queue holds before its producer blocks.
    pub queue_cap: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            threads: crate::default_threads(),
            batch: 256,
            queue_cap: 4,
        }
    }
}

impl ShardedConfig {
    /// The default configuration with an explicit thread budget.
    pub fn with_threads(threads: usize) -> Self {
        ShardedConfig {
            threads,
            ..ShardedConfig::default()
        }
    }
}

/// One routed arrival: the set is pre-rebased to the shard's local
/// machine numbering so the worker does no plan arithmetic.
struct TaskMsg {
    seq: u64,
    shard: u32,
    task: Task,
    set: CompactProcSet,
}

/// One dispatch decision, already rebased back to global machine ids.
struct ResultMsg {
    seq: u64,
    task: Task,
    assignment: Assignment,
}

/// Rebases a shard-local assignment to global machine numbering.
fn globalize(a: Assignment, base: usize) -> Assignment {
    Assignment::new(MachineId(a.machine.index() + base), a.start)
}

/// Owned copy of `set` renumbered to the shard starting at `base`.
///
/// Only intervals and explicit sets can live in a shard with
/// `base > 0`: prefixes and wrapping rings both contain machine 0, so
/// they always route to the first shard.
fn rebase_owned(set: &ProcSetRef<'_>, base: usize) -> CompactProcSet {
    if base == 0 {
        return CompactProcSet::from(*set);
    }
    match *set {
        ProcSetRef::Interval { lo, hi } => CompactProcSet::Interval {
            lo: lo - base,
            hi: hi - base,
        },
        ProcSetRef::Explicit(s) => CompactProcSet::Explicit(s.iter().map(|&j| j - base).collect()),
        ProcSetRef::Prefix { .. } | ProcSetRef::Ring { .. } => {
            unreachable!("prefix/ring sets contain machine 0 and route to the base-0 shard")
        }
    }
}

/// Borrowed counterpart of [`rebase_owned`] for the inline path, using
/// `scratch` to renumber explicit sets without allocating per task.
fn rebase_view<'a>(
    set: ProcSetRef<'a>,
    base: usize,
    scratch: &'a mut Vec<usize>,
) -> ProcSetRef<'a> {
    if base == 0 {
        return set;
    }
    match set {
        ProcSetRef::Interval { lo, hi } => ProcSetRef::Interval {
            lo: lo - base,
            hi: hi - base,
        },
        ProcSetRef::Explicit(s) => {
            scratch.clear();
            scratch.extend(s.iter().map(|&j| j - base));
            ProcSetRef::Explicit(scratch)
        }
        ProcSetRef::Prefix { .. } | ProcSetRef::Ring { .. } => {
            unreachable!("prefix/ring sets contain machine 0 and route to the base-0 shard")
        }
    }
}

/// Routes every arrival of `stream` to its shard's dispatcher and
/// replays the decisions to `merge` in strict arrival order.
///
/// `make_dispatcher(s)` is called once per shard, in shard order,
/// whatever the thread budget — so dispatcher construction (including
/// any per-shard RNG seeding) is deterministic. The dispatcher for
/// shard `s` works in local machine numbering `0..plan.len_of(s)`;
/// `merge` sees global machine ids.
///
/// With one worker (or a single-shard plan) everything runs inline on
/// the calling thread — same dispatchers, same per-shard subsequences,
/// same merge order, so the output is identical at every thread count,
/// including zero extra threads.
///
/// **Drop contract:** every dispatcher closure is dropped before this
/// function returns, on both the inline path (scope exit) and the
/// threaded path (the pool join at the end waits for each worker to
/// finish and release its job). Callers may therefore use drop-guards
/// inside the closures to flush per-shard state — e.g. kernel decision
/// counters — into shared accumulators read after the call.
///
/// # Panics
/// Panics if the stream and plan disagree on the machine count, if
/// releases decrease, if an arrival's set straddles a shard boundary
/// (the plan does not cover the family), or if a worker thread panics.
pub fn run_sharded<S, D, F, M>(
    stream: S,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    make_dispatcher: F,
    merge: M,
) where
    S: ArrivalStream,
    D: FnMut(Task, ProcSetRef<'_>) -> Assignment + Send + 'static,
    F: FnMut(usize) -> D,
    M: FnMut(u64, Task, Assignment),
{
    run_sharded_probed(stream, plan, cfg, make_dispatcher, merge, NoopPipeline);
}

/// [`run_sharded`] with a wall-clock [`PipelineProbe`] observing every
/// stage of the transport (see the module docs for the stage map).
///
/// The probe never influences routing, batching, or merge order: a
/// probed run produces the identical assignment sequence, and with
/// [`NoopPipeline`] the whole function monomorphizes to the unprobed
/// engine — every `Instant::now()` sits behind `P::ENABLED`.
///
/// The probe is cloned once per worker; implementations share state
/// through the clones (e.g. `PipelineMetrics` is an `Arc` of atomics),
/// so one handle retained by the caller sees all threads' spans.
pub fn run_sharded_probed<S, D, F, M, P>(
    mut stream: S,
    plan: &ShardPlan,
    cfg: &ShardedConfig,
    mut make_dispatcher: F,
    mut merge: M,
    probe: P,
) where
    S: ArrivalStream,
    D: FnMut(Task, ProcSetRef<'_>) -> Assignment + Send + 'static,
    F: FnMut(usize) -> D,
    M: FnMut(u64, Task, Assignment),
    P: PipelineProbe,
{
    assert_eq!(
        stream.machines(),
        plan.machines(),
        "stream and shard plan disagree on machine count"
    );
    assert!(cfg.batch >= 1, "batch size must be positive");
    assert!(cfg.queue_cap >= 1, "queue capacity must be positive");
    let shards = plan.shards();
    let workers = cfg.threads.min(shards);

    if workers <= 1 {
        // Inline path: no threads, no copies — but the exact same
        // dispatchers, routing, and merge order as the threaded path.
        let mut dispatchers: Vec<D> = (0..shards).map(&mut make_dispatcher).collect();
        let mut scratch: Vec<usize> = Vec::new();
        let mut last_release = f64::NEG_INFINITY;
        let mut seq: u64 = 0;
        while let Some((task, set)) = stream.next_arrival() {
            assert!(
                task.release >= last_release,
                "arrival stream must be in non-decreasing release order \
                 ({} after {last_release})",
                task.release
            );
            last_release = task.release;
            let t = StageTimer::start(&probe);
            let s = plan.route(&set);
            let base = plan.start_of(s);
            let local = rebase_view(set, base, &mut scratch);
            t.stop(&probe, Stage::Route, 1);
            let t = StageTimer::start(&probe);
            let a = dispatchers[s](task, local);
            t.stop(&probe, Stage::Dispatch, 1);
            let t = StageTimer::start(&probe);
            merge(seq, task, globalize(a, base));
            t.stop(&probe, Stage::Merge, 1);
            seq += 1;
        }
        return;
    }

    // Threaded path. The pool is declared first so its Drop (which
    // joins workers) runs *after* the channel endpoints below are gone:
    // closed channels are what unblock the workers, even on unwind.
    let pool = ThreadPool::new(workers);

    // Dispatchers are created in shard order (determinism), then dealt
    // round-robin: worker w owns shards {w, w+workers, …}, so a shard's
    // local index on its worker is s / workers.
    let mut per_worker: Vec<Vec<(usize, D)>> = (0..workers).map(|_| Vec::new()).collect();
    for s in 0..shards {
        per_worker[s % workers].push((plan.start_of(s), make_dispatcher(s)));
    }

    let mut in_txs: Vec<spsc::Sender<Vec<TaskMsg>>> = Vec::with_capacity(workers);
    let mut out_rxs: Vec<spsc::Receiver<Vec<ResultMsg>>> = Vec::with_capacity(workers);
    for mut dispatchers in per_worker {
        let (in_tx, in_rx) = spsc::channel::<Vec<TaskMsg>>(cfg.queue_cap);
        let (out_tx, out_rx) = spsc::channel::<Vec<ResultMsg>>(cfg.queue_cap);
        in_txs.push(in_tx);
        out_rxs.push(out_rx);
        let wprobe = probe.clone();
        pool.execute(move || {
            loop {
                let t = StageTimer::start(&wprobe);
                let Some(batch) = in_rx.recv() else { break };
                t.stop(&wprobe, Stage::DequeueWait, 0);
                let t = StageTimer::start(&wprobe);
                let items = batch.len() as u64;
                let mut out = Vec::with_capacity(batch.len());
                for msg in batch {
                    let (base, disp) = &mut dispatchers[msg.shard as usize / workers];
                    let a = disp(msg.task, msg.set.as_view());
                    out.push(ResultMsg {
                        seq: msg.seq,
                        task: msg.task,
                        assignment: globalize(a, *base),
                    });
                }
                t.stop(&wprobe, Stage::Dispatch, items);
                if out_tx.send(out).is_err() {
                    // Router gone (it panicked and dropped the
                    // receiver) — abandon quietly so its unwind can
                    // join us.
                    return;
                }
            }
        });
    }

    // Router + merger state, all on the calling thread. `pending`
    // remembers which worker owns each in-flight seq, in seq order;
    // `rbuf[w]` holds worker w's results not yet old enough to merge
    // (each worker's results arrive in that worker's seq order).
    let mut obuf: Vec<Vec<TaskMsg>> = (0..workers)
        .map(|_| Vec::with_capacity(cfg.batch))
        .collect();
    let mut pending: VecDeque<u32> = VecDeque::new();
    let mut rbuf: Vec<VecDeque<ResultMsg>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut next_merge: u64 = 0;

    // Merges every result that is next in seq order and already here.
    let merge_ready = |pending: &mut VecDeque<u32>,
                       rbuf: &mut [VecDeque<ResultMsg>],
                       next_merge: &mut u64,
                       merge: &mut M| {
        let t = StageTimer::start(&probe);
        let before = *next_merge;
        while let Some(&w) = pending.front() {
            match rbuf[w as usize].pop_front() {
                Some(r) => {
                    debug_assert_eq!(r.seq, *next_merge, "per-worker results arrive in seq order");
                    merge(r.seq, r.task, r.assignment);
                    *next_merge += 1;
                    pending.pop_front();
                }
                None => break,
            }
        }
        let merged = *next_merge - before;
        if merged > 0 {
            t.stop(&probe, Stage::Merge, merged);
        }
    };
    // Blocking receive of worker w's next result batch; `None` means
    // the worker died mid-run.
    let recv_from =
        |out_rxs: &[spsc::Receiver<Vec<ResultMsg>>], rbuf: &mut [VecDeque<ResultMsg>], w: usize| {
            match out_rxs[w].recv() {
                Some(results) => rbuf[w].extend(results),
                None => panic!("sharded worker {w} terminated before finishing its tasks"),
            }
        };
    // Sends worker w's buffered batch, draining w's results while the
    // queue is full. Blocking here is safe: a full input queue proves w
    // has unprocessed batches, so w will produce results.
    let flush = |obuf: &mut [Vec<TaskMsg>],
                 in_txs: &[spsc::Sender<Vec<TaskMsg>>],
                 out_rxs: &[spsc::Receiver<Vec<ResultMsg>>],
                 rbuf: &mut [VecDeque<ResultMsg>],
                 w: usize| {
        if obuf[w].is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut obuf[w]);
        match in_txs[w].try_send(batch) {
            Ok(()) => return,
            Err(TrySendError::Full(b)) => batch = b,
            Err(TrySendError::Closed(_)) => {
                panic!("sharded worker {w} terminated before finishing its tasks")
            }
        }
        // Queue full: the span covers the whole retry loop, including
        // the result-draining we do while waiting for capacity.
        let t = StageTimer::start(&probe);
        loop {
            probe.backpressure_stall();
            recv_from(out_rxs, rbuf, w);
            match in_txs[w].try_send(batch) {
                Ok(()) => break,
                Err(TrySendError::Full(b)) => batch = b,
                Err(TrySendError::Closed(_)) => {
                    panic!("sharded worker {w} terminated before finishing its tasks")
                }
            }
        }
        t.stop(&probe, Stage::EnqueueWait, 0);
    };

    // If `pending` ever reaches this, the merge head is stuck behind a
    // not-yet-flushed batch (e.g. one hot worker racing ahead while the
    // head's owner trickles); force the head through to keep in-flight
    // state bounded.
    let high_water = (cfg.queue_cap + 2) * cfg.batch * workers;

    let mut last_release = f64::NEG_INFINITY;
    let mut seq: u64 = 0;
    while let Some((task, set)) = stream.next_arrival() {
        assert!(
            task.release >= last_release,
            "arrival stream must be in non-decreasing release order \
             ({} after {last_release})",
            task.release
        );
        last_release = task.release;
        let t = StageTimer::start(&probe);
        let s = plan.route(&set);
        let w = s % workers;
        obuf[w].push(TaskMsg {
            seq,
            shard: s as u32,
            task,
            set: rebase_owned(&set, plan.start_of(s)),
        });
        t.stop(&probe, Stage::Route, 1);
        pending.push_back(w as u32);
        seq += 1;
        if P::ENABLED {
            probe.queue_depth(pending.len() as u64);
        }
        if obuf[w].len() >= cfg.batch {
            flush(&mut obuf, &in_txs, &out_rxs, &mut rbuf, w);
        }
        // Opportunistically pull whatever results are ready and merge
        // the in-order prefix — keeps the reorder buffer short without
        // ever blocking on the fast path.
        for w in 0..workers {
            while let Some(results) = out_rxs[w].try_recv() {
                rbuf[w].extend(results);
            }
        }
        merge_ready(&mut pending, &mut rbuf, &mut next_merge, &mut merge);
        while pending.len() >= high_water {
            probe.forced_flush();
            let head = *pending.front().unwrap() as usize;
            flush(&mut obuf, &in_txs, &out_rxs, &mut rbuf, head);
            if rbuf[head].is_empty() {
                recv_from(&out_rxs, &mut rbuf, head);
            }
            merge_ready(&mut pending, &mut rbuf, &mut next_merge, &mut merge);
        }
    }

    // End of stream: push out the partial batches, close the input
    // side so workers drain and exit, then merge the tail in order.
    for w in 0..workers {
        flush(&mut obuf, &in_txs, &out_rxs, &mut rbuf, w);
    }
    drop(in_txs);
    while !pending.is_empty() {
        let head = *pending.front().unwrap() as usize;
        if rbuf[head].is_empty() {
            recv_from(&out_rxs, &mut rbuf, head);
        }
        merge_ready(&mut pending, &mut rbuf, &mut next_merge, &mut merge);
    }
    drop(out_rxs);
    drop(pool); // joins workers
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature EFT: earliest completion over the set, lowest index
    /// wins — enough to make results depend on the full per-shard
    /// dispatch history, which is what the equivalence tests need.
    fn mini_eft(machines: usize) -> impl FnMut(Task, ProcSetRef<'_>) -> Assignment + Send {
        let mut done = vec![0.0f64; machines];
        move |task, set| {
            let u = set
                .iter()
                .min_by(|&a, &b| done[a].partial_cmp(&done[b]).unwrap())
                .expect("nonempty set");
            let start = done[u].max(task.release);
            done[u] = start + task.ptime;
            Assignment::new(MachineId(u), start)
        }
    }

    /// A deterministic blocked workload: `n` tasks round-robining over
    /// `m / block` disjoint blocks with drifting releases and varied
    /// processing times.
    fn blocked_stream(m: usize, block: usize, n: usize) -> impl ArrivalStream + use<> {
        struct Blocked {
            m: usize,
            block: usize,
            n: usize,
            next: usize,
        }
        impl ArrivalStream for Blocked {
            fn machines(&self) -> usize {
                self.m
            }
            fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
                if self.next >= self.n {
                    return None;
                }
                let i = self.next;
                self.next += 1;
                let blocks = self.m / self.block;
                let b = (i * 7 + i / 3) % blocks;
                let task = Task::new(i as f64 * 0.25, 1.0 + (i % 5) as f64 * 0.5);
                let lo = b * self.block;
                Some((task, ProcSetRef::interval(lo, lo + self.block - 1)))
            }
            fn len_hint(&self) -> Option<usize> {
                Some(self.n - self.next)
            }
        }
        Blocked {
            m,
            block,
            n,
            next: 0,
        }
    }

    fn run_collect(
        plan: &ShardPlan,
        cfg: &ShardedConfig,
        m: usize,
        block: usize,
        n: usize,
    ) -> Vec<Assignment> {
        let mut out: Vec<(u64, Assignment)> = Vec::new();
        run_sharded(
            blocked_stream(m, block, n),
            plan,
            cfg,
            |s| mini_eft(plan.len_of(s)),
            |seq, _task, a| out.push((seq, a)),
        );
        assert!(out.windows(2).all(|w| w[0].0 + 1 == w[1].0), "merge order");
        out.into_iter().map(|(_, a)| a).collect()
    }

    #[test]
    fn threaded_matches_inline_at_every_thread_count() {
        let (m, block, n) = (16, 4, 4000);
        let plan = ShardPlan::blocks(m, block, 16);
        assert_eq!(plan.shards(), 4);
        let baseline = run_collect(&plan, &ShardedConfig::with_threads(1), m, block, n);
        assert_eq!(baseline.len(), n);
        for threads in [2, 3, 4, 7] {
            let cfg = ShardedConfig::with_threads(threads);
            assert_eq!(
                run_collect(&plan, &cfg, m, block, n),
                baseline,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn tiny_batches_exercise_backpressure_without_reordering() {
        let (m, block, n) = (8, 2, 2000);
        let plan = ShardPlan::blocks(m, block, 16);
        let baseline = run_collect(&plan, &ShardedConfig::with_threads(1), m, block, n);
        let cfg = ShardedConfig {
            threads: 4,
            batch: 3,
            queue_cap: 1,
        };
        assert_eq!(run_collect(&plan, &cfg, m, block, n), baseline);
    }

    #[test]
    fn skewed_load_hits_the_high_water_path() {
        // Everything lands in shard 0 except one final task for shard 1,
        // so the merge head starves until the flow-control flush kicks in.
        struct Skew {
            next: usize,
        }
        impl ArrivalStream for Skew {
            fn machines(&self) -> usize {
                4
            }
            fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
                if self.next >= 5000 {
                    return None;
                }
                let i = self.next;
                self.next += 1;
                // Task 0 goes to shard 1 and then sits unflushed in the
                // router buffer while shard 0 floods.
                let lo = if i == 0 { 2 } else { 0 };
                Some((Task::new(i as f64, 1.0), ProcSetRef::interval(lo, lo + 1)))
            }
        }
        let plan = ShardPlan::from_cuts(4, vec![0, 2]);
        let cfg = ShardedConfig {
            threads: 2,
            batch: 4,
            queue_cap: 1,
        };
        let mut seen: u64 = 0;
        run_sharded(
            Skew { next: 0 },
            &plan,
            &cfg,
            |s| mini_eft(plan.len_of(s)),
            |seq, _t, _a| {
                assert_eq!(seq, seen);
                seen += 1;
            },
        );
        assert_eq!(seen, 5000);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn straddling_set_panics_not_hangs() {
        struct Bad {
            fired: bool,
        }
        impl ArrivalStream for Bad {
            fn machines(&self) -> usize {
                4
            }
            fn next_arrival(&mut self) -> Option<(Task, ProcSetRef<'_>)> {
                if self.fired {
                    return None;
                }
                self.fired = true;
                Some((Task::unit(0.0), ProcSetRef::interval(1, 2)))
            }
        }
        let plan = ShardPlan::from_cuts(4, vec![0, 2]);
        run_sharded(
            Bad { fired: false },
            &plan,
            &ShardedConfig::with_threads(2),
            |s| mini_eft(plan.len_of(s)),
            |_, _, _| {},
        );
    }

    #[test]
    fn worker_panic_propagates_to_the_router() {
        let plan = ShardPlan::from_cuts(4, vec![0, 2]);
        let cfg = ShardedConfig {
            threads: 2,
            batch: 1,
            queue_cap: 1,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded(
                blocked_stream(4, 2, 1000),
                &plan,
                &cfg,
                |_s| {
                    let mut count = 0usize;
                    move |task: Task, set: ProcSetRef<'_>| {
                        count += 1;
                        if count > 3 {
                            panic!("injected dispatcher failure");
                        }
                        Assignment::new(MachineId(set.min().unwrap()), task.release)
                    }
                },
                |_, _, _| {},
            )
        }));
        assert!(result.is_err(), "router must notice the dead worker");
    }

    #[test]
    fn probed_run_matches_unprobed_and_records_spans() {
        use flowsched_obs::pipeline::PipelineMetrics;
        let (m, block, n) = (16, 4, 4000);
        let plan = ShardPlan::blocks(m, block, 16);
        let baseline = run_collect(&plan, &ShardedConfig::with_threads(4), m, block, n);
        let metrics = PipelineMetrics::new();
        let mut probed: Vec<Assignment> = Vec::new();
        run_sharded_probed(
            blocked_stream(m, block, n),
            &plan,
            &ShardedConfig::with_threads(4),
            |s| mini_eft(plan.len_of(s)),
            |_seq, _t, a| probed.push(a),
            metrics.clone(),
        );
        assert_eq!(probed, baseline, "the probe must not perturb the schedule");
        let nu = n as u64;
        assert_eq!(metrics.stage(Stage::Route).total_items, nu);
        assert_eq!(metrics.stage(Stage::Dispatch).total_items, nu);
        assert_eq!(metrics.stage(Stage::Merge).total_items, nu);
        assert!(metrics.stage(Stage::DequeueWait).spans > 0);
        assert!(metrics.depth_high_water() >= 1);
    }

    #[test]
    fn probed_inline_path_records_per_task_spans() {
        use flowsched_obs::pipeline::PipelineMetrics;
        let plan = ShardPlan::single(4);
        let metrics = PipelineMetrics::new();
        let mut n = 0u64;
        run_sharded_probed(
            blocked_stream(4, 4, 100),
            &plan,
            &ShardedConfig::with_threads(1),
            |s| mini_eft(plan.len_of(s)),
            |_, _, _| n += 1,
            metrics.clone(),
        );
        assert_eq!(n, 100);
        for stage in [Stage::Route, Stage::Dispatch, Stage::Merge] {
            let s = metrics.stage(stage);
            assert_eq!(s.spans, 100, "inline {} spans", stage.name());
            assert_eq!(s.total_items, 100);
        }
        assert_eq!(metrics.stage(Stage::EnqueueWait).spans, 0);
        assert_eq!(metrics.stage(Stage::DequeueWait).spans, 0);
    }

    #[test]
    fn single_shard_plan_runs_inline() {
        let plan = ShardPlan::single(4);
        // threads > 1 but one shard → workers = 1 → inline path.
        let mut n = 0u64;
        run_sharded(
            blocked_stream(4, 4, 100),
            &plan,
            &ShardedConfig::with_threads(8),
            |s| mini_eft(plan.len_of(s)),
            |seq, _, _| {
                assert_eq!(seq, n);
                n += 1;
            },
        );
        assert_eq!(n, 100);
    }
}
