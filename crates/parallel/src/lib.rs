//! # flowsched-parallel
//!
//! Minimal data-parallel substrate for experiment sweeps.
//!
//! The paper's Figure 10 sweep alone solves ~63 000 LPs (2 strategies ×
//! 21 biases × 15 interval sizes × 100 permutations); runs are independent,
//! so an embarrassingly-parallel `par_map` is all we need. The build
//! environment is offline, so this crate provides the few primitives we
//! use built purely on `std::thread::scope`, `std::sync::mpsc`, and the
//! `std` lock types, in the style of *Rust Atomics and Locks*:
//!
//! - [`par_map`]: order-preserving parallel map with atomic work stealing.
//! - [`par_for_each`]: parallel side-effecting iteration.
//! - [`ThreadPool`]: a persistent pool for heterogeneous jobs.
//! - [`spsc`]: bounded single-producer single-consumer channels.
//! - [`sharded`]: the sharded dispatch runtime — routes an arrival
//!   stream to per-shard dispatchers over bounded queues and merges the
//!   decisions back in strict arrival order, bitwise-identical to a
//!   sequential run.
//!
//! All primitives propagate panics from worker closures to the caller and
//! fall back to sequential execution for tiny inputs (grain control).

pub mod pool;
pub mod sharded;
pub mod spsc;

pub use pool::ThreadPool;
pub use sharded::{run_sharded, ShardedConfig};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by the free functions: the machine's
/// available parallelism, overridable (mainly for tests) with the
/// `FLOWSCHED_THREADS` environment variable.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FLOWSCHED_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Inputs smaller than this run sequentially — spawning threads for a
/// handful of items costs more than it saves.
const SEQUENTIAL_CUTOFF: usize = 8;

/// Parallel, order-preserving map: `par_map(xs, f)[i] == f(&xs[i])`.
///
/// ```
/// use flowsched_parallel::par_map;
///
/// let xs: Vec<u64> = (0..100).collect();
/// let squares = par_map(&xs, |&x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// Work distribution is dynamic: workers repeatedly claim the next
/// unprocessed index from a shared atomic counter, so uneven per-item
/// costs (e.g. LP solves of varying difficulty) balance automatically.
///
/// # Panics
/// If `f` panics on any item, the panic is propagated to the caller
/// (`std::thread::scope` joins all workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = default_threads().min(items.len().max(1));
    if items.len() <= SEQUENTIAL_CUTOFF || threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);

    // Results travel back over a channel keyed by index; the receiver
    // fills the ordered slots, so no unsafe slice splitting is needed.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || {
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    // The receiver outlives the workers; send only fails
                    // while the caller is already unwinding.
                    let _ = tx.send((i, r));
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// Parallel side-effecting iteration over `items`.
///
/// # Panics
/// Propagates panics from `f`.
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let threads = default_threads().min(items.len().max(1));
    if items.len() <= SEQUENTIAL_CUTOFF || threads <= 1 {
        items.iter().for_each(&f);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                f(&items[i]);
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel, preserving index order in the result.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential() {
        let xs: Vec<u64> = (0..1000).collect();
        let par = par_map(&xs, |&x| x * x + 1);
        let seq: Vec<u64> = xs.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_preserves_order_under_uneven_cost() {
        let xs: Vec<usize> = (0..200).collect();
        let out = par_map(&xs, |&x| {
            if x % 17 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(out, xs);
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        let n = 500;
        let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let idx: Vec<usize> = (0..n).collect();
        par_for_each(&idx, |&i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn par_map_range_works() {
        assert_eq!(
            par_map_range(100, |i| i * 2),
            (0..100).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn panics_propagate() {
        let xs: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&xs, |&x| {
                if x == 57 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let xs: Vec<usize> = (0..32).collect();
        let out = par_map(&xs, |&x| {
            let ys: Vec<usize> = (0..16).collect();
            par_map(&ys, |&y| x * y).iter().sum::<usize>()
        });
        let expected: Vec<usize> = xs.iter().map(|&x| x * (0..16).sum::<usize>()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
