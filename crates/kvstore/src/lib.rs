//! # flowsched-kvstore
//!
//! A model of a replicated key-value store, the system motivating the
//! paper: requests target keys, keys live on owner machines, and
//! replication widens each request's processing set to an interval of
//! machines.
//!
//! - [`replication`]: the paper's two replication strategies
//!   (Section 7.2) — *overlapping* ring intervals `I_k(u)` à la
//!   Dynamo/Cassandra, and *disjoint* blocks of `k` machines.
//! - [`popularity`]: machine-level popularity `P(Eⱼ)` (Zipf with the
//!   Uniform / Worst-case / Shuffled bias cases) and the induced load
//!   distribution `λ·P(Eⱼ)` of Figure 8.
//! - [`keyspace`]: an explicit key universe with per-key Zipf popularity
//!   hashed onto owner machines — the mechanism by which "multiple tasks
//!   may share the same processing time and processing set" (Section 3).
//! - [`cluster`]: ties it together — a cluster generates a stream of
//!   unit-task requests (Poisson arrivals, popularity-biased owners,
//!   replica processing sets) as a scheduling [`Instance`].
//!
//! [`Instance`]: flowsched_core::Instance

pub mod cluster;
pub mod keyspace;
pub mod popularity;
pub mod replication;

pub use cluster::{ClusterConfig, KvCluster};
pub use keyspace::Keyspace;
pub use popularity::{load_distribution, machine_popularity};
pub use replication::ReplicationStrategy;
