//! An explicit key universe with per-key popularity.
//!
//! The paper models popularity directly at the machine level; real stores
//! have popularity at the *key* level, which the partitioning then
//! aggregates onto owner machines. This module provides that finer model
//! — keys hashed onto machines, per-key Zipf popularity — and tests that
//! the induced machine-level distribution is the aggregation of its keys,
//! matching the paper's abstraction.

use flowsched_stats::rng::splitmix64;
use flowsched_stats::zipf::Zipf;
use rand::Rng;

/// A fixed universe of `num_keys` keys partitioned over `m` machines by
/// hash, with Zipf(`s`) popularity over key ranks.
#[derive(Debug, Clone)]
pub struct Keyspace {
    num_keys: usize,
    m: usize,
    key_popularity: Zipf,
    owners: Vec<usize>,
}

impl Keyspace {
    /// Builds a keyspace: key `x`'s owner is `splitmix64(x) mod m` and its
    /// popularity rank is its index (key 0 the hottest).
    ///
    /// # Panics
    /// Panics unless `num_keys ≥ 1` and `m ≥ 1`.
    pub fn new(num_keys: usize, m: usize, s: f64) -> Self {
        assert!(num_keys >= 1 && m >= 1);
        let owners: Vec<usize> = (0..num_keys)
            .map(|x| (splitmix64(x as u64) % m as u64) as usize)
            .collect();
        Keyspace {
            num_keys,
            m,
            key_popularity: Zipf::new(num_keys, s),
            owners,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.num_keys
    }

    /// True when the keyspace has no keys (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.num_keys == 0
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.m
    }

    /// The owner machine of a key.
    pub fn owner(&self, key: usize) -> usize {
        self.owners[key]
    }

    /// Samples a key according to its popularity.
    pub fn sample_key(&self, rng: &mut impl Rng) -> usize {
        self.key_popularity.sample(rng)
    }

    /// The machine-level popularity induced by aggregating key
    /// popularity over owners — the paper's `P(Eⱼ)`.
    pub fn induced_machine_popularity(&self) -> Vec<f64> {
        let mut probs = vec![0.0; self.m];
        for (key, &owner) in self.owners.iter().enumerate() {
            probs[owner] += self.key_popularity.prob(key);
        }
        probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_stats::rng::seeded_rng;

    #[test]
    fn induced_popularity_sums_to_one() {
        let ks = Keyspace::new(1000, 15, 1.0);
        let probs = ks.induced_machine_popularity();
        assert_eq!(probs.len(), 15);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_keys_matches_induced_machine_marginal() {
        let ks = Keyspace::new(200, 5, 1.0);
        let probs = ks.induced_machine_popularity();
        let mut rng = seeded_rng(8);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let key = ks.sample_key(&mut rng);
            counts[ks.owner(key)] += 1;
        }
        for j in 0..5 {
            let emp = counts[j] as f64 / n as f64;
            assert!(
                (emp - probs[j]).abs() < 0.01,
                "machine {j}: empirical {emp} vs induced {p}",
                p = probs[j]
            );
        }
    }

    #[test]
    fn owners_are_stable_and_in_range() {
        let ks = Keyspace::new(100, 7, 0.5);
        let ks2 = Keyspace::new(100, 7, 0.5);
        for key in 0..100 {
            assert!(ks.owner(key) < 7);
            assert_eq!(ks.owner(key), ks2.owner(key));
        }
    }

    #[test]
    fn uniform_keys_induce_roughly_uniform_machines() {
        // With s = 0 and many keys, each machine owns ≈ 1/m of the mass.
        let ks = Keyspace::new(10_000, 4, 0.0);
        for &p in &ks.induced_machine_popularity() {
            assert!((p - 0.25).abs() < 0.02, "induced {p}");
        }
    }

    #[test]
    fn hot_key_concentrates_its_owner() {
        // Extreme bias: key 0 dominates, so its owner dominates.
        let ks = Keyspace::new(50, 5, 3.0);
        let probs = ks.induced_machine_popularity();
        let hot_owner = ks.owner(0);
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert_eq!(probs[hot_owner], max);
        assert!(max > 0.5);
    }
}
