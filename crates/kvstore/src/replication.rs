//! Replication strategies (paper Section 7.2).
//!
//! Starting from unreplicated data (`Mᵢ = {M_u}`, the owner), a strategy
//! widens each processing set to an interval `I_k(u)` of `k` machines:
//!
//! - **Overlapping**: `m` distinct ring intervals — machine `u`'s data is
//!   replicated on its `k − 1` clockwise successors, as in Dynamo,
//!   Cassandra, Riak and Voldemort. Good load spreading, but EFT's
//!   competitive ratio degrades to `m − k + 1` (Theorems 8–10).
//! - **Disjoint**: the cluster is split into `⌈m/k⌉` fixed blocks; data is
//!   replicated within the owner's block. EFT stays
//!   `(3 − 2/k)`-competitive (Corollary 1), but hot blocks cannot shed
//!   load.

use flowsched_core::compact::ProcSetRef;
use flowsched_core::fault::FaultPlan;
use flowsched_core::procset::ProcSet;

/// The two replication shapes compared throughout Section 7, plus one
/// candidate answer to the paper's concluding open question ("devising a
/// … replication strategy that would provide efficient performance on
/// average and in the worst case").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicationStrategy {
    /// Ring intervals `I_k(u) = {u, u+1, …, u+k−1 mod m}`.
    Overlapping,
    /// Disjoint blocks `I_k(u) = {k⌊u/k⌋, …, min(m, k⌊u/k⌋+k)−1}`.
    Disjoint,
    /// *Staggered blocks* (this workspace's exploration of the open
    /// question): two block layouts on the ring — layout A aligned at 0,
    /// layout B shifted by `⌊k/2⌋` — with even owners replicating in
    /// their layout-A block and odd owners in their layout-B block.
    /// Only `≤ 2⌈m/k⌉` distinct replica sets exist (vs `m` for the ring),
    /// yet adjacent blocks overlap by half, letting hot spots shed load
    /// across block boundaries.
    Staggered,
}

impl std::fmt::Display for ReplicationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationStrategy::Overlapping => write!(f, "Overlapping"),
            ReplicationStrategy::Disjoint => write!(f, "Disjoint"),
            ReplicationStrategy::Staggered => write!(f, "Staggered"),
        }
    }
}

impl ReplicationStrategy {
    /// The replica set `I_k(u)` for data owned by machine `u`
    /// (zero-based) with replication factor `k` on `m` machines.
    ///
    /// ```
    /// use flowsched_kvstore::replication::ReplicationStrategy;
    ///
    /// // Paper Figure 9 (m = 6, k = 3): data owned by M3 is replicated on
    /// // {M3, M4, M5} with the ring, {M1, M2, M3} with disjoint blocks.
    /// let ring = ReplicationStrategy::Overlapping.replica_set(2, 3, 6);
    /// assert_eq!(ring.as_slice(), &[2, 3, 4]);
    /// let block = ReplicationStrategy::Disjoint.replica_set(2, 3, 6);
    /// assert_eq!(block.as_slice(), &[0, 1, 2]);
    /// ```
    ///
    /// # Panics
    /// Panics unless `u < m` and `1 ≤ k ≤ m`.
    pub fn replica_set(self, owner: usize, k: usize, m: usize) -> ProcSet {
        assert!(owner < m, "owner machine out of range");
        assert!(k >= 1 && k <= m, "replication factor must be in 1..=m");
        match self {
            ReplicationStrategy::Overlapping => ProcSet::ring_interval(owner, k, m),
            ReplicationStrategy::Disjoint => {
                let base = k * (owner / k);
                ProcSet::interval(base, (base + k - 1).min(m - 1))
            }
            ReplicationStrategy::Staggered => {
                // Layout A for even owners, layout B (shifted ⌊k/2⌋) for
                // odd owners; the owner's block on the ring.
                let offset = if owner.is_multiple_of(2) { 0 } else { k / 2 };
                let pos = (owner + m - offset % m) % m;
                let start = (offset + k * (pos / k)) % m;
                ProcSet::ring_interval(start, k, m)
            }
        }
    }

    /// The replica set `I_k(u)` as a compact [`ProcSetRef`] — every
    /// strategy is a (possibly wrapping) interval on the ring, so the
    /// member vector never needs to exist. Semantically equal to
    /// [`ReplicationStrategy::replica_set`] for the same arguments;
    /// streams lend this to the engines at O(1) per request.
    ///
    /// # Panics
    /// Panics unless `u < m` and `1 ≤ k ≤ m`.
    pub fn replica_ref(self, owner: usize, k: usize, m: usize) -> ProcSetRef<'static> {
        assert!(owner < m, "owner machine out of range");
        assert!(k >= 1 && k <= m, "replication factor must be in 1..=m");
        match self {
            ReplicationStrategy::Overlapping => ProcSetRef::ring(owner, k, m),
            ReplicationStrategy::Disjoint => {
                let base = k * (owner / k);
                ProcSetRef::interval(base, (base + k - 1).min(m - 1))
            }
            ReplicationStrategy::Staggered => {
                let offset = if owner.is_multiple_of(2) { 0 } else { k / 2 };
                let pos = (owner + m - offset % m) % m;
                let start = (offset + k * (pos / k)) % m;
                ProcSetRef::ring(start, k, m)
            }
        }
    }

    /// The replica set `I_k(u)` shrunk to the replicas alive at time
    /// `at` under `plan` — the kv-store view of machine failure: a
    /// request for `u`'s data can only be served by replicas whose
    /// machines are up, so crashes temporarily shrink the effective
    /// replication factor. Returns `None` when *every* replica is down
    /// (the request must wait for a recovery; see
    /// [`FaultPlan::next_alive_in`]).
    ///
    /// ```
    /// use flowsched_core::fault::FaultPlan;
    /// use flowsched_core::procset::ProcSet;
    /// use flowsched_kvstore::replication::ReplicationStrategy;
    ///
    /// // Owner M3's disjoint block {0, 1, 2} with machine 1 down over
    /// // [2, 5): requests at t = 3 fall back to the surviving pair.
    /// let plan = FaultPlan::none(6).with_outage(1, 2.0, 5.0);
    /// let s = ReplicationStrategy::Disjoint.alive_replica_set(2, 3, 6, &plan, 3.0);
    /// assert_eq!(s, Some(ProcSet::new(vec![0, 2])));
    /// ```
    ///
    /// # Panics
    /// Panics unless `u < m`, `1 ≤ k ≤ m`, and `plan` covers `m`
    /// machines.
    pub fn alive_replica_set(
        self,
        owner: usize,
        k: usize,
        m: usize,
        plan: &FaultPlan,
        at: f64,
    ) -> Option<ProcSet> {
        assert!(
            plan.machines() >= m,
            "fault plan covers {} machines, replica sets need {m}",
            plan.machines()
        );
        let full = self.replica_set(owner, k, m);
        let alive: Vec<usize> = full
            .as_slice()
            .iter()
            .copied()
            .filter(|&j| plan.is_alive(j, at))
            .collect();
        if alive.is_empty() {
            None
        } else {
            Some(ProcSet::new(alive))
        }
    }

    /// All `m` replica sets as plain index lists — the `allowed` input of
    /// the max-load solvers (the `flowsched_solver::loadflow` shape).
    pub fn allowed_sets(self, k: usize, m: usize) -> Vec<Vec<usize>> {
        (0..m)
            .map(|u| self.replica_set(u, k, m).as_slice().to_vec())
            .collect()
    }

    /// The paper's two strategies, for sweeps reproducing its figures.
    pub fn all() -> [ReplicationStrategy; 2] {
        [
            ReplicationStrategy::Overlapping,
            ReplicationStrategy::Disjoint,
        ]
    }

    /// The paper's strategies plus this workspace's staggered candidate
    /// (open-question exploration).
    pub fn extended() -> [ReplicationStrategy; 3] {
        [
            ReplicationStrategy::Overlapping,
            ReplicationStrategy::Disjoint,
            ReplicationStrategy::Staggered,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_core::structure;

    #[test]
    fn overlapping_matches_paper_figure_9() {
        // Figure 9: m = 6, k = 3, owner M3 (zero-based 2) → {M3, M4, M5}.
        let s = ReplicationStrategy::Overlapping.replica_set(2, 3, 6);
        assert_eq!(s, ProcSet::new(vec![2, 3, 4]));
        // Owner M5 (zero-based 4) wraps: {M5, M6, M1}.
        let s = ReplicationStrategy::Overlapping.replica_set(4, 3, 6);
        assert_eq!(s, ProcSet::new(vec![0, 4, 5]));
    }

    #[test]
    fn disjoint_matches_paper_figure_9() {
        // Figure 9: m = 6, k = 3, owner M3 (zero-based 2) → {M1, M2, M3}.
        let s = ReplicationStrategy::Disjoint.replica_set(2, 3, 6);
        assert_eq!(s, ProcSet::new(vec![0, 1, 2]));
        let s = ReplicationStrategy::Disjoint.replica_set(3, 3, 6);
        assert_eq!(s, ProcSet::new(vec![3, 4, 5]));
    }

    #[test]
    fn disjoint_last_block_may_be_short() {
        // m = 7, k = 3: blocks {0,1,2}, {3,4,5}, {6}.
        let s = ReplicationStrategy::Disjoint.replica_set(6, 3, 7);
        assert_eq!(s, ProcSet::singleton(6));
    }

    #[test]
    fn owner_is_always_a_replica() {
        for strategy in ReplicationStrategy::extended() {
            for m in [1usize, 2, 5, 6, 15] {
                for k in 1..=m {
                    for u in 0..m {
                        let s = strategy.replica_set(u, k, m);
                        assert!(
                            s.contains(u),
                            "{strategy} m={m} k={k}: owner {u} missing from {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overlapping_sets_have_size_k() {
        for k in 1..=6 {
            for u in 0..6 {
                assert_eq!(
                    ReplicationStrategy::Overlapping.replica_set(u, k, 6).len(),
                    k
                );
            }
        }
    }

    #[test]
    fn disjoint_family_is_disjoint_structured() {
        let sets: Vec<ProcSet> = (0..15)
            .map(|u| ReplicationStrategy::Disjoint.replica_set(u, 3, 15))
            .collect();
        assert!(structure::is_disjoint_family(&sets));
    }

    #[test]
    fn overlapping_family_is_ring_interval_structured() {
        let sets: Vec<ProcSet> = (0..15)
            .map(|u| ReplicationStrategy::Overlapping.replica_set(u, 3, 15))
            .collect();
        assert!(structure::is_ring_interval_family(&sets, 15));
        assert!(!structure::is_disjoint_family(&sets));
    }

    #[test]
    fn k1_reduces_to_no_replication() {
        for strategy in ReplicationStrategy::extended() {
            for u in 0..5 {
                assert_eq!(strategy.replica_set(u, 1, 5), ProcSet::singleton(u));
            }
        }
    }

    #[test]
    fn k_equals_m_is_full_replication() {
        for strategy in ReplicationStrategy::extended() {
            for u in 0..5 {
                assert_eq!(strategy.replica_set(u, 5, 5), ProcSet::full(5));
            }
        }
    }

    #[test]
    fn staggered_has_few_distinct_sets_and_size_k() {
        let (m, k) = (12usize, 4usize);
        let mut distinct: Vec<ProcSet> = Vec::new();
        for u in 0..m {
            let s = ReplicationStrategy::Staggered.replica_set(u, k, m);
            assert_eq!(s.len(), k, "owner {u}");
            if !distinct.contains(&s) {
                distinct.push(s);
            }
        }
        assert!(
            distinct.len() <= 2 * m.div_ceil(k),
            "{} distinct sets",
            distinct.len()
        );
        // Strictly more than the disjoint partition's block count: the
        // two layouts genuinely interleave.
        assert!(distinct.len() > m.div_ceil(k));
    }

    #[test]
    fn staggered_even_and_odd_owners_use_different_layouts() {
        let (m, k) = (12usize, 4usize);
        // Even owner 0 → aligned block {0..3}; odd owner 3 → shifted
        // layout (blocks at 2, 6, 10) → block {2..5}; odd owner 1 falls
        // in the shifted layout's wrap-around block {10, 11, 0, 1}.
        assert_eq!(
            ReplicationStrategy::Staggered.replica_set(0, k, m),
            ProcSet::interval(0, 3)
        );
        assert_eq!(
            ReplicationStrategy::Staggered.replica_set(3, k, m),
            ProcSet::interval(2, 5)
        );
        assert_eq!(
            ReplicationStrategy::Staggered.replica_set(1, k, m),
            ProcSet::new(vec![0, 1, 10, 11])
        );
    }

    #[test]
    fn staggered_is_ring_interval_structured() {
        use flowsched_core::structure;
        for (m, k) in [(15usize, 3usize), (12, 4), (7, 3), (9, 2)] {
            let sets: Vec<ProcSet> = (0..m)
                .map(|u| ReplicationStrategy::Staggered.replica_set(u, k, m))
                .collect();
            assert!(
                structure::is_ring_interval_family(&sets, m),
                "m={m} k={k}: {sets:?}"
            );
        }
    }

    #[test]
    fn replica_ref_matches_replica_set_everywhere() {
        for strategy in ReplicationStrategy::extended() {
            for m in [1usize, 2, 5, 6, 7, 12, 15] {
                for k in 1..=m {
                    for u in 0..m {
                        let owned = strategy.replica_set(u, k, m);
                        let compact = strategy.replica_ref(u, k, m);
                        assert_eq!(
                            compact, owned,
                            "{strategy} m={m} k={k} u={u}: {compact} vs {owned}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alive_replica_set_shrinks_and_recovers() {
        use flowsched_core::fault::FaultPlan;
        let plan = FaultPlan::none(6)
            .with_outage(1, 2.0, 5.0)
            .with_outage(0, 2.0, 4.0);
        let s = ReplicationStrategy::Disjoint;
        // Fault-free instant: the full block.
        assert_eq!(
            s.alive_replica_set(2, 3, 6, &plan, 0.0),
            Some(ProcSet::new(vec![0, 1, 2]))
        );
        // Two of three replicas down.
        assert_eq!(
            s.alive_replica_set(2, 3, 6, &plan, 3.0),
            Some(ProcSet::singleton(2))
        );
        // Recovery restores membership (outages are closed-open).
        assert_eq!(
            s.alive_replica_set(2, 3, 6, &plan, 5.0),
            Some(ProcSet::new(vec![0, 1, 2]))
        );
        // A block that is entirely down yields None.
        let dark = FaultPlan::none(3)
            .with_outage(0, 0.0, 1.0)
            .with_outage(1, 0.0, 1.0)
            .with_outage(2, 0.0, 1.0);
        assert_eq!(s.alive_replica_set(0, 3, 3, &dark, 0.5), None);
        assert_eq!(
            s.alive_replica_set(0, 3, 3, &dark, 1.0),
            Some(ProcSet::full(3))
        );
    }

    #[test]
    fn allowed_sets_align_with_replica_sets() {
        let allowed = ReplicationStrategy::Overlapping.allowed_sets(3, 6);
        assert_eq!(allowed.len(), 6);
        assert_eq!(allowed[4], vec![0, 4, 5]);
    }
}
