//! Machine-level popularity and load distributions (Sections 7.1, Fig. 8).

use flowsched_stats::zipf::{BiasCase, Zipf};
use rand::Rng;

/// Builds the machine popularity `P(Eⱼ)` for one of the paper's bias
/// cases (`Shuffled` consumes randomness for the permutation).
pub fn machine_popularity(m: usize, s: f64, case: BiasCase, rng: &mut impl Rng) -> Zipf {
    Zipf::bias_case(m, s, case, rng)
}

/// The load distribution of Figure 8: `λ·P(Eⱼ)` per machine. Values above
/// 1.0 mean the machine saturates without replication.
pub fn load_distribution(lambda: f64, popularity: &Zipf) -> Vec<f64> {
    popularity.probs().iter().map(|&p| lambda * p).collect()
}

/// The no-replication load cap `λ ≤ 1 / maxⱼ P(Eⱼ)` (Section 7.2).
pub fn unreplicated_max_load(popularity: &Zipf) -> f64 {
    1.0 / popularity.max_prob()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowsched_stats::rng::seeded_rng;

    #[test]
    fn uniform_case_loads_are_flat() {
        let mut rng = seeded_rng(1);
        let pop = machine_popularity(6, 1.0, BiasCase::Uniform, &mut rng);
        let loads = load_distribution(6.0, &pop);
        for &l in &loads {
            assert!(
                (l - 1.0).abs() < 1e-12,
                "expected 100% per machine, got {l}"
            );
        }
    }

    #[test]
    fn worst_case_loads_decrease() {
        let mut rng = seeded_rng(2);
        let pop = machine_popularity(6, 1.0, BiasCase::WorstCase, &mut rng);
        let loads = load_distribution(6.0, &pop);
        for w in loads.windows(2) {
            assert!(w[0] > w[1]);
        }
        // Figure 8b: with s = 1, λ = m = 6, the hottest machine exceeds
        // 100% load (≈ 2.45 for m = 6).
        assert!(loads[0] > 1.0);
    }

    #[test]
    fn shuffled_case_is_a_permutation_of_worst_case() {
        let mut rng = seeded_rng(3);
        let worst = machine_popularity(6, 1.0, BiasCase::WorstCase, &mut rng);
        let shuffled = machine_popularity(6, 1.0, BiasCase::Shuffled, &mut rng);
        let mut a: Vec<f64> = worst.probs().to_vec();
        let mut b: Vec<f64> = shuffled.probs().to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn unreplicated_cap_matches_hottest_machine() {
        let mut rng = seeded_rng(4);
        let pop = machine_popularity(15, 1.0, BiasCase::WorstCase, &mut rng);
        let cap = unreplicated_max_load(&pop);
        // λ·max P = 1 at the cap.
        assert!((cap * pop.max_prob() - 1.0).abs() < 1e-12);
        // With bias the cap is far below m.
        assert!(cap < 15.0 * 0.5);
    }
}
